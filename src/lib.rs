//! # cor — copy-on-reference process migration
//!
//! A from-scratch Rust reproduction of **"Attacking the Process Migration
//! Bottleneck"** (Edward R. Zayas, SOSP 1987): the Accent/SPICE
//! copy-on-reference migration facility, its substrates, and its complete
//! evaluation.
//!
//! Moving a large virtual address space dominates the cost of process
//! migration. The paper's answer is a *logical* transfer: ship an IOU for
//! the address space at migration time and fetch 512-byte pages on
//! reference during remote execution. This workspace rebuilds that system
//! as a deterministic simulation with **real data movement** — pages carry
//! actual bytes, messages really move them, and a calibrated 1987 cost
//! model turns the mechanics into the paper's elapsed times.
//!
//! ## Quick start
//!
//! ```
//! use cor::kernel::World;
//! use cor::migrate::{MigrationManager, Strategy};
//!
//! // A two-node testbed, a manager on each node, and a representative
//! // process on node `a`.
//! let (mut world, a, b) = World::testbed();
//! let src = MigrationManager::new(&mut world, a);
//! let dst = MigrationManager::new(&mut world, b);
//! let workload = cor::workloads::minprog::workload();
//! let pid = workload.build(&mut world, a).unwrap();
//!
//! // Migrate copy-on-reference, then run it to completion remotely.
//! let report = src
//!     .migrate_to(&mut world, &dst, pid, Strategy::PureIou { prefetch: 1 })
//!     .unwrap();
//! let exec = world.run(b, pid).unwrap();
//! assert!(exec.finished);
//! // The address-space transfer was sub-second despite 139 KB of RealMem.
//! assert!(report.timings.rimas_transfer.as_secs_f64() < 1.0);
//! ```
//!
//! ## Layer map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `cor-sim` | virtual time, deterministic RNG, events, metrics |
//! | [`trace`] | `cor-trace` | typed journal, causal spans, per-node metrics, Perfetto/JSONL export |
//! | [`mem`] | `cor-mem` | pages, sparse address spaces, AMaps, copy-on-write, imaginary mappings, disk, resident sets |
//! | [`ipc`] | `cor-ipc` | ports, rights, typed messages, imaginary segments, the backing protocol |
//! | [`net`] | `cor-net` | the wire model and the NetMsgServer (IOU caching, stand-ins, fragmentation) |
//! | [`kernel`] | `cor-kernel` | nodes, processes, the pager/scheduler, trace execution, the cost model |
//! | [`migrate`] | `cor-migrate` | **the paper's contribution**: ExciseProcess/InsertProcess, the MigrationManager, transfer strategies |
//! | [`workloads`] | `cor-workloads` | the seven representative processes of §4.1 |
//!
//! The copy-on-reference facility is generic (paper §6): the
//! `lazy_file_server` example uses imaginary segments to ship a file
//! lazily with no migration involved.

pub use cor_ipc as ipc;
pub use cor_kernel as kernel;
pub use cor_mem as mem;
pub use cor_migrate as migrate;
pub use cor_net as net;
pub use cor_sim as sim;
pub use cor_trace as trace;
pub use cor_workloads as workloads;

/// The Accent page size (512 bytes), re-exported for convenience.
pub use cor_mem::PAGE_SIZE;
