//! One benchmark group per paper table: each group exercises exactly the
//! simulation path that regenerates that table (see the `experiments`
//! binary for the rendered rows).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cor_bench::{build_only, full_trial};
use cor_kernel::World;
use cor_migrate::{excise_process, insert_process, Strategy};

/// Tables 4-1 & 4-2: building each representative's address space and
/// resident set.
fn table4_1_and_4_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_1_composition");
    g.sample_size(10);
    for w in cor_workloads::all() {
        g.bench_function(w.name(), |b| b.iter(|| black_box(build_only(&w, 1))));
    }
    g.finish();
}

/// Table 4-3: utilization comes from full IOU trials; bench the two
/// extremes of locality.
fn table4_3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_3_utilization");
    g.sample_size(10);
    for w in [
        cor_workloads::minprog::workload(),
        cor_workloads::pasmac::pm_start(),
    ] {
        g.bench_function(w.name(), |b| {
            b.iter(|| black_box(full_trial(&w, Strategy::PureIou { prefetch: 0 }, 1)))
        });
    }
    g.finish();
}

/// Table 4-4: the ExciseProcess / InsertProcess primitives themselves.
fn table4_4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_4_excise_insert");
    g.sample_size(10);
    for w in [
        cor_workloads::minprog::workload(),
        cor_workloads::lisp::lisp_t(),
    ] {
        g.bench_function(w.name(), |b| {
            b.iter(|| {
                let (mut world, a, bnode) = World::testbed();
                let pid = w.build(&mut world, a).expect("build");
                let dest = world.ports.allocate(bnode);
                let (excised, report) = excise_process(&mut world, a, pid, dest).expect("excise");
                let (_, ins) = insert_process(&mut world, bnode, excised).expect("insert");
                black_box((report.real_pages, ins.carried_pages))
            })
        });
    }
    g.finish();
}

/// Table 4-5: address-space transfer under the three strategies.
fn table4_5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_5_transfer");
    g.sample_size(10);
    let w = cor_workloads::chess::workload();
    for (name, s) in [
        ("pure_iou", Strategy::PureIou { prefetch: 0 }),
        ("resident_set", Strategy::ResidentSet { prefetch: 0 }),
        ("pure_copy", Strategy::PureCopy),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(full_trial(&w, s, 1))));
    }
    g.finish();
}

criterion_group!(tables, table4_1_and_4_2, table4_3, table4_4, table4_5);
criterion_main!(tables);
