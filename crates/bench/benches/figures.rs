//! One benchmark group per paper figure: each group drives the simulation
//! path whose virtual-time output regenerates that figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cor_bench::full_trial;
use cor_migrate::Strategy;
use cor_sim::{LedgerCategory, SimDuration};

/// Figure 4-1: remote execution across the prefetch sweep (the trial runs
/// migration + remote execution; prefetch changes the fault batching).
fn fig4_1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_1_remote_execution");
    g.sample_size(10);
    let w = cor_workloads::pasmac::pm_end();
    for pf in [0u64, 1, 15] {
        g.bench_function(format!("pm_end_pf{pf}"), |b| {
            b.iter(|| black_box(full_trial(&w, Strategy::PureIou { prefetch: pf }, 1)))
        });
    }
    g.finish();
}

/// Figure 4-2: end-to-end comparison needs both extremes; bench the copy
/// and IOU trials of the crossover workload.
fn fig4_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_2_end_to_end");
    g.sample_size(10);
    let w = cor_workloads::pasmac::pm_start();
    g.bench_function("pm_start_copy", |b| {
        b.iter(|| black_box(full_trial(&w, Strategy::PureCopy, 1)))
    });
    g.bench_function("pm_start_iou1", |b| {
        b.iter(|| black_box(full_trial(&w, Strategy::PureIou { prefetch: 1 }, 1)))
    });
    g.finish();
}

/// Figures 4-3 & 4-4: byte and message accounting ride along with every
/// trial; bench the biggest accounting load (Lisp-Del pure-IOU: ~700
/// fault round trips).
fn fig4_3_and_4_4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_3_4_4_accounting");
    g.sample_size(10);
    let w = cor_workloads::lisp::lisp_del();
    g.bench_function("lisp_del_iou0", |b| {
        b.iter(|| black_box(full_trial(&w, Strategy::PureIou { prefetch: 0 }, 1)))
    });
    g.finish();
}

/// Figure 4-5: the time-series view — run the trial once, bench the
/// ledger binning.
fn fig4_5(c: &mut Criterion) {
    use cor_kernel::World;
    use cor_migrate::MigrationManager;
    let (mut world, a, b) = World::testbed();
    let src = MigrationManager::new(&mut world, a);
    let dst = MigrationManager::new(&mut world, b);
    let w = cor_workloads::lisp::lisp_del();
    let pid = w.build(&mut world, a).expect("build");
    src.migrate_to(&mut world, &dst, pid, Strategy::PureIou { prefetch: 0 })
        .expect("migrate");
    world.run(b, pid).expect("run");
    let ledger = world.fabric.ledger.clone();
    let end = world.clock.now();
    c.bench_function("fig4_5_ledger_binning", |bch| {
        bch.iter(|| {
            let bins = ledger.binned(SimDuration::from_secs(5), end, LedgerCategory::FaultSupport);
            black_box(bins.len())
        })
    });
}

/// The pre-copy ablation path.
fn ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_precopy");
    g.sample_size(10);
    let w = cor_workloads::chess::workload();
    g.bench_function("chess_precopy", |b| {
        b.iter(|| {
            black_box(full_trial(
                &w,
                Strategy::PreCopy {
                    max_rounds: 5,
                    stop_pages: 8,
                },
                1,
            ))
        })
    });
    g.finish();
}

criterion_group!(figures, fig4_1, fig4_2, fig4_3_and_4_4, fig4_5, ablation);
criterion_main!(figures);
