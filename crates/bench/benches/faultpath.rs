//! Fault-path microbenchmarks: the per-page cost of servicing faults
//! under the *copy* regime (512-byte `PageData` moves at every hop) and
//! the *zero-copy* regime (interned zero frames and refcount-shared
//! transfer, this repo's default).
//!
//! Three fault shapes, each in both regimes:
//!
//! - `fill_zero_fault`: a local FillZero fault materializes a fresh zero
//!   page. Copy allocates and installs a new 512-byte frame; zero-copy
//!   installs a clone of the interned [`Frame::zeroed`] singleton.
//! - `cor_fetch_single`: a COR fetch of one imaginary page — the home
//!   node assembles an `ImagReadReply` carrying the page, the faulting
//!   node installs it. Copy snapshots the source frame into the message
//!   and copies again into a fresh frame at install
//!   ([`AddressSpace::satisfy_imaginary`]); zero-copy shares one frame
//!   end to end ([`AddressSpace::satisfy_imaginary_frame`]).
//! - `cor_fetch_prefetch4`: the same round trip carrying the faulting
//!   page plus 4 prefetched neighbours per reply.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cor_ipc::{Message, MsgItem, MsgKind, PortId};
use cor_mem::page::page_from_bytes;
use cor_mem::{AddressSpace, Disk, Frame, PageNum, PageRange, SegmentId, VAddr};

const FAULTS: u64 = 256;

/// A faulting-side space with `n` imaginary pages backed by segment 7.
fn imaginary_space(n: u64) -> (AddressSpace, Disk) {
    let mut space = AddressSpace::new();
    let disk = Disk::new();
    space.validate(VAddr(0), n * cor_mem::PAGE_SIZE).unwrap();
    space.map_imaginary(PageRange::new(PageNum(0), PageNum(n)), SegmentId(7), 0);
    (space, disk)
}

/// A home-node space holding `n` resident content pages.
fn home_space(n: u64) -> (AddressSpace, Disk) {
    let mut space = AddressSpace::new();
    let mut disk = Disk::new();
    for p in 0..n {
        let frame = Frame::new(page_from_bytes(&p.to_le_bytes()));
        space.install_page(PageNum(p), frame, &mut disk);
    }
    (space, disk)
}

fn bench_fill_zero(c: &mut Criterion) {
    let mut g = c.benchmark_group("fill_zero_fault");
    g.bench_function("copy", |b| {
        b.iter_batched(
            || imaginary_space(FAULTS),
            |(mut space, mut disk)| {
                for p in 0..FAULTS {
                    // The copy regime: materialize by allocating a fresh
                    // zeroed 512-byte frame per fault.
                    space.install_page(
                        PageNum(p),
                        Frame::new(cor_mem::page::zero_page()),
                        &mut disk,
                    );
                }
                black_box(space.resident_pages().len())
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("zero_copy", |b| {
        b.iter_batched(
            || imaginary_space(FAULTS),
            |(mut space, mut disk)| {
                for p in 0..FAULTS {
                    // The real FillZero service path: clone the interned
                    // zero frame, defer the copy to first write.
                    space.install_page(PageNum(p), Frame::zeroed(), &mut disk);
                }
                black_box(space.resident_pages().len())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

/// One COR round trip: the home node assembles a reply message carrying
/// `batch` pages starting at `page`, and the faulting node installs them.
/// `share` selects the regime: frame sharing versus snapshot-and-copy.
fn cor_round_trip(
    home: &AddressSpace,
    home_disk: &mut Disk,
    dest: &mut AddressSpace,
    dest_disk: &mut Disk,
    page: u64,
    batch: u64,
    share: bool,
) {
    let frames: Vec<Frame> = (page..page + batch)
        .map(|p| {
            let f = home.peek_frame(PageNum(p), home_disk).expect("home page");
            if share {
                f
            } else {
                Frame::new(f.snapshot())
            }
        })
        .collect();
    let mut msg = Message::new(MsgKind::ImagReadReply, PortId(9));
    msg.items.push(MsgItem::Pages {
        base_page: page,
        frames,
    });
    for item in msg.items {
        let MsgItem::Pages { base_page, frames } = item else {
            continue;
        };
        for (i, frame) in frames.into_iter().enumerate() {
            let p = PageNum(base_page + i as u64);
            if share {
                dest.satisfy_imaginary_frame(p, frame, dest_disk).unwrap();
            } else {
                dest.satisfy_imaginary(p, frame.snapshot(), dest_disk).unwrap();
            }
        }
    }
}

fn bench_cor_fetch(c: &mut Criterion, group: &str, batch: u64) {
    let mut g = c.benchmark_group(group);
    for (regime, share) in [("copy", false), ("zero_copy", true)] {
        g.bench_function(regime, |b| {
            b.iter_batched(
                || {
                    let (home, home_disk) = home_space(FAULTS);
                    let dest = imaginary_space(FAULTS);
                    (home, home_disk, dest)
                },
                |(home, mut home_disk, (mut dest, mut dest_disk))| {
                    let mut p = 0;
                    while p < FAULTS {
                        let n = batch.min(FAULTS - p);
                        cor_round_trip(
                            &home,
                            &mut home_disk,
                            &mut dest,
                            &mut dest_disk,
                            p,
                            n,
                            share,
                        );
                        p += n;
                    }
                    black_box(dest.resident_pages().len())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_cor_single(c: &mut Criterion) {
    bench_cor_fetch(c, "cor_fetch_single", 1);
}

fn bench_cor_prefetch(c: &mut Criterion) {
    // The faulting page plus 4 prefetched neighbours per reply.
    bench_cor_fetch(c, "cor_fetch_prefetch4", 5);
}

criterion_group!(
    benches,
    bench_fill_zero,
    bench_cor_single,
    bench_cor_prefetch
);
criterion_main!(benches);
