//! Substrate microbenchmarks: the primitive operations every experiment
//! rests on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cor_ipc::protocol;
use cor_ipc::{Message, MsgItem, MsgKind, NodeId, PortId, PortRegistry};
use cor_mem::page::{page_from_bytes, Frame};
use cor_mem::resident::ResidentTracker;
use cor_mem::{AddressSpace, Disk, PageNum, VAddr, PAGE_SIZE};
use cor_sim::{EventQueue, Pcg32, SimTime};

fn bench_rng(c: &mut Criterion) {
    c.bench_function("pcg32_next_u32", |b| {
        let mut rng = Pcg32::new(42);
        b.iter(|| black_box(rng.next_u32()));
    });
    c.bench_function("pcg32_shuffle_1k", |b| {
        let mut rng = Pcg32::new(42);
        let mut v: Vec<u32> = (0..1024).collect();
        b.iter(|| {
            rng.shuffle(&mut v);
            black_box(v[0])
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..1024u64 {
                    q.schedule(SimTime::from_micros(i * 37 % 509), i);
                }
                let mut acc = 0;
                while let Some(e) = q.pop() {
                    acc ^= e.event;
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        );
    });
}

fn lisp_sized_space() -> (AddressSpace, Disk) {
    // ~4300 materialized pages scattered like the Lisp heap, 4 GB validated.
    let mut space = AddressSpace::new();
    let mut disk = Disk::new();
    space.validate(VAddr(0), 4_228_129_280).unwrap();
    let mut rng = Pcg32::new(7);
    let mut page = 10_000u64;
    for _ in 0..600 {
        page += rng.range(3, 40);
        for i in 0..7 {
            space.install_page(PageNum(page + i), Frame::zeroed(), &mut disk);
        }
        page += 7;
    }
    (space, disk)
}

fn bench_amap(c: &mut Criterion) {
    let (space, _disk) = lisp_sized_space();
    c.bench_function("amap_construction_lisp_sized", |b| {
        b.iter(|| black_box(space.amap().len()));
    });
    let amap = space.amap();
    c.bench_function("amap_lookup", |b| {
        let mut rng = Pcg32::new(9);
        b.iter(|| {
            let p = PageNum(rng.range(0, 2_000_000));
            black_box(amap.lookup(p))
        });
    });
}

fn bench_space_ops(c: &mut Criterion) {
    c.bench_function("fill_zero_fault_service", |b| {
        b.iter_batched(
            || {
                let mut s = AddressSpace::new();
                s.validate(VAddr(0), 4096 * PAGE_SIZE).unwrap();
                (s, Disk::new(), 0u64)
            },
            |(mut s, mut d, _)| {
                for i in 0..256 {
                    s.fill_zero(PageNum(i), &mut d).unwrap();
                }
                black_box(s.stats().real_bytes)
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("cow_write_after_share", |b| {
        b.iter_batched(
            || {
                let mut s = AddressSpace::new();
                let mut d = Disk::new();
                let frames: Vec<Frame> = (0..64)
                    .map(|i| Frame::new(page_from_bytes(&[i as u8])))
                    .collect();
                let aliases = frames.clone();
                for (i, f) in frames.into_iter().enumerate() {
                    s.install_page(PageNum(i as u64), f, &mut d);
                }
                (s, aliases)
            },
            |(mut s, _aliases)| {
                for i in 0..64u64 {
                    s.check_write(PageNum(i)).unwrap();
                    s.write(PageNum(i).base(), b"dirty").unwrap();
                }
                black_box(s.cow_copies())
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("lru_tracker_touch", |b| {
        let mut rs = ResidentTracker::with_capacity(256);
        let mut rng = Pcg32::new(3);
        b.iter(|| {
            let victim = rs.touch(PageNum(rng.range(0, 4096)));
            black_box(victim)
        });
    });
}

fn bench_ipc(c: &mut Criterion) {
    c.bench_function("port_enqueue_dequeue", |b| {
        let mut ports = PortRegistry::new();
        let p = ports.allocate(NodeId(0));
        b.iter(|| {
            ports.enqueue(p, Message::new(MsgKind::User(1), p)).unwrap();
            black_box(ports.dequeue(p).unwrap().is_some())
        });
    });
    c.bench_function("protocol_roundtrip", |b| {
        b.iter(|| {
            let m = protocol::imag_read_request(PortId(1), PortId(2), cor_mem::SegmentId(7), 99, 4);
            black_box(protocol::parse(&m).is_some())
        });
    });
    c.bench_function("rimas_message_wire_size_877_pages", |b| {
        let frames: Vec<Frame> = (0..877).map(|_| Frame::zeroed()).collect();
        let msg = Message::new(MsgKind::Rimas, PortId(0)).push(MsgItem::Pages {
            base_page: 0,
            frames,
        });
        b.iter(|| black_box(msg.wire_size()));
    });
}

/// Pool scaling on a real matrix cell: one Minprog IOU trial per worker,
/// serial vs pooled. Perfect scaling holds per-replica time flat as the
/// replica count grows with the thread count.
fn bench_pool_scaling(c: &mut Criterion) {
    use cor_bench::full_trial;
    use cor_migrate::Strategy;
    let mut g = c.benchmark_group("pool_scaling");
    g.sample_size(10);
    let w = cor_workloads::minprog::workload();
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    for (name, n) in [("serial_1x", 1), ("pooled_nx", threads)] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(full_trial(&w, Strategy::PureIou { prefetch: 1 }, n)))
        });
    }
    g.finish();
}

criterion_group!(
    substrate,
    bench_rng,
    bench_event_queue,
    bench_amap,
    bench_space_ops,
    bench_ipc,
    bench_pool_scaling
);
criterion_main!(substrate);
