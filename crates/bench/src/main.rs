//! The `cor-bench` runner: real wall-clock measurement of the experiment
//! engine, emitted as machine-readable JSON.
//!
//! ```text
//! cor-bench [--threads N] [--baseline] [--quick] [--label NAME] [--out PATH]
//!           [--saturation base|optimized] [--fleet-storm]
//!           [--profiler-overhead] [--latency]
//! ```
//!
//! Runs the paper matrix (every representative under every studied
//! strategy; `--quick` restricts to the sparse-workload smoke set) on `N`
//! worker threads, timing each cell and the whole run with the OS
//! monotonic clock. Results are *appended* as a labelled entry to the
//! repo-root `BENCH_wallclock.json` (or `PATH`), so the committed file is
//! a perf trajectory: the first entry is the `main` baseline, later
//! entries are PRs' after-numbers. Each entry records per-cell wall-clock,
//! whole-matrix wall-clock, the summed sparse (Lisp) sweep, the thread
//! count, and a peak-RSS proxy (`VmHWM` from `/proc/self/status` where
//! available). With `--baseline`, an *untimed warmup pass* runs first
//! (so neither configuration pays cold-start costs), then the serial
//! reference and the pooled run are timed in the same process; the entry
//! gains the measured speedup plus a byte-identity check of the serial
//! and pooled CSV renderings.
//!
//! With `--saturation base|optimized`, the entry additionally records the
//! saturation study's headline numbers for that hot-path configuration
//! (closed-loop p50, peak served faults/sec over the offered-load ladder,
//! p99 at the ~80%-of-baseline-capacity point, relay coalescing count,
//! and the sweep's wall-clock), so the committed trajectory carries
//! before/after saturation entries.
//!
//! Built with `--features alloc-stats`, the entry also records the frame
//! allocations of one sparse-workload trial and the process exits
//! non-zero if they exceed [`SPARSE_ALLOC_BUDGET`] — the regression gate
//! for the zero-copy page pipeline (allocations must scale with pages
//! *touched*, never with the 4 GB address-space size).
//!
//! With `--profiler-overhead`, the entry records the wall-clock delta of
//! the serial matrix with the full typed journal on vs off (both passes
//! warm, outputs asserted identical) — the measured cost of the
//! observability layer itself.
//!
//! With `--latency`, nothing is timed at all: the run captures the
//! *deterministic* latency baseline — blame-bucket totals and fault-span
//! percentiles in integer virtual time for the fixed-seed matrix, fleet,
//! and saturation runs — and writes it to the repo-root
//! `LATENCY_baseline.json` (or `--out PATH`). CI regenerates the capture
//! and diffs it against the committed file; exact match required.
//!
//! Trials run with the typed journal disabled (`COR_JOURNAL=off`) unless
//! the caller sets the variable explicitly, so wall-clock numbers measure
//! the engine rather than the observability layer.

use std::time::Instant;

use cor_experiments::runner::{self, Matrix};
use cor_pool::Pool;

/// Frame-allocation ceiling for one sparse trial (Lisp-T under pure-IOU
/// prefetch=1, build + migrate + remote run). The workload validates
/// 8,258,065 pages but the zero-copy pipeline allocates only for pages
/// with real content or diverged writes — measured 4,332 — so 8,192
/// gives ~2x headroom for legitimate drift while failing loudly if
/// anything starts allocating per *validated* page again.
#[cfg(feature = "alloc-stats")]
const SPARSE_ALLOC_BUDGET: u64 = 8_192;

/// The workload whose allocations the `alloc-stats` gate measures.
const SPARSE_GATE_WORKLOAD: &str = "Lisp-T";

/// Frame-allocation ceiling for one saturated open-loop cell (256 faults
/// against a 64-page cache, optimized hot path). Setup allocates the 64
/// distinct-content cache pages; the batched/coalesced reply path itself
/// must be allocation-free (pooled reply vectors, reference-counted
/// frames), so 128 gives setup plus headroom while failing loudly if the
/// hot path starts copying pages again.
#[cfg(feature = "alloc-stats")]
const SATURATION_ALLOC_BUDGET: u64 = 128;

/// Peak resident set size in kilobytes, read from the kernel's `VmHWM`
/// accounting. `None` off Linux or when the proc file is unreadable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The repo-root report path, resolved from this crate's manifest so the
/// default lands in the same place no matter the working directory.
fn default_out() -> String {
    format!("{}/../../BENCH_wallclock.json", env!("CARGO_MANIFEST_DIR"))
}

/// The repo-root latency-baseline path (`--latency` mode).
fn default_latency_out() -> String {
    format!("{}/../../LATENCY_baseline.json", env!("CARGO_MANIFEST_DIR"))
}

/// Renders one blame-bucket array as a JSON object keyed by bucket name.
fn json_blame(blame: &[u64; cor_trace::BUCKET_COUNT]) -> String {
    let fields: Vec<String> = cor_trace::BlameBucket::ALL
        .iter()
        .map(|b| format!("\"{}\": {}", b.name(), blame[b.index()]))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// Captures the committed latency baseline: headline blame-bucket totals
/// and fault-span percentiles for the fixed-seed matrix trials, the
/// fleet blame cell, and the saturation gate cells. Every number is an
/// *integer in virtual time* (µs, counts, bytes) — no wall-clock, no
/// floats — so a fresh run on any machine, at any thread count, under
/// either runtime, reproduces the file byte for byte. CI diffs a fresh
/// capture against the committed `LATENCY_baseline.json`; any drift is a
/// latency regression (or an intentional change that must regenerate the
/// baseline).
fn latency_baseline(threads: usize) -> String {
    use cor_experiments::{fleet, saturation, trace};
    let mut out = String::from("{\n  \"schema\": 1,\n  \"unit\": \"virtual-time us\",\n");

    // Matrix: the standard pure-IOU traced trial per paper workload.
    out.push_str("  \"matrix\": [\n");
    let workloads = cor_workloads::all();
    for (i, w) in workloads.iter().enumerate() {
        let t = trace::traced_trial(w, cor_sim::JournalLevel::Full);
        let p = t.profile();
        assert!(p.sums_exactly(), "{}: blame must sum exactly", w.name());
        let h = p.histogram("imag-fault");
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"total_us\": {}, \"blame\": {}, \
             \"fault_spans\": {}, \"fault_p50_us\": {}, \"fault_p99_us\": {}, \
             \"fault_max_us\": {}}}{}\n",
            w.name(),
            p.total_us(),
            json_blame(&p.total_blame()),
            h.count(),
            h.p50(),
            h.p99(),
            h.max(),
            if i + 1 < workloads.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    // Fleet: the fixed blame cell (16-node ring, low storm).
    let spec = fleet::blame_cell_spec();
    let (outcome, profile, links) = fleet::run_cell_profiled(spec);
    assert!(profile.sums_exactly(), "fleet blame must sum exactly");
    let link_wait_us: u64 = links.iter().map(|&(_, w)| w).sum();
    out.push_str(&format!(
        "  \"fleet\": {{\"cell\": \"{}/{}/{}/{}\", \"total_us\": {}, \"blame\": {}, \
         \"storm_elapsed_us\": {}, \"migrations\": {}, \"faults\": {}, \
         \"fault_p50_us\": {}, \"fault_p99_us\": {}, \"link_wait_us\": {}}},\n",
        spec.nodes,
        spec.topology,
        spec.placement,
        spec.storm.name,
        profile.total_us(),
        json_blame(&profile.total_blame()),
        outcome.storm_elapsed.as_micros(),
        outcome.migrations,
        outcome.faults,
        outcome.fault_p50_us,
        outcome.fault_p99_us,
        link_wait_us,
    ));

    // Saturation: the gate cells' virtual-time service percentiles.
    let sat = saturation::saturation_outcomes_for(saturation::gate_cells(), &Pool::new(threads));
    out.push_str("  \"saturation\": [\n");
    for (i, o) in sat.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"optimized\": {}, \"served\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"coalesced\": {}, \"wire_bytes\": {}}}{}\n",
            o.spec.label(),
            o.spec.optimized,
            o.served,
            o.p50_us,
            o.p99_us,
            o.coalesced,
            o.wire_bytes,
            if i + 1 < sat.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

struct CellTiming {
    workload: &'static str,
    strategy: String,
    wallclock_s: f64,
}

/// Times every cell of the paper matrix on `threads` workers. Returns the
/// per-cell timings (in deterministic cell order) and the whole-matrix
/// wall-clock seconds.
fn time_matrix(workloads: &[cor_workloads::Workload], threads: usize) -> (Vec<CellTiming>, f64) {
    let strategies = Matrix::paper_strategies();
    let cells: Vec<(usize, cor_migrate::Strategy)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(i, _)| strategies.iter().map(move |&s| (i, s)))
        .collect();
    let pool = Pool::new(threads);
    let t0 = Instant::now();
    let jobs: Vec<_> = cells
        .iter()
        .map(|&(i, s)| {
            let w = &workloads[i];
            move || {
                let c0 = Instant::now();
                let trial = runner::run_trial(w, s);
                (c0.elapsed().as_secs_f64(), trial.total_bytes)
            }
        })
        .collect();
    let results = pool.run(jobs);
    let total = t0.elapsed().as_secs_f64();
    let timings = cells
        .iter()
        .zip(&results)
        .map(|(&(i, s), &(secs, _))| CellTiming {
            workload: workloads[i].name(),
            strategy: s.to_string(),
            wallclock_s: secs,
        })
        .collect();
    (timings, total)
}

/// Measures frame allocations of one inline sparse trial and enforces
/// [`SPARSE_ALLOC_BUDGET`]. Returns the measured count.
#[cfg(feature = "alloc-stats")]
fn sparse_alloc_gate(workloads: &[cor_workloads::Workload]) -> u64 {
    use cor_mem::page::alloc_stats;
    let w = workloads
        .iter()
        .find(|w| w.name() == SPARSE_GATE_WORKLOAD)
        .expect("sparse gate workload present");
    alloc_stats::reset();
    let trial = runner::run_trial(w, cor_migrate::Strategy::PureIou { prefetch: 1 });
    let allocs = alloc_stats::frame_allocs();
    eprintln!(
        "alloc gate: {} frame allocs for {} ({} validated pages, budget {})",
        allocs,
        SPARSE_GATE_WORKLOAD,
        trial.total_pages,
        SPARSE_ALLOC_BUDGET
    );
    if allocs > SPARSE_ALLOC_BUDGET {
        eprintln!(
            "FRAME-ALLOC REGRESSION: {allocs} > {SPARSE_ALLOC_BUDGET} — \
             the page pipeline is copying again"
        );
        std::process::exit(1);
    }
    allocs
}

/// Headline numbers from one saturation-sweep configuration.
struct SaturationSummary {
    mode: String,
    closed_p50_us: u64,
    peak_achieved_fps: f64,
    p99_at_80pct_us: u64,
    coalesced_hot_relay: u64,
    batched_replies: u64,
    wallclock_s: f64,
}

/// Runs the saturation study's full ladder for one configuration
/// (`optimized` = batched replies + coalescing + coarse stats) and
/// distills the headline numbers. The ~80% load point is the scan ladder
/// cell at 20 offered faults/sec — 80% of the *optimized* capacity
/// (~25.9/s on the default wire), so before/after entries compare the
/// same absolute operating point; the unoptimized server is past its
/// knee there, which is exactly the tail the hot path buys back.
fn run_saturation(optimized: bool, threads: usize) -> SaturationSummary {
    use cor_experiments::saturation;
    let specs: Vec<_> = saturation::cells()
        .into_iter()
        .filter(|c| c.optimized == optimized)
        .collect();
    let t0 = Instant::now();
    let outcomes = saturation::saturation_outcomes_for(specs, &Pool::new(threads));
    let wallclock_s = t0.elapsed().as_secs_f64();
    let scan = |fps: u64| {
        outcomes
            .iter()
            .find(|o| o.spec.pattern == "scan" && o.spec.offered_fps == fps)
            .expect("scan ladder cell present")
    };
    let closed = outcomes
        .iter()
        .find(|o| o.spec.mode == "closed")
        .expect("closed-loop cell present");
    SaturationSummary {
        mode: if optimized { "optimized" } else { "base" }.into(),
        closed_p50_us: closed.p50_us,
        peak_achieved_fps: outcomes
            .iter()
            .filter(|o| o.spec.pattern == "scan")
            .map(|o| o.achieved_fps)
            .fold(0.0, f64::max),
        p99_at_80pct_us: scan(20).p99_us,
        coalesced_hot_relay: outcomes
            .iter()
            .filter(|o| o.spec.relay)
            .map(|o| o.coalesced)
            .sum(),
        batched_replies: outcomes.iter().map(|o| o.batched_replies).sum(),
        wallclock_s,
    }
}

/// Measures frame allocations of one saturated optimized open-loop cell
/// and enforces [`SATURATION_ALLOC_BUDGET`]: the batched/coalesced reply
/// path must not allocate beyond the cell's own setup.
#[cfg(feature = "alloc-stats")]
fn saturation_alloc_gate() -> u64 {
    use cor_experiments::saturation::{run_cell, SatSpec};
    use cor_mem::page::alloc_stats;
    alloc_stats::reset();
    let o = run_cell(SatSpec {
        mode: "open",
        pattern: "scan",
        relay: false,
        optimized: true,
        offered_fps: 26,
        requests: 256,
    });
    let allocs = alloc_stats::frame_allocs();
    eprintln!(
        "saturation alloc gate: {} frame allocs for {} batched faults (budget {})",
        allocs, o.served, SATURATION_ALLOC_BUDGET
    );
    if allocs > SATURATION_ALLOC_BUDGET {
        eprintln!(
            "FRAME-ALLOC REGRESSION: {allocs} > {SATURATION_ALLOC_BUDGET} — \
             the batched/coalesced reply path is copying pages again"
        );
        std::process::exit(1);
    }
    allocs
}

/// Headline numbers of the fleet-storm intra-simulation scaling study:
/// the 64-node × 512-migration torus storm as one cell, timed under the
/// lock-step loop and under the actor runtime at a thread ladder.
struct FleetStormSummary {
    /// `nodes/topology/placement/storm` of the measured cell.
    cell: String,
    lockstep_wallclock_s: f64,
    /// `(threads, wallclock_s)` per actor run (shards = threads).
    actor_wallclock_s: Vec<(usize, f64)>,
    /// Actor 1-thread wall-clock over actor 4-thread wall-clock: the
    /// *intra-simulation* speedup (one big simulation split across
    /// cores), as opposed to `matrix_speedup` (independent cells fanned
    /// out). Meaningful only when `host_cores >= 4`.
    intra_sim_speedup_4t: f64,
}

/// Times the 64-node torus storm under both runtimes, asserting the CSVs
/// byte-identical at every thread count. The actor executor shards the
/// storm's process chains across the pool, so — on a machine with the
/// cores to back it — this is the speedup a single simulation gets,
/// which the lock-step engine structurally cannot have.
fn run_fleet_storm() -> FleetStormSummary {
    use cor_experiments::fleet::{cells, csv_for, run_cell};
    use cor_experiments::fleet_actor::run_cell_actor;
    let spec = cells()
        .into_iter()
        .find(|c| c.nodes == 64)
        .expect("the 64-node storm cell exists");
    let t0 = Instant::now();
    let lockstep = run_cell(spec);
    let lockstep_wallclock_s = t0.elapsed().as_secs_f64();
    let reference = csv_for(&[lockstep]);
    let mut actor_wallclock_s = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        let t0 = Instant::now();
        let outcome = run_cell_actor(spec, &pool, threads);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            csv_for(&[outcome]),
            reference,
            "actor storm CSV diverged from lock-step at {threads} threads"
        );
        actor_wallclock_s.push((threads, secs));
    }
    let at = |t: usize| {
        actor_wallclock_s
            .iter()
            .find(|&&(n, _)| n == t)
            .map(|&(_, s)| s)
            .expect("ladder point present")
    };
    FleetStormSummary {
        cell: format!(
            "{}/{}/{}/{}",
            spec.nodes, spec.topology, spec.placement, spec.storm.name
        ),
        lockstep_wallclock_s,
        intra_sim_speedup_4t: at(1) / at(4),
        actor_wallclock_s,
    }
}

/// Physical parallelism of the bench host; intra-simulation speedups are
/// only meaningful when this covers the thread ladder.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or("null".into(), |n| n.to_string())
}

/// Renders one trajectory entry as a JSON object (four-space indented to
/// sit inside the `entries` array).
#[allow(clippy::too_many_arguments)]
fn render_entry(
    label: &str,
    threads: usize,
    quick: bool,
    warmed_up: bool,
    matrix_s: f64,
    serial: Option<f64>,
    sparse_s: f64,
    frame_allocs_sparse: Option<u64>,
    saturation: Option<&SaturationSummary>,
    fleet_storm: Option<&FleetStormSummary>,
    profiler_overhead: Option<(f64, f64)>,
    cells: &[CellTiming],
) -> String {
    let mut e = String::from("    {\n");
    e.push_str(&format!("      \"label\": \"{label}\",\n"));
    e.push_str(&format!("      \"threads\": {threads},\n"));
    e.push_str(&format!("      \"host_cores\": {},\n", host_cores()));
    e.push_str(&format!("      \"quick\": {quick},\n"));
    e.push_str(&format!("      \"warmup\": {warmed_up},\n"));
    e.push_str(&format!(
        "      \"matrix_wallclock_s\": {},\n",
        json_f64(matrix_s)
    ));
    // `matrix_speedup` is *inter-cell* scaling: independent matrix cells
    // fanned across the pool. Intra-simulation scaling (one big storm
    // split across cores) lives in the `fleet_storm` section.
    match serial {
        Some(s) => e.push_str(&format!(
            "      \"serial_wallclock_s\": {},\n      \"matrix_speedup\": {},\n",
            json_f64(s),
            json_f64(s / matrix_s)
        )),
        None => {
            e.push_str("      \"serial_wallclock_s\": null,\n      \"matrix_speedup\": null,\n")
        }
    }
    e.push_str(&format!(
        "      \"sparse_sweep_wallclock_s\": {},\n",
        json_f64(sparse_s)
    ));
    e.push_str(&format!(
        "      \"frame_allocs_sparse\": {},\n",
        json_opt_u64(frame_allocs_sparse)
    ));
    e.push_str(&format!(
        "      \"peak_rss_kb\": {},\n",
        json_opt_u64(peak_rss_kb())
    ));
    if let Some(s) = saturation {
        e.push_str(&format!(
            "      \"saturation\": {{\"mode\": \"{}\", \"closed_loop_p50_us\": {}, \
             \"peak_achieved_fps\": {}, \"p99_at_80pct_us\": {}, \
             \"coalesced_hot_relay\": {}, \"batched_replies\": {}, \
             \"wallclock_s\": {}}},\n",
            s.mode,
            s.closed_p50_us,
            json_f64(s.peak_achieved_fps),
            s.p99_at_80pct_us,
            s.coalesced_hot_relay,
            s.batched_replies,
            json_f64(s.wallclock_s),
        ));
    }
    if let Some(f) = fleet_storm {
        let ladder: Vec<String> = f
            .actor_wallclock_s
            .iter()
            .map(|&(t, s)| format!("\"{t}\": {}", json_f64(s)))
            .collect();
        e.push_str(&format!(
            "      \"fleet_storm\": {{\"cell\": \"{}\", \"lockstep_wallclock_s\": {}, \
             \"fleet_storm_wallclock_s\": {{{}}}, \"intra_sim_speedup_4t\": {}, \
             \"csv_identical\": true}},\n",
            f.cell,
            json_f64(f.lockstep_wallclock_s),
            ladder.join(", "),
            json_f64(f.intra_sim_speedup_4t),
        ));
    }
    if let Some((off_s, on_s)) = profiler_overhead {
        e.push_str(&format!(
            "      \"profiler_overhead\": {{\"trace_off_s\": {}, \"trace_on_s\": {}, \
             \"overhead_ratio\": {}, \"csv_identical\": true}},\n",
            json_f64(off_s),
            json_f64(on_s),
            json_f64(on_s / off_s),
        ));
    }
    e.push_str("      \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        e.push_str(&format!(
            "        {{\"workload\": \"{}\", \"strategy\": \"{}\", \"wallclock_s\": {}}}{}\n",
            c.workload,
            c.strategy,
            json_f64(c.wallclock_s),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    e.push_str("      ]\n    }");
    e
}

/// Appends `entry` to the trajectory file at `out`, creating it when
/// absent. The file format is fixed (`"entries": [...]` closed by
/// `\n  ]\n}\n`), so splicing before the array's closing bracket is exact,
/// not heuristic; an unrecognisable file is an error, never overwritten.
fn write_report(out: &str, entry: &str) -> Result<(), String> {
    const HEAD: &str = "{\n  \"schema\": 2,\n  \"entries\": [\n";
    const TAIL: &str = "\n  ]\n}\n";
    let body = match std::fs::read_to_string(out) {
        Ok(existing) => {
            if !existing.starts_with(HEAD) {
                return Err(format!("{out} is not a cor-bench trajectory file"));
            }
            let stripped = existing
                .strip_suffix(TAIL)
                .ok_or_else(|| format!("{out} is truncated or hand-edited"))?;
            format!("{stripped},\n{entry}{TAIL}")
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            format!("{HEAD}{entry}{TAIL}")
        }
        Err(e) => return Err(format!("cannot read {out}: {e}")),
    };
    std::fs::write(out, body).map_err(|e| format!("cannot write {out}: {e}"))
}

fn main() {
    // Wall-clock benches measure the engine, not the observer: default the
    // typed journal off unless the caller explicitly set COR_JOURNAL.
    if std::env::var_os("COR_JOURNAL").is_none() {
        std::env::set_var("COR_JOURNAL", "off");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads: Option<usize> = None;
    let mut baseline = false;
    let mut quick = false;
    let mut label = String::from("HEAD");
    let mut out = default_out();
    let mut saturation_mode: Option<bool> = None;
    let mut fleet_storm_flag = false;
    let mut latency_mode = false;
    let mut profiler_overhead_flag = false;
    let mut out_explicit = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                threads = args.get(i + 1).and_then(|v| v.parse().ok());
                if threads.is_none() {
                    eprintln!("--threads requires a positive integer");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--baseline" => {
                baseline = true;
                i += 1;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--label" => {
                let Some(l) = args.get(i + 1) else {
                    eprintln!("--label requires a name");
                    std::process::exit(2);
                };
                label = l.clone();
                i += 2;
            }
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                };
                out = path.clone();
                out_explicit = true;
                i += 2;
            }
            "--latency" => {
                latency_mode = true;
                i += 1;
            }
            "--profiler-overhead" => {
                profiler_overhead_flag = true;
                i += 1;
            }
            "--saturation" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("base") => saturation_mode = Some(false),
                    Some("optimized") => saturation_mode = Some(true),
                    _ => {
                        eprintln!("--saturation requires `base` or `optimized`");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--fleet-storm" => {
                fleet_storm_flag = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: cor-bench [--threads N] [--baseline] [--quick] \
                     [--label NAME] [--out PATH] [--saturation base|optimized] \
                     [--fleet-storm] [--profiler-overhead] [--latency]"
                );
                std::process::exit(2);
            }
        }
    }
    let threads = threads.unwrap_or_else(|| Pool::from_env().threads());

    // `--latency` is a standalone capture: write (or overwrite) the
    // deterministic virtual-time baseline and exit. CI diffs a fresh
    // capture against the committed file — exact match required.
    if latency_mode {
        let path = if out_explicit {
            out
        } else {
            default_latency_out()
        };
        let doc = latency_baseline(threads);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote latency baseline to {path}");
        return;
    }

    let mut workloads = cor_workloads::all();
    if quick {
        // The sparse smoke set: the zero-copy pipeline's target workloads
        // plus the smallest representative as a non-sparse control.
        workloads.retain(|w| w.name().starts_with("Lisp") || w.name() == "Minprog");
    }

    // Optional serial reference. An untimed warmup pass runs first so the
    // serial and pooled measurements below both start warm (allocator,
    // page cache, branch predictors) — comparing a cold serial run
    // against a warm pooled one is how a same-machine "speedup" can read
    // below 1.0.
    let warmed_up = baseline;
    if baseline {
        let _ = runner::matrix_csv(&mut Matrix::new(), &workloads);
    }
    let serial = baseline.then(|| {
        let t0 = Instant::now();
        let csv = runner::matrix_csv(&mut Matrix::new(), &workloads);
        (t0.elapsed().as_secs_f64(), csv)
    });

    let (cells, matrix_s) = time_matrix(&workloads, threads);
    let sparse_s: f64 = cells
        .iter()
        .filter(|c| c.workload.starts_with("Lisp"))
        .map(|c| c.wallclock_s)
        .sum();

    if let Some((serial_s, serial_csv)) = &serial {
        let pooled_csv = runner::matrix_csv(&mut Matrix::with_threads(threads), &workloads);
        assert_eq!(
            serial_csv, &pooled_csv,
            "pooled matrix CSV must be byte-identical to serial"
        );
        eprintln!(
            "serial {serial_s:.2}s, {threads} threads {matrix_s:.2}s, speedup {:.2}x, output identical",
            serial_s / matrix_s
        );
    } else {
        eprintln!("{threads} threads: matrix in {matrix_s:.2}s (sparse sweep {sparse_s:.3}s)");
    }

    #[cfg(feature = "alloc-stats")]
    let frame_allocs_sparse = Some(sparse_alloc_gate(&workloads));
    #[cfg(not(feature = "alloc-stats"))]
    let frame_allocs_sparse = None;
    let _ = SPARSE_GATE_WORKLOAD;

    let saturation = saturation_mode.map(|optimized| {
        #[cfg(feature = "alloc-stats")]
        if optimized {
            saturation_alloc_gate();
        }
        let s = run_saturation(optimized, threads);
        eprintln!(
            "saturation ({}): closed p50 {:.1}ms, peak {:.2} faults/s, \
             p99@80% {:.1}ms, coalesced {}, in {:.2}s",
            s.mode,
            s.closed_p50_us as f64 / 1_000.0,
            s.peak_achieved_fps,
            s.p99_at_80pct_us as f64 / 1_000.0,
            s.coalesced_hot_relay,
            s.wallclock_s
        );
        s
    });

    // `--profiler-overhead`: wall-clock delta of the serial matrix with
    // the full typed journal on vs off, both passes warm and in-process.
    // The journal is a pure observer, so the CSVs must stay identical —
    // only the wall-clock may move.
    let profiler_overhead = profiler_overhead_flag.then(|| {
        std::env::set_var("COR_JOURNAL", "full");
        let _ = runner::matrix_csv(&mut Matrix::new(), &workloads);
        std::env::set_var("COR_JOURNAL", "off");
        let t0 = Instant::now();
        let off_csv = runner::matrix_csv(&mut Matrix::new(), &workloads);
        let trace_off_s = t0.elapsed().as_secs_f64();
        std::env::set_var("COR_JOURNAL", "full");
        let t0 = Instant::now();
        let on_csv = runner::matrix_csv(&mut Matrix::new(), &workloads);
        let trace_on_s = t0.elapsed().as_secs_f64();
        std::env::set_var("COR_JOURNAL", "off");
        assert_eq!(
            off_csv, on_csv,
            "the journal is a pure observer: matrix CSV must not change"
        );
        eprintln!(
            "profiler overhead: trace-off {trace_off_s:.2}s, trace-on {trace_on_s:.2}s \
             ({:+.1}%), output identical",
            100.0 * (trace_on_s / trace_off_s - 1.0)
        );
        (trace_off_s, trace_on_s)
    });

    let fleet_storm = fleet_storm_flag.then(|| {
        let f = run_fleet_storm();
        let ladder: Vec<String> = f
            .actor_wallclock_s
            .iter()
            .map(|&(t, s)| format!("{t}t {s:.2}s"))
            .collect();
        eprintln!(
            "fleet storm {} ({} host cores): lockstep {:.2}s, actor [{}], \
             intra-sim speedup at 4 threads {:.2}x, CSVs identical",
            f.cell,
            host_cores(),
            f.lockstep_wallclock_s,
            ladder.join(", "),
            f.intra_sim_speedup_4t
        );
        f
    });

    let entry = render_entry(
        &label,
        threads,
        quick,
        warmed_up,
        matrix_s,
        serial.as_ref().map(|(s, _)| *s),
        sparse_s,
        frame_allocs_sparse,
        saturation.as_ref(),
        fleet_storm.as_ref(),
        profiler_overhead,
        &cells,
    );
    if let Err(e) = write_report(&out, &entry) {
        eprintln!("{e}");
        std::process::exit(1);
    }
    eprintln!("appended entry \"{label}\" to {out}");
}
