//! The `cor-bench` runner: real wall-clock measurement of the experiment
//! engine, emitted as machine-readable JSON.
//!
//! ```text
//! cor-bench [--threads N] [--baseline] [--out PATH]
//! ```
//!
//! Runs the full paper matrix (every representative under every studied
//! strategy) on `N` worker threads, timing each cell and the whole run
//! with the OS monotonic clock, and writes `BENCH_wallclock.json` (or
//! `PATH`) recording per-cell wall-clock, whole-matrix wall-clock, the
//! thread count, and a peak-RSS proxy (`VmHWM` from `/proc/self/status`
//! where available). With `--baseline`, a serial reference run is timed
//! first and the report gains the measured speedup plus a byte-identical
//! check of the serial and pooled CSV renderings.

use std::time::Instant;

use cor_experiments::runner::{self, Matrix};
use cor_pool::Pool;

/// Peak resident set size in kilobytes, read from the kernel's `VmHWM`
/// accounting. `None` off Linux or when the proc file is unreadable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct CellTiming {
    workload: &'static str,
    strategy: String,
    wallclock_s: f64,
}

/// Times every cell of the paper matrix on `threads` workers. Returns the
/// per-cell timings (in deterministic cell order) and the whole-matrix
/// wall-clock seconds.
fn time_matrix(
    workloads: &[cor_workloads::Workload],
    threads: usize,
) -> (Vec<CellTiming>, f64) {
    let strategies = Matrix::paper_strategies();
    let cells: Vec<(usize, cor_migrate::Strategy)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(i, _)| strategies.iter().map(move |&s| (i, s)))
        .collect();
    let pool = Pool::new(threads);
    let t0 = Instant::now();
    let jobs: Vec<_> = cells
        .iter()
        .map(|&(i, s)| {
            let w = &workloads[i];
            move || {
                let c0 = Instant::now();
                let trial = runner::run_trial(w, s);
                (c0.elapsed().as_secs_f64(), trial.total_bytes)
            }
        })
        .collect();
    let results = pool.run(jobs);
    let total = t0.elapsed().as_secs_f64();
    let timings = cells
        .iter()
        .zip(&results)
        .map(|(&(i, s), &(secs, _))| CellTiming {
            workload: workloads[i].name(),
            strategy: s.to_string(),
            wallclock_s: secs,
        })
        .collect();
    (timings, total)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads: Option<usize> = None;
    let mut baseline = false;
    let mut out = String::from("BENCH_wallclock.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                threads = args.get(i + 1).and_then(|v| v.parse().ok());
                if threads.is_none() {
                    eprintln!("--threads requires a positive integer");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--baseline" => {
                baseline = true;
                i += 1;
            }
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                };
                out = path.clone();
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: cor-bench [--threads N] [--baseline] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let threads = threads.unwrap_or_else(|| Pool::from_env().threads());
    let workloads = cor_workloads::all();

    // Optional serial reference: timed first, and its CSV rendering must
    // match the pooled rendering byte for byte.
    let serial = baseline.then(|| {
        let t0 = Instant::now();
        let csv = runner::matrix_csv(&mut Matrix::new(), &workloads);
        (t0.elapsed().as_secs_f64(), csv)
    });

    let (cells, matrix_s) = time_matrix(&workloads, threads);

    if let Some((serial_s, serial_csv)) = &serial {
        let pooled_csv = runner::matrix_csv(&mut Matrix::with_threads(threads), &workloads);
        assert_eq!(
            serial_csv, &pooled_csv,
            "pooled matrix CSV must be byte-identical to serial"
        );
        eprintln!(
            "serial {serial_s:.2}s, {threads} threads {matrix_s:.2}s, speedup {:.2}x, output identical",
            serial_s / matrix_s
        );
    } else {
        eprintln!("{threads} threads: matrix in {matrix_s:.2}s");
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"matrix_wallclock_s\": {},\n",
        json_f64(matrix_s)
    ));
    match &serial {
        Some((serial_s, _)) => {
            json.push_str(&format!(
                "  \"serial_wallclock_s\": {},\n  \"speedup\": {},\n",
                json_f64(*serial_s),
                json_f64(serial_s / matrix_s)
            ));
        }
        None => {
            json.push_str("  \"serial_wallclock_s\": null,\n  \"speedup\": null,\n");
        }
    }
    match peak_rss_kb() {
        Some(kb) => json.push_str(&format!("  \"peak_rss_kb\": {kb},\n")),
        None => json.push_str("  \"peak_rss_kb\": null,\n"),
    }
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"strategy\": \"{}\", \"wallclock_s\": {}}}{}\n",
            c.workload,
            c.strategy,
            json_f64(c.wallclock_s),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
