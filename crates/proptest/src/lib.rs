//! An offline, dependency-free subset of the [proptest](https://docs.rs/proptest)
//! API, vendored so the workspace builds and tests without network access.
//!
//! The real proptest generates random inputs, shrinks failures, and persists
//! regression seeds. This shim keeps the *interface* (the [`proptest!`]
//! macro, the [`strategy::Strategy`] combinators, `prop::collection::vec`,
//! `any::<T>()`, `prop_oneof!`, `Just`) and the *deterministic generation*
//! (a fixed PCG stream per case index, so every run of the suite sees the
//! identical inputs), but does no shrinking: a failing case panics with the
//! ordinary assertion message and the case index, and re-running reproduces
//! it exactly.
//!
//! Only the surface actually used by this workspace's test suites is
//! implemented. Extend it as tests need more.

/// The conventional glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

pub mod test_runner {
    //! Case execution: configuration and the deterministic per-case RNG.

    /// Test-runner configuration. Only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default is 256; this shim halves twice to keep the
            // heavier simulation properties fast while staying property-ish.
            Config { cases: 64 }
        }
    }

    const PCG_MULT: u64 = 6364136223846793005;
    const PCG_INC: u64 = (1442695040888963407 << 1) | 1;

    /// A deterministic PCG-XSH-RR 64/32 stream, seeded from the case index.
    ///
    /// Independent from `cor_sim::Pcg32` so this crate stays dependency-free
    /// (and so test-input streams never shift when the simulator's RNG
    /// evolves).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case`.
        pub fn for_case(case: u32) -> Self {
            let mut rng = TestRng {
                state: (case as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ 0xDEADBEEFCAFEF00D,
            };
            rng.next_u32();
            rng.next_u32();
            rng
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            let old = self.state;
            self.state = old.wrapping_mul(PCG_MULT).wrapping_add(PCG_INC);
            let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
            let rot = (old >> 59) as u32;
            xorshifted.rotate_right(rot)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            ((self.next_u32() as u64) << 32) | self.next_u32() as u64
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below() requires a non-zero bound");
            // Rejection over the next power-of-two mask keeps this unbiased.
            let mask = bound.next_power_of_two().wrapping_sub(1);
            loop {
                let v = self.next_u64() & mask;
                if v < bound {
                    return v;
                }
            }
        }

        /// Uniform value in `[lo, hi)`; the range must be non-empty.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "range requires lo < hi");
            lo + self.below(hi - lo)
        }
    }

    /// Runs `body` once per configured case with that case's RNG. Failures
    /// panic with the case index attached so they can be reproduced (the
    /// stream depends only on the index).
    pub fn run<F: FnMut(&mut TestRng)>(config: &Config, mut body: F) {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(case);
            CURRENT_CASE.with(|c| c.set(case));
            body(&mut rng);
        }
    }

    thread_local! {
        static CURRENT_CASE: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }

    /// The case index currently executing on this thread (for diagnostics).
    pub fn current_case() -> u32 {
        CURRENT_CASE.with(|c| c.get())
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type from a [`TestRng`].
    ///
    /// Unlike real proptest there is no value tree and no simplification:
    /// `generate` produces the final value directly.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among alternative strategies (built by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_u64(self.start as u64, self.end as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    if hi == u64::MAX {
                        return rng.next_u64() as $t; // only reachable for u64
                    }
                    rng.range_u64(lo, hi + 1) as $t
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }

    /// String generation from a regex-like pattern literal.
    ///
    /// Supports exactly the shape `[class]{lo,hi}` (a single character
    /// class with `a-z` ranges and literal members, repeated a bounded
    /// number of times); any other pattern generates itself verbatim.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((chars, lo, hi)) => {
                    let len = rng.range_u64(lo as u64, hi as u64 + 1) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                for c in a..=b {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .to_string();
        let (lo, hi) = match reps.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((chars, lo, hi))
    }
}

pub mod arbitrary {
    //! `any::<T>()`: full-domain strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Produces one uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u32() as u8
        }
    }
    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u32() as u16
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u32()
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Declares property tests. Each function body runs once per configured
/// case with arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
}

/// Uniform choice among strategy alternatives of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (no shrinking: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn case_streams_are_deterministic() {
        let a: Vec<u32> = {
            let mut r = TestRng::for_case(7);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = TestRng::for_case(7);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = TestRng::for_case(8);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..1).generate(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn vec_and_oneof_compose() {
        let strat = crate::collection::vec(
            prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2)],
            0..10,
        );
        let mut rng = TestRng::for_case(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 10);
            assert!(v.iter().all(|&x| x == 1 || (20..40).contains(&x)));
        }
    }

    #[test]
    fn string_pattern_generates_from_class() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            let s = "[a-c0-1 _-]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| "abc01 _-".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_round_trip(v in prop::collection::vec(any::<u8>(), 1..50), k in 0u8..4) {
            prop_assert!(!v.is_empty());
            prop_assert!(k < 4);
            prop_assert_eq!(v.len(), v.clone().len());
        }
    }
}
