//! Accent-style virtual memory substrate.
//!
//! This crate implements, from scratch, the memory machinery the paper's
//! copy-on-reference facility is built on (Zayas, SOSP 1987, §2):
//!
//! * 512-byte [`page`]s that carry **real contents** — the simulation moves
//!   actual bytes, so migration correctness is testable, not assumed.
//! * Sparse [`AddressSpace`]s supporting the Accent idiom of validating
//!   enormous regions (Lisp validates its full 4 GB at birth) while only
//!   materializing touched pages. Untouched validated memory is
//!   *RealZeroMem*: conceptually zero-filled, lazily materialized by the
//!   cheap *FillZero* fault.
//! * [`AMap`]s (accessibility maps): coalesced interval maps over the four
//!   memory "distances" of §2.3 — [`Access::RealZero`], [`Access::Real`],
//!   [`Access::Imag`] and [`Access::Bad`].
//! * **Copy-on-write** page sharing: frames are reference counted and a
//!   write to a shared frame performs the deferred 512-byte copy, exactly
//!   the mechanism Accent's IPC uses for large messages (§2.1).
//! * **Imaginary mappings**: pages whose data lives behind an IPC backing
//!   port ([`SegmentId`]); touching one raises [`Fault::Imaginary`].
//! * A simulated local [`Disk`] and an LRU [`resident::ResidentTracker`]
//!   modelling limited physical memory, so each process has a well-defined
//!   resident set at migration time (Table 4-2 of the paper).
//!
//! Faults are *returned*, not handled, by this crate: the pager/scheduler in
//! `cor-kernel` interprets them, charges the right service times, and
//! installs pages via the mutators exposed here.

pub mod amap;
pub mod content;
pub mod disk;
pub mod error;
pub mod fault;
pub mod page;
pub mod resident;
pub mod space;

pub use amap::{AMap, AMapEntry, Access};
pub use content::ContentStore;
pub use disk::{Disk, DiskAddr};
pub use error::MemError;
pub use fault::Fault;
pub use page::{Frame, PageData, PageNum, PageRange, VAddr, PAGE_SIZE};
pub use space::{AddressSpace, PageState, SegmentId, SpaceStats};
