//! The fault taxonomy of Accent's Pager/Scheduler (paper §2.3).

use crate::disk::DiskAddr;
use crate::page::{PageNum, VAddr};
use crate::space::SegmentId;

/// A memory fault awaiting service.
///
/// `cor-mem` *detects* faults; the pager in `cor-kernel` *services* them,
/// charging each kind its calibrated cost (a FillZero fault never touches
/// the disk; an imaginary fault is a full IPC round trip to the backing
/// port, possibly across the network).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// First touch of validated-but-never-accessed memory (*RealZeroMem*).
    /// Serviced by reserving a frame and zero-filling it; the disk is never
    /// consulted.
    FillZero {
        /// The page to materialize.
        page: PageNum,
    },
    /// The page's data is on the local disk (*RealMem*, paged out).
    DiskIn {
        /// The faulting page.
        page: PageNum,
        /// Where its data lives on the local disk.
        addr: DiskAddr,
    },
    /// The page is mapped to an imaginary segment (*ImagMem*); its data must
    /// be requested from the segment's backing port.
    Imaginary {
        /// The faulting page.
        page: PageNum,
        /// The imaginary segment backing this page.
        seg: SegmentId,
        /// Page offset within the segment.
        offset: u64,
    },
    /// A true addressing error (*BadMem*): the address was never validated.
    Addressing {
        /// The offending address.
        addr: VAddr,
    },
}

impl Fault {
    /// `true` for the fault kinds that a healthy program may trigger
    /// (everything except an addressing error).
    pub fn is_benign(&self) -> bool {
        !matches!(self, Fault::Addressing { .. })
    }

    /// The faulting page, if the fault concerns a specific page.
    pub fn page(&self) -> Option<PageNum> {
        match self {
            Fault::FillZero { page }
            | Fault::DiskIn { page, .. }
            | Fault::Imaginary { page, .. } => Some(*page),
            Fault::Addressing { .. } => None,
        }
    }

    /// A static name for the fault kind, used as the trace span name for
    /// fault-handling intervals.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::FillZero { .. } => "fill-zero",
            Fault::DiskIn { .. } => "disk-in",
            Fault::Imaginary { .. } => "imag-fault",
            Fault::Addressing { .. } => "addressing",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_classification() {
        assert!(Fault::FillZero { page: PageNum(1) }.is_benign());
        assert!(Fault::DiskIn {
            page: PageNum(1),
            addr: DiskAddr(0)
        }
        .is_benign());
        assert!(Fault::Imaginary {
            page: PageNum(1),
            seg: SegmentId(0),
            offset: 0
        }
        .is_benign());
        assert!(!Fault::Addressing { addr: VAddr(0) }.is_benign());
    }

    #[test]
    fn page_extraction() {
        assert_eq!(
            Fault::FillZero { page: PageNum(9) }.page(),
            Some(PageNum(9))
        );
        assert_eq!(Fault::Addressing { addr: VAddr(9) }.page(), None);
    }
}
