//! Resident-set tracking with LRU replacement.
//!
//! Accent's physical memory "tends to act as a disk cache" (paper §4.2.3):
//! a process's resident set at migration time is whatever survived LRU
//! replacement, including stale file pages that will never be touched again.
//! The tracker models a per-space frame budget; when it is exceeded the
//! least recently used page is nominated for page-out.

use std::collections::{BTreeMap, HashMap};

use crate::page::PageNum;

/// LRU tracker over the resident pages of one address space.
///
/// # Examples
///
/// ```
/// use cor_mem::resident::ResidentTracker;
/// use cor_mem::PageNum;
///
/// let mut rs = ResidentTracker::with_capacity(2);
/// assert_eq!(rs.touch(PageNum(1)), None);
/// assert_eq!(rs.touch(PageNum(2)), None);
/// assert_eq!(rs.touch(PageNum(1)), None); // refresh 1
/// // Inserting a third page evicts the LRU page, which is now 2.
/// assert_eq!(rs.touch(PageNum(3)), Some(PageNum(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResidentTracker {
    /// page -> recency stamp
    stamps: HashMap<PageNum, u64>,
    /// recency stamp -> page (inverse index, for O(log n) LRU lookup)
    order: BTreeMap<u64, PageNum>,
    next_stamp: u64,
    capacity: Option<usize>,
}

impl ResidentTracker {
    /// A tracker with unbounded capacity (no page-outs).
    pub fn unbounded() -> Self {
        ResidentTracker::default()
    }

    /// A tracker that nominates pages for page-out beyond `frames` resident
    /// pages.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero; a process needs at least one frame.
    pub fn with_capacity(frames: usize) -> Self {
        assert!(frames > 0, "resident capacity must be at least one frame");
        ResidentTracker {
            capacity: Some(frames),
            ..ResidentTracker::default()
        }
    }

    /// Changes the capacity. Does not immediately evict; the next `touch`
    /// enforces the new bound one page at a time.
    pub fn set_capacity(&mut self, frames: Option<usize>) {
        assert!(
            frames != Some(0),
            "resident capacity must be at least one frame"
        );
        self.capacity = frames;
    }

    /// Marks `page` as most recently used (inserting it if absent). If the
    /// insertion pushed the tracker over capacity, returns the LRU page;
    /// that page has already been dropped from the tracker and the caller
    /// must page it out.
    #[must_use = "a returned page must be paged out by the caller"]
    pub fn touch(&mut self, page: PageNum) -> Option<PageNum> {
        if let Some(old) = self.stamps.insert(page, self.next_stamp) {
            self.order.remove(&old);
        }
        self.order.insert(self.next_stamp, page);
        self.next_stamp += 1;
        if let Some(cap) = self.capacity {
            if self.stamps.len() > cap {
                let (&stamp, &victim) = self
                    .order
                    .iter()
                    .next()
                    .expect("tracker over capacity implies at least one entry");
                // The page just touched is never the LRU victim when cap >= 1.
                self.order.remove(&stamp);
                self.stamps.remove(&victim);
                return Some(victim);
            }
        }
        None
    }

    /// Marks `page` as most recently used *without* enforcing capacity.
    /// Used on plain access to an already-resident page: budgets are
    /// enforced when pages are installed, so an over-budget tracker (after
    /// a budget shrink or a bulk insertion) drains one page per subsequent
    /// install rather than on reads.
    pub fn refresh(&mut self, page: PageNum) {
        if let Some(old) = self.stamps.insert(page, self.next_stamp) {
            self.order.remove(&old);
        }
        self.order.insert(self.next_stamp, page);
        self.next_stamp += 1;
    }

    /// Removes `page` (it was paged out, unmapped, or migrated away).
    pub fn remove(&mut self, page: PageNum) -> bool {
        if let Some(stamp) = self.stamps.remove(&page) {
            self.order.remove(&stamp);
            true
        } else {
            false
        }
    }

    /// Forgets everything (e.g. after process excision).
    pub fn clear(&mut self) {
        self.stamps.clear();
        self.order.clear();
    }

    /// Whether `page` is tracked as resident.
    pub fn contains(&self, page: PageNum) -> bool {
        self.stamps.contains_key(&page)
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// The resident pages in ascending page order.
    pub fn pages(&self) -> Vec<PageNum> {
        let mut v: Vec<PageNum> = self.stamps.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The resident pages from least to most recently used.
    pub fn pages_lru_order(&self) -> Vec<PageNum> {
        self.order.values().copied().collect()
    }

    /// The configured capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageNum {
        PageNum(n)
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut rs = ResidentTracker::unbounded();
        for i in 0..1000 {
            assert_eq!(rs.touch(p(i)), None);
        }
        assert_eq!(rs.len(), 1000);
    }

    #[test]
    fn lru_eviction_order() {
        let mut rs = ResidentTracker::with_capacity(3);
        assert_eq!(rs.touch(p(1)), None);
        assert_eq!(rs.touch(p(2)), None);
        assert_eq!(rs.touch(p(3)), None);
        assert_eq!(rs.touch(p(4)), Some(p(1)));
        assert_eq!(rs.touch(p(2)), None); // refresh
        assert_eq!(rs.touch(p(5)), Some(p(3)));
        assert!(rs.contains(p(2)) && rs.contains(p(4)) && rs.contains(p(5)));
        assert!(!rs.contains(p(1)) && !rs.contains(p(3)));
    }

    #[test]
    fn retouching_does_not_grow() {
        let mut rs = ResidentTracker::with_capacity(2);
        for _ in 0..10 {
            assert_eq!(rs.touch(p(7)), None);
        }
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn remove_and_clear() {
        let mut rs = ResidentTracker::with_capacity(2);
        let _ = rs.touch(p(1));
        let _ = rs.touch(p(2));
        assert!(rs.remove(p(1)));
        assert!(!rs.remove(p(1)));
        assert_eq!(rs.len(), 1);
        rs.clear();
        assert!(rs.is_empty());
    }

    #[test]
    fn lru_order_listing() {
        let mut rs = ResidentTracker::unbounded();
        let _ = rs.touch(p(5));
        let _ = rs.touch(p(3));
        let _ = rs.touch(p(5)); // refresh: 3 is now LRU
        assert_eq!(rs.pages_lru_order(), vec![p(3), p(5)]);
        assert_eq!(rs.pages(), vec![p(3), p(5)]);
    }

    #[test]
    fn capacity_shrink_enforced_lazily() {
        let mut rs = ResidentTracker::with_capacity(4);
        for i in 0..4 {
            let _ = rs.touch(p(i));
        }
        rs.set_capacity(Some(2));
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.touch(p(10)), Some(p(0)));
        assert_eq!(rs.len(), 4); // shrinks one per touch
        assert_eq!(rs.touch(p(11)), Some(p(1)));
    }
}
