//! The simulated local disk.
//!
//! The disk is a flat page store with an allocation cursor. Service *times*
//! are charged by the kernel's cost model (the paper reports 40.8 ms for a
//! local fault, §4.3.3); this module only stores and returns real bytes and
//! counts operations.

use std::collections::BTreeMap;
use std::fmt;

use crate::page::{Frame, PageData, PAGE_SIZE};

/// The address of a page-sized block on the local disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskAddr(pub u64);

/// A simulated local disk holding 512-byte blocks.
///
/// Blocks are stored as [`Frame`]s so page-outs and flushes move a
/// reference count instead of copying 512 bytes; a block's contents are
/// never mutated in place (overwrites replace the frame), so sharing a
/// stored frame with a live mapping is safe under the copy-on-write
/// discipline.
///
/// # Examples
///
/// ```
/// use cor_mem::{Disk, page};
///
/// let mut disk = Disk::new();
/// let addr = disk.write_new(page::page_from_bytes(b"block"));
/// assert_eq!(&disk.read(addr).unwrap()[..5], b"block");
/// ```
#[derive(Debug, Default)]
pub struct Disk {
    blocks: BTreeMap<DiskAddr, Frame>,
    next: u64,
    reads: u64,
    writes: u64,
}

impl Disk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        Disk::default()
    }

    /// Allocates a fresh block and writes `data` into it, returning its
    /// address.
    pub fn write_new(&mut self, data: PageData) -> DiskAddr {
        self.write_new_frame(Frame::new(data))
    }

    /// Allocates a fresh block holding `frame` by reference — the zero-copy
    /// page-out path. The frame may be shared with live mappings; the disk
    /// never mutates it.
    pub fn write_new_frame(&mut self, frame: Frame) -> DiskAddr {
        let addr = DiskAddr(self.next);
        self.next += 1;
        self.writes += 1;
        self.blocks.insert(addr, frame);
        addr
    }

    /// Overwrites an existing block (by frame replacement, never in-place
    /// mutation).
    ///
    /// Returns `false` (and stores nothing) if the block was never
    /// allocated.
    pub fn write(&mut self, addr: DiskAddr, data: PageData) -> bool {
        if let std::collections::btree_map::Entry::Occupied(mut e) = self.blocks.entry(addr) {
            e.insert(Frame::new(data));
            self.writes += 1;
            true
        } else {
            false
        }
    }

    /// Reads a block, returning a copy of its contents.
    pub fn read(&mut self, addr: DiskAddr) -> Option<PageData> {
        let data = self.blocks.get(&addr).map(|f| f.snapshot());
        if data.is_some() {
            self.reads += 1;
        }
        data
    }

    /// Reads a block as a shared frame (no byte copy). A later write
    /// through an `AddressSpace` diverges it via the deferred-copy path.
    pub fn read_frame(&mut self, addr: DiskAddr) -> Option<Frame> {
        let frame = self.blocks.get(&addr).cloned();
        if frame.is_some() {
            self.reads += 1;
        }
        frame
    }

    /// Reads a block and releases it in one step — the zero-copy page-in:
    /// the caller takes over the disk's reference, so a block written by
    /// [`Disk::write_new_frame`] and taken back never copies its bytes.
    /// Counts as one read.
    pub fn take_frame(&mut self, addr: DiskAddr) -> Option<Frame> {
        let frame = self.blocks.remove(&addr);
        if frame.is_some() {
            self.reads += 1;
        }
        frame
    }

    /// Releases a block.
    pub fn free(&mut self, addr: DiskAddr) -> bool {
        self.blocks.remove(&addr).is_some()
    }

    /// Number of blocks currently allocated.
    pub fn blocks_in_use(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes currently stored.
    pub fn bytes_in_use(&self) -> u64 {
        self.blocks.len() as u64 * PAGE_SIZE
    }

    /// Total reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes serviced (including initial allocations).
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl fmt::Display for DiskAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{page_from_bytes, zero_page};

    #[test]
    fn write_read_roundtrip() {
        let mut d = Disk::new();
        let a = d.write_new(page_from_bytes(b"abc"));
        let b = d.write_new(page_from_bytes(b"xyz"));
        assert_ne!(a, b);
        assert_eq!(&d.read(a).unwrap()[..3], b"abc");
        assert_eq!(&d.read(b).unwrap()[..3], b"xyz");
        assert_eq!(d.reads(), 2);
        assert_eq!(d.writes(), 2);
    }

    #[test]
    fn overwrite_requires_allocation() {
        let mut d = Disk::new();
        assert!(!d.write(DiskAddr(99), zero_page()));
        let a = d.write_new(zero_page());
        assert!(d.write(a, page_from_bytes(b"new")));
        assert_eq!(&d.read(a).unwrap()[..3], b"new");
    }

    #[test]
    fn free_releases_blocks() {
        let mut d = Disk::new();
        let a = d.write_new(zero_page());
        assert_eq!(d.blocks_in_use(), 1);
        assert!(d.free(a));
        assert!(!d.free(a));
        assert_eq!(d.blocks_in_use(), 0);
        assert!(d.read(a).is_none());
    }

    #[test]
    fn frame_roundtrip_is_zero_copy() {
        use crate::page::{alloc_stats, Frame};
        let mut d = Disk::new();
        let frame = Frame::new(page_from_bytes(b"shared"));
        alloc_stats::reset();
        let a = d.write_new_frame(frame.clone());
        assert!(frame.is_shared(), "disk holds the same frame");
        let back = d.read_frame(a).unwrap();
        back.with(|data| assert_eq!(&data[..6], b"shared"));
        drop(back);
        let taken = d.take_frame(a).unwrap();
        drop(frame);
        assert!(!taken.is_shared(), "take released the disk's reference");
        assert_eq!(d.reads(), 2);
        assert_eq!(d.blocks_in_use(), 0);
        assert_eq!(alloc_stats::frame_allocs(), 0, "no byte copies");
    }

    #[test]
    fn overwrite_replaces_frame_without_mutating_shares() {
        let mut d = Disk::new();
        let original = crate::page::Frame::new(page_from_bytes(b"old"));
        let a = d.write_new_frame(original.clone());
        assert!(d.write(a, page_from_bytes(b"new")));
        assert_eq!(&d.read(a).unwrap()[..3], b"new");
        original.with(|data| assert_eq!(&data[..3], b"old"));
    }

    #[test]
    fn accounting() {
        let mut d = Disk::new();
        let a = d.write_new(zero_page());
        let _ = d.write_new(zero_page());
        assert_eq!(d.bytes_in_use(), 2 * PAGE_SIZE);
        d.read(a);
        d.read(DiskAddr(1_000_000)); // miss: not counted
        assert_eq!(d.reads(), 1);
    }
}
