//! Error type for address-space manipulation.

use std::fmt;

use crate::page::{PageNum, VAddr};

/// Errors from address-space mutators.
///
/// These are programming errors in the caller (the kernel or a workload
/// builder), distinct from [`crate::Fault`]s, which are the expected runtime
/// events the pager services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// An address fell outside every validated region.
    NotValidated(VAddr),
    /// A page that was required to be resident is not.
    NotResident(PageNum),
    /// A mutator targeted a page whose current state is incompatible
    /// (e.g. installing a disk mapping over an imaginary page).
    BadState(PageNum, &'static str),
    /// A zero-length or inverted range was supplied.
    EmptyRange,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::NotValidated(a) => write!(f, "address {a} is not validated"),
            MemError::NotResident(p) => write!(f, "page {} is not resident", p.0),
            MemError::BadState(p, what) => {
                write!(f, "page {} is in an incompatible state: {what}", p.0)
            }
            MemError::EmptyRange => write!(f, "empty or inverted range"),
        }
    }
}

impl std::error::Error for MemError {}
