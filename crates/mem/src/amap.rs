//! Accessibility Maps (AMaps), paper §2.3.
//!
//! The existence of imaginary objects forces the system to answer "how far
//! away is this memory?" for any address range — carelessly touching an
//! imaginary region from the wrong context deadlocks the Accent kernel. An
//! AMap is a sorted, coalesced interval map classifying every page of an
//! address space into one of four memory distances.
//!
//! AMaps also travel in messages: `ExciseProcess` ships one in the *Core*
//! context message, and the NetMsgServers on both sides use it to decide
//! which subranges of the RIMAS message are physical data and which are
//! IOUs (§2.4, §3.1).

use std::fmt;

use crate::page::{PageNum, PageRange};
use crate::space::SegmentId;

/// The four memory "distances" of paper §2.3, ordered from nearest to
/// farthest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Access {
    /// Validated but never touched; conceptually zero-filled. Immediately
    /// accessible (a cheap FillZero fault materializes it).
    RealZero,
    /// Present in physical memory or on the local disk. "Moderately"
    /// accessible.
    Real,
    /// Mapped to an imaginary segment; data lives behind a backing port,
    /// possibly across the network. "Distantly" accessible.
    Imag,
    /// Never validated. Touching it is an addressing error; "infinitely
    /// distant".
    Bad,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Access::RealZero => "RealZeroMem",
            Access::Real => "RealMem",
            Access::Imag => "ImagMem",
            Access::Bad => "BadMem",
        };
        f.write_str(s)
    }
}

/// One coalesced run of pages sharing an accessibility class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AMapEntry {
    /// The pages covered.
    pub range: PageRange,
    /// Their accessibility class.
    pub access: Access,
    /// For [`Access::Imag`] runs, the backing segment; the run's first page
    /// maps to `seg_offset` pages into that segment and subsequent pages
    /// follow contiguously.
    pub seg: Option<SegmentId>,
    /// Segment page offset of the first page in the run (imaginary runs
    /// only; zero otherwise).
    pub seg_offset: u64,
}

impl AMapEntry {
    fn mergeable_with(&self, next: &AMapEntry) -> bool {
        self.range.end == next.range.start
            && self.access == next.access
            && self.seg == next.seg
            && (self.access != Access::Imag
                || self.seg_offset + self.range.len() == next.seg_offset)
    }
}

/// A sorted, coalesced accessibility map.
///
/// Invariants (checked by [`AMap::verify`], exercised by property tests):
/// entries are sorted by start page, non-overlapping, non-empty, never of
/// class [`Access::Bad`] (gaps *are* BadMem), and no two adjacent entries
/// are mergeable.
///
/// # Examples
///
/// ```
/// use cor_mem::amap::{Access, AMap};
/// use cor_mem::{PageNum, PageRange};
///
/// let mut b = AMap::builder();
/// b.push(PageRange::new(PageNum(0), PageNum(4)), Access::Real, None, 0);
/// b.push(PageRange::new(PageNum(4), PageNum(10)), Access::RealZero, None, 0);
/// let amap = b.finish();
/// assert_eq!(amap.lookup(PageNum(2)).0, Access::Real);
/// assert_eq!(amap.lookup(PageNum(7)).0, Access::RealZero);
/// assert_eq!(amap.lookup(PageNum(10)).0, Access::Bad); // gap
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AMap {
    entries: Vec<AMapEntry>,
}

/// Incremental [`AMap`] constructor that coalesces as it goes.
///
/// Pushes must arrive in ascending, non-overlapping page order (the natural
/// order of a page-table walk).
#[derive(Debug, Default)]
pub struct AMapBuilder {
    entries: Vec<AMapEntry>,
}

impl AMapBuilder {
    /// Appends a run.
    ///
    /// # Panics
    ///
    /// Panics if the run is [`Access::Bad`] (gaps represent BadMem), or if
    /// it is not strictly after the previously pushed run.
    pub fn push(
        &mut self,
        range: PageRange,
        access: Access,
        seg: Option<SegmentId>,
        seg_offset: u64,
    ) {
        if range.is_empty() {
            return;
        }
        assert!(
            access != Access::Bad,
            "BadMem is represented by gaps, not entries"
        );
        assert!(
            (access == Access::Imag) == seg.is_some(),
            "segment id must accompany exactly the Imag class"
        );
        let entry = AMapEntry {
            range,
            access,
            seg,
            seg_offset,
        };
        if let Some(last) = self.entries.last_mut() {
            assert!(
                last.range.end <= range.start,
                "AMap runs must be pushed in ascending order"
            );
            if last.mergeable_with(&entry) {
                last.range = PageRange::new(last.range.start, range.end);
                return;
            }
        }
        self.entries.push(entry);
    }

    /// Finishes construction.
    pub fn finish(self) -> AMap {
        let amap = AMap {
            entries: self.entries,
        };
        debug_assert!(amap.verify().is_ok());
        amap
    }
}

impl AMap {
    /// Starts building an AMap.
    pub fn builder() -> AMapBuilder {
        AMapBuilder::default()
    }

    /// An AMap covering nothing (everything BadMem).
    pub fn empty() -> AMap {
        AMap::default()
    }

    /// Classifies a page, returning its class and backing segment
    /// (with the page's offset *within* that segment) when imaginary.
    pub fn lookup(&self, page: PageNum) -> (Access, Option<(SegmentId, u64)>) {
        match self.entry_for(page) {
            Some(e) => {
                let seg = e
                    .seg
                    .map(|s| (s, e.seg_offset + (page.0 - e.range.start.0)));
                (e.access, seg)
            }
            None => (Access::Bad, None),
        }
    }

    /// The entry containing `page`, if any.
    pub fn entry_for(&self, page: PageNum) -> Option<&AMapEntry> {
        let idx = self.entries.partition_point(|e| e.range.end.0 <= page.0);
        self.entries.get(idx).filter(|e| e.range.contains(page))
    }

    /// All entries in page order.
    pub fn entries(&self) -> &[AMapEntry] {
        &self.entries
    }

    /// Number of coalesced runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map covers nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes covered by entries of class `access`.
    pub fn bytes_of(&self, access: Access) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.access == access)
            .map(|e| e.range.bytes())
            .sum()
    }

    /// Total bytes covered by any entry.
    pub fn covered_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.range.bytes()).sum()
    }

    /// The most distant accessibility class in `range` — the §2.3 question
    /// ("can this range be touched safely from the current context?").
    /// Gaps count as [`Access::Bad`].
    pub fn max_access_in(&self, range: PageRange) -> Access {
        if range.is_empty() {
            return Access::RealZero;
        }
        let mut worst = Access::RealZero;
        let mut covered = 0u64;
        for e in self.runs_in(range) {
            covered += e.range.len();
            worst = worst.max(e.access);
        }
        if covered < range.len() {
            Access::Bad
        } else {
            worst
        }
    }

    /// The entries of `self` clipped to `range`, preserving class and
    /// segment offsets. Used by the NetMsgServer to fragment a message's
    /// out-of-line memory.
    pub fn runs_in(&self, range: PageRange) -> Vec<AMapEntry> {
        let mut out = Vec::new();
        for e in &self.entries {
            if e.range.end.0 <= range.start.0 || e.range.start.0 >= range.end.0 {
                continue;
            }
            let start = e.range.start.0.max(range.start.0);
            let end = e.range.end.0.min(range.end.0);
            out.push(AMapEntry {
                range: PageRange::new(PageNum(start), PageNum(end)),
                access: e.access,
                seg: e.seg,
                seg_offset: e.seg_offset + (start - e.range.start.0),
            });
        }
        out
    }

    /// The size of this AMap's wire encoding in bytes. Modeled after a
    /// compact 1987-style encoding: a 16-byte header plus 12 bytes per run
    /// (start, length, class+segment).
    pub fn wire_size(&self) -> u64 {
        16 + 12 * self.entries.len() as u64
    }

    /// Checks the structural invariants, returning a description of the
    /// first violation.
    pub fn verify(&self) -> Result<(), String> {
        for (i, e) in self.entries.iter().enumerate() {
            if e.range.is_empty() {
                return Err(format!("entry {i} is empty"));
            }
            if e.access == Access::Bad {
                return Err(format!("entry {i} is BadMem"));
            }
            if (e.access == Access::Imag) != e.seg.is_some() {
                return Err(format!("entry {i} has inconsistent segment info"));
            }
            if let Some(prev) = i.checked_sub(1).map(|j| &self.entries[j]) {
                if prev.range.end.0 > e.range.start.0 {
                    return Err(format!("entry {i} overlaps its predecessor"));
                }
                if prev.mergeable_with(e) {
                    return Err(format!("entry {i} should be coalesced with predecessor"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: u64, b: u64) -> PageRange {
        PageRange::new(PageNum(a), PageNum(b))
    }

    #[test]
    fn builder_coalesces_adjacent_same_class() {
        let mut b = AMap::builder();
        b.push(r(0, 2), Access::Real, None, 0);
        b.push(r(2, 5), Access::Real, None, 0);
        b.push(r(5, 6), Access::RealZero, None, 0);
        let m = b.finish();
        assert_eq!(m.len(), 2);
        assert_eq!(m.entries()[0].range, r(0, 5));
    }

    #[test]
    fn builder_does_not_coalesce_across_gaps_or_classes() {
        let mut b = AMap::builder();
        b.push(r(0, 2), Access::Real, None, 0);
        b.push(r(3, 4), Access::Real, None, 0); // gap at page 2
        let m = b.finish();
        assert_eq!(m.len(), 2);
        assert_eq!(m.lookup(PageNum(2)).0, Access::Bad);
    }

    #[test]
    fn imaginary_runs_coalesce_only_when_offsets_flow() {
        let s = SegmentId(1);
        let mut b = AMap::builder();
        b.push(r(0, 2), Access::Imag, Some(s), 0);
        b.push(r(2, 4), Access::Imag, Some(s), 2); // contiguous in segment
        b.push(r(4, 6), Access::Imag, Some(s), 10); // jump: new run
        let m = b.finish();
        assert_eq!(m.len(), 2);
        let (acc, seg) = m.lookup(PageNum(3));
        assert_eq!(acc, Access::Imag);
        assert_eq!(seg, Some((s, 3)));
        let (_, seg) = m.lookup(PageNum(5));
        assert_eq!(seg, Some((s, 11)));
    }

    #[test]
    fn lookup_finds_correct_entry() {
        let mut b = AMap::builder();
        b.push(r(10, 20), Access::RealZero, None, 0);
        b.push(r(30, 40), Access::Real, None, 0);
        let m = b.finish();
        assert_eq!(m.lookup(PageNum(9)).0, Access::Bad);
        assert_eq!(m.lookup(PageNum(10)).0, Access::RealZero);
        assert_eq!(m.lookup(PageNum(19)).0, Access::RealZero);
        assert_eq!(m.lookup(PageNum(20)).0, Access::Bad);
        assert_eq!(m.lookup(PageNum(35)).0, Access::Real);
        assert_eq!(m.lookup(PageNum(40)).0, Access::Bad);
    }

    #[test]
    fn byte_accounting() {
        let mut b = AMap::builder();
        b.push(r(0, 4), Access::Real, None, 0);
        b.push(r(4, 10), Access::RealZero, None, 0);
        let m = b.finish();
        assert_eq!(m.bytes_of(Access::Real), 4 * 512);
        assert_eq!(m.bytes_of(Access::RealZero), 6 * 512);
        assert_eq!(m.bytes_of(Access::Imag), 0);
        assert_eq!(m.covered_bytes(), 10 * 512);
    }

    #[test]
    fn runs_in_clips_and_adjusts_offsets() {
        let s = SegmentId(2);
        let mut b = AMap::builder();
        b.push(r(0, 10), Access::Imag, Some(s), 100);
        let m = b.finish();
        let clipped = m.runs_in(r(3, 7));
        assert_eq!(clipped.len(), 1);
        assert_eq!(clipped[0].range, r(3, 7));
        assert_eq!(clipped[0].seg_offset, 103);
        assert!(m.runs_in(r(50, 60)).is_empty());
    }

    #[test]
    fn max_access_answers_the_distance_question() {
        let mut b = AMap::builder();
        b.push(r(0, 4), Access::Real, None, 0);
        b.push(r(4, 8), Access::RealZero, None, 0);
        b.push(r(8, 10), Access::Imag, Some(SegmentId(1)), 0);
        let m = b.finish();
        assert_eq!(m.max_access_in(r(0, 4)), Access::Real);
        assert_eq!(m.max_access_in(r(4, 8)), Access::RealZero);
        assert_eq!(m.max_access_in(r(0, 8)), Access::Real);
        assert_eq!(m.max_access_in(r(0, 10)), Access::Imag, "any Imag taints");
        assert_eq!(m.max_access_in(r(0, 11)), Access::Bad, "gap taints harder");
        assert_eq!(m.max_access_in(r(20, 25)), Access::Bad);
        assert_eq!(m.max_access_in(r(3, 3)), Access::RealZero, "empty range");
    }

    #[test]
    fn wire_size_grows_with_runs() {
        let mut b = AMap::builder();
        b.push(r(0, 1), Access::Real, None, 0);
        b.push(r(2, 3), Access::Real, None, 0);
        let m = b.finish();
        assert_eq!(m.wire_size(), 16 + 24);
        assert_eq!(AMap::empty().wire_size(), 16);
    }

    #[test]
    #[should_panic(expected = "ascending order")]
    fn out_of_order_push_panics() {
        let mut b = AMap::builder();
        b.push(r(5, 6), Access::Real, None, 0);
        b.push(r(0, 1), Access::Real, None, 0);
    }

    #[test]
    #[should_panic(expected = "BadMem")]
    fn bad_entry_push_panics() {
        let mut b = AMap::builder();
        b.push(r(0, 1), Access::Bad, None, 0);
    }

    #[test]
    fn verify_catches_violations() {
        let good = AMap {
            entries: vec![AMapEntry {
                range: r(0, 2),
                access: Access::Real,
                seg: None,
                seg_offset: 0,
            }],
        };
        assert!(good.verify().is_ok());
        let overlapping = AMap {
            entries: vec![
                AMapEntry {
                    range: r(0, 3),
                    access: Access::Real,
                    seg: None,
                    seg_offset: 0,
                },
                AMapEntry {
                    range: r(2, 4),
                    access: Access::RealZero,
                    seg: None,
                    seg_offset: 0,
                },
            ],
        };
        assert!(overlapping.verify().is_err());
        let uncoalesced = AMap {
            entries: vec![
                AMapEntry {
                    range: r(0, 2),
                    access: Access::Real,
                    seg: None,
                    seg_offset: 0,
                },
                AMapEntry {
                    range: r(2, 4),
                    access: Access::Real,
                    seg: None,
                    seg_offset: 0,
                },
            ],
        };
        assert!(uncoalesced.verify().is_err());
    }
}
