//! A content-addressed page store for replicated page homes.
//!
//! The replication layer (see `docs/REPLICATION.md`) write-through
//! installs a migrated process's owed pages on `f` replica nodes. Each
//! replica keeps the pages in a [`ContentStore`]: frames indexed by
//! their FNV-1a [`Frame::content_hash`], deduplicated by
//! [`Frame::same_contents`] within a hash bucket. A COR read that is
//! routed to a replica resolves the page's content hash against this
//! store instead of walking the origin segment — which is what makes
//! "fetch from anywhere" possible: any node holding bytes with the
//! right hash can answer, regardless of which segment originally owed
//! them.
//!
//! The store is *volatile* NMS state: a node crash wipes it (unlike the
//! crash-survivable disk backer), so a process survives only while at
//! least one of its `f + 1` homes is up.

use std::collections::HashMap;

use crate::page::Frame;

/// Content-hash-indexed frame store held by each replica NMS.
///
/// Buckets are keyed by [`Frame::content_hash`]; within a bucket,
/// insertion deduplicates byte-identical frames (an `Rc` clone costs
/// nothing) and lookups return the earliest-inserted frame, so every
/// operation is deterministic under identical insertion order.
#[derive(Debug, Clone, Default)]
pub struct ContentStore {
    by_hash: HashMap<u64, Vec<Frame>>,
    pages: u64,
}

impl ContentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ContentStore::default()
    }

    /// Installs a frame under its content hash. Returns `true` when the
    /// frame's bytes were new to the store, `false` when an identical
    /// page was already present (the insert is then a no-op).
    pub fn insert(&mut self, frame: &Frame) -> bool {
        let bucket = self.by_hash.entry(frame.content_hash()).or_default();
        if bucket.iter().any(|f| f.same_contents(frame)) {
            return false;
        }
        bucket.push(frame.clone());
        self.pages += 1;
        true
    }

    /// Resolves a content hash to a stored frame, if any. Under a hash
    /// collision (practically never) the earliest-inserted frame wins.
    pub fn get(&self, hash: u64) -> Option<&Frame> {
        self.by_hash.get(&hash).and_then(|b| b.first())
    }

    /// `true` when a frame with this content hash is stored.
    pub fn contains(&self, hash: u64) -> bool {
        self.by_hash.contains_key(&hash)
    }

    /// Number of distinct pages stored.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// `true` when the store holds no pages.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Drops every stored page (the volatile-loss path of a node crash).
    pub fn clear(&mut self) {
        self.by_hash.clear();
        self.pages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::page_from_bytes;

    #[test]
    fn insert_dedups_by_contents() {
        let mut store = ContentStore::new();
        let a = Frame::new(page_from_bytes(b"alpha"));
        let b = Frame::new(page_from_bytes(b"alpha"));
        let c = Frame::new(page_from_bytes(b"gamma"));
        assert!(store.insert(&a));
        assert!(!store.insert(&b), "byte-identical page is a no-op");
        assert!(!store.insert(&a.clone()), "aliases too");
        assert!(store.insert(&c));
        assert_eq!(store.pages(), 2);
    }

    #[test]
    fn lookup_by_hash_round_trips() {
        let mut store = ContentStore::new();
        let a = Frame::new(page_from_bytes(b"alpha"));
        store.insert(&a);
        let h = a.content_hash();
        assert!(store.contains(h));
        assert!(store.get(h).unwrap().same_contents(&a));
        assert!(store.get(h ^ 1).is_none());
        assert!(!store.contains(h ^ 1));
    }

    #[test]
    fn clear_models_volatile_loss() {
        let mut store = ContentStore::new();
        let a = Frame::new(page_from_bytes(b"alpha"));
        store.insert(&a);
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.pages(), 0);
        assert!(store.get(a.content_hash()).is_none());
    }
}
