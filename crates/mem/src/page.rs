//! Pages, addresses, and reference-counted frames.
//!
//! Accent used 512-byte pages (§2.1 of the paper); every quantity in the
//! evaluation (resident sets, prefetch units, fault granularity) is in these
//! units, so the page size is a crate-wide constant rather than a parameter.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// The Accent page size in bytes.
pub const PAGE_SIZE: u64 = 512;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 9;

/// A virtual address within a (up to 4 GB, as on the Perq) address space.
///
/// Addresses are 64-bit here so that arithmetic never overflows even for the
/// Lisp workloads that validate their entire 4 GB space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

/// A virtual page number: `addr >> 9`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(pub u64);

impl VAddr {
    /// The page containing this address.
    pub const fn page(self) -> PageNum {
        PageNum(self.0 >> PAGE_SHIFT)
    }

    /// The byte offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Address arithmetic.
    pub const fn offset(self, delta: u64) -> VAddr {
        VAddr(self.0 + delta)
    }
}

impl PageNum {
    /// The first address of this page.
    pub const fn base(self) -> VAddr {
        VAddr(self.0 << PAGE_SHIFT)
    }

    /// The page `delta` pages after this one.
    pub const fn offset(self, delta: u64) -> PageNum {
        PageNum(self.0 + delta)
    }
}

/// A half-open range of pages `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRange {
    /// First page in the range.
    pub start: PageNum,
    /// One past the last page.
    pub end: PageNum,
}

impl PageRange {
    /// Creates a range; `start` may equal `end` (empty range).
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: PageNum, end: PageNum) -> Self {
        assert!(start <= end, "inverted page range");
        PageRange { start, end }
    }

    /// The smallest page range covering `[addr, addr + len)`.
    pub fn covering(addr: VAddr, len: u64) -> Self {
        if len == 0 {
            let p = addr.page();
            return PageRange::new(p, p);
        }
        let start = addr.page();
        let last = VAddr(addr.0 + len - 1).page();
        PageRange::new(start, PageNum(last.0 + 1))
    }

    /// Number of pages in the range.
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// `true` when the range contains no pages.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Number of bytes spanned.
    pub fn bytes(&self) -> u64 {
        self.len() * PAGE_SIZE
    }

    /// Whether `page` lies within the range.
    pub fn contains(&self, page: PageNum) -> bool {
        self.start <= page && page < self.end
    }

    /// Iterator over the pages in the range.
    pub fn iter(&self) -> impl Iterator<Item = PageNum> {
        (self.start.0..self.end.0).map(PageNum)
    }

    /// The underlying numeric range.
    pub fn as_range(&self) -> Range<u64> {
        self.start.0..self.end.0
    }
}

/// The contents of one page.
pub type PageData = Box<[u8; PAGE_SIZE as usize]>;

/// Allocates a zero-filled page.
pub fn zero_page() -> PageData {
    Box::new([0u8; PAGE_SIZE as usize])
}

/// Allocates a page initialized from `bytes` (zero-padded, truncated to the
/// page size).
pub fn page_from_bytes(bytes: &[u8]) -> PageData {
    let mut p = zero_page();
    let n = bytes.len().min(PAGE_SIZE as usize);
    p[..n].copy_from_slice(&bytes[..n]);
    p
}

/// A reference-counted physical frame.
///
/// The strong count *is* the copy-on-write reference count: a frame with
/// `Frame::is_shared() == true` must be copied before being written. This is
/// the deferred-copy machinery of Accent's IPC (§2.1): mapping message data
/// into a receiver clones the `Rc`, and the 512-byte copy happens only when
/// either party writes.
#[derive(Clone)]
pub struct Frame(Rc<FrameInner>);

/// The shared interior of a [`Frame`]: the page bytes plus a memoized
/// content hash. The hash cell caches [`Frame::content_hash`] so the
/// 512-byte FNV walk runs at most once per contents version — every
/// alias of the frame (CoW shares, messages in flight, dedup-table
/// residents) reuses it for free, and any mutation through
/// [`Frame::with_mut`] invalidates it.
struct FrameInner {
    data: RefCell<PageData>,
    hash: Cell<Option<u64>>,
}

impl FrameInner {
    fn new(data: PageData) -> Self {
        FrameInner {
            data: RefCell::new(data),
            hash: Cell::new(None),
        }
    }
}

thread_local! {
    /// The interned zero frame: one canonical all-zeros page per thread
    /// (frames are `Rc`-based and never cross threads). Every
    /// [`Frame::zeroed`] call aliases it, so validating or zero-filling
    /// megabytes of RealZeroMem costs reference bumps, not allocations;
    /// the first write diverges through the normal deferred-copy path.
    static ZERO_FRAME: Frame = Frame(Rc::new(FrameInner::new(zero_page())));
}

/// A thread-local pool of recycled `Vec<Frame>` buffers for message
/// assembly on the COR reply hot path. Serving a read request builds a
/// frame vector, ships it inside the reply, and the consumer drains it
/// at install time; [`frame_pool::give`] returns the drained (or
/// emptied) vector here so the next reply assembles into warmed
/// capacity instead of a fresh heap allocation. Purely an allocator
/// shortcut: pooled vectors are always handed out empty, so behaviour
/// is identical to `Vec::new`.
pub mod frame_pool {
    use std::cell::RefCell;

    use super::Frame;

    /// Upper bound on pooled buffers per thread; beyond it, returned
    /// vectors are simply dropped.
    const MAX_POOLED: usize = 32;

    thread_local! {
        static POOL: RefCell<Vec<Vec<Frame>>> = const { RefCell::new(Vec::new()) };
    }

    /// Takes an empty frame vector with at least `cap` capacity,
    /// reusing a pooled buffer when one is available.
    pub fn take(cap: usize) -> Vec<Frame> {
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            match pool.pop() {
                Some(mut v) => {
                    v.reserve(cap);
                    v
                }
                None => Vec::with_capacity(cap),
            }
        })
    }

    /// Returns a spent frame vector to the pool (cleared first; frame
    /// refcounts drop as usual).
    pub fn give(mut v: Vec<Frame>) {
        if v.capacity() == 0 {
            return;
        }
        v.clear();
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(v);
            }
        });
    }
}

/// Frame-allocation counters, compiled in for tests and for builds with the
/// `alloc-stats` feature. They let benchmarks and regression tests assert
/// the zero-copy pipeline's claim directly: sparse workloads must allocate
/// O(pages touched) frames, not O(address-space size).
#[cfg(any(test, feature = "alloc-stats"))]
pub mod alloc_stats {
    use std::cell::Cell;

    thread_local! {
        static FRAME_ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    pub(crate) fn record_alloc() {
        FRAME_ALLOCS.with(|c| c.set(c.get() + 1));
    }

    /// Fresh page-sized frame allocations on this thread since the last
    /// [`reset`]. Interned-zero clones and CoW `Rc` shares do not count.
    pub fn frame_allocs() -> u64 {
        FRAME_ALLOCS.with(|c| c.get())
    }

    /// Zeroes this thread's allocation counter.
    pub fn reset() {
        FRAME_ALLOCS.with(|c| c.set(0));
    }
}

impl Frame {
    /// Wraps page data in a frame.
    pub fn new(data: PageData) -> Self {
        #[cfg(any(test, feature = "alloc-stats"))]
        alloc_stats::record_alloc();
        Frame(Rc::new(FrameInner::new(data)))
    }

    /// A zero-filled frame: an alias of the thread's interned zero page.
    ///
    /// The returned frame is permanently shared (the intern itself holds a
    /// reference), so any write through an `AddressSpace` first diverges it
    /// into a private copy — observable behaviour is identical to a fresh
    /// allocation, minus the 512-byte allocate-and-memset per call.
    pub fn zeroed() -> Self {
        ZERO_FRAME.with(Frame::clone)
    }

    /// `true` when this frame is an alias of the interned zero page.
    pub fn is_interned_zero(&self) -> bool {
        ZERO_FRAME.with(|z| Rc::ptr_eq(&z.0, &self.0))
    }

    /// `true` when more than one mapping references this frame, i.e. a write
    /// must first perform the deferred copy.
    pub fn is_shared(&self) -> bool {
        Rc::strong_count(&self.0) > 1
    }

    /// Copies the frame contents into a brand-new unshared frame.
    pub fn deep_copy(&self) -> Frame {
        Frame::new(Box::new(**self.0.data.borrow()))
    }

    /// Forces this mapping private: if the frame is shared (with another
    /// mapping, a message in flight, or the zero intern), replaces it with
    /// a deep copy. Use on transfer paths only where a caller is about to
    /// mutate bytes outside the `AddressSpace` write discipline; everything
    /// else should rely on the deferred copy in `check_write`.
    pub fn unshare(&mut self) {
        if self.is_shared() {
            *self = self.deep_copy();
        }
    }

    /// Reads the whole page into a fresh buffer.
    pub fn snapshot(&self) -> PageData {
        Box::new(**self.0.data.borrow())
    }

    /// FNV-1a hash of the page contents, for content-addressed dedup
    /// caches. Equal pages always collide; unequal pages practically never
    /// do, but dedup callers must still confirm with
    /// [`Frame::same_contents`].
    ///
    /// Memoized per contents version: the 512-byte walk happens once,
    /// every later call (on this frame or any alias of it) returns the
    /// cached value, and a mutation through [`Frame::with_mut`]
    /// invalidates the cache. On the COR reply path, where shared and
    /// interned frames are re-hashed every time they cross a dedup-capable
    /// NetMsgServer, this turns the checksum into a constant-time lookup.
    pub fn content_hash(&self) -> u64 {
        if let Some(h) = self.0.hash.get() {
            return h;
        }
        let h = self.with(|d| {
            let mut h: u64 = 0xcbf29ce484222325;
            for &b in d.iter() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        });
        self.0.hash.set(Some(h));
        h
    }

    /// Byte-for-byte equality of two frames (constant-time `true` for two
    /// aliases of the same frame).
    pub fn same_contents(&self, other: &Frame) -> bool {
        Rc::ptr_eq(&self.0, &other.0) || self.with(|a| other.with(|b| a[..] == b[..]))
    }

    /// Runs `f` over the page contents.
    pub fn with<R>(&self, f: impl FnOnce(&[u8; PAGE_SIZE as usize]) -> R) -> R {
        f(&self.0.data.borrow())
    }

    /// Runs `f` over the mutable page contents.
    ///
    /// Callers must only do this on unshared frames (enforced by
    /// `AddressSpace`, which copies shared frames first); mutating a shared
    /// frame would violate copy-on-write semantics, though it cannot violate
    /// memory safety. Invalidates the memoized content hash.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [u8; PAGE_SIZE as usize]) -> R) -> R {
        self.0.hash.set(None);
        f(&mut self.0.data.borrow_mut())
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame(rc={})", Rc::strong_count(&self.0))
    }
}

impl fmt::Debug for FrameInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FrameInner")
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.0)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageNum({})", self.0)
    }
}

impl fmt::Debug for PageRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pages[{}, {})", self.start.0, self.end.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_math() {
        assert_eq!(VAddr(0).page(), PageNum(0));
        assert_eq!(VAddr(511).page(), PageNum(0));
        assert_eq!(VAddr(512).page(), PageNum(1));
        assert_eq!(VAddr(513).page_offset(), 1);
        assert_eq!(PageNum(3).base(), VAddr(1536));
    }

    #[test]
    fn covering_ranges() {
        let r = PageRange::covering(VAddr(0), 512);
        assert_eq!((r.start, r.end), (PageNum(0), PageNum(1)));
        let r = PageRange::covering(VAddr(0), 513);
        assert_eq!(r.len(), 2);
        let r = PageRange::covering(VAddr(100), 412);
        assert_eq!(r.len(), 1);
        let r = PageRange::covering(VAddr(100), 413);
        assert_eq!(r.len(), 2);
        let r = PageRange::covering(VAddr(1000), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn range_iteration_and_bytes() {
        let r = PageRange::new(PageNum(2), PageNum(5));
        assert_eq!(
            r.iter().collect::<Vec<_>>(),
            vec![PageNum(2), PageNum(3), PageNum(4)]
        );
        assert_eq!(r.bytes(), 3 * PAGE_SIZE);
        assert!(r.contains(PageNum(4)));
        assert!(!r.contains(PageNum(5)));
    }

    #[test]
    fn frame_sharing_and_deep_copy() {
        let f = Frame::new(page_from_bytes(b"hello"));
        assert!(!f.is_shared());
        let g = f.clone();
        assert!(f.is_shared() && g.is_shared());
        let h = g.deep_copy();
        h.with_mut(|d| d[0] = b'H');
        // The copy diverged; the original is untouched.
        f.with(|d| assert_eq!(&d[..5], b"hello"));
        h.with(|d| assert_eq!(&d[..5], b"Hello"));
        drop(g);
        assert!(!f.is_shared());
    }

    #[test]
    fn zeroed_frames_are_interned_aliases() {
        let a = Frame::zeroed();
        let b = Frame::zeroed();
        assert!(a.is_interned_zero() && b.is_interned_zero());
        // Both alias the intern, so both are permanently shared.
        assert!(a.is_shared() && b.is_shared());
        a.with(|d| assert!(d.iter().all(|&x| x == 0)));
    }

    #[test]
    fn unshare_diverges_interned_zero() {
        let mut a = Frame::zeroed();
        a.unshare();
        assert!(!a.is_interned_zero());
        assert!(!a.is_shared());
        a.with_mut(|d| d[0] = 1);
        // The intern is untouched by the write.
        Frame::zeroed().with(|d| assert_eq!(d[0], 0));
    }

    #[test]
    fn unshare_is_a_noop_on_private_frames() {
        let mut f = Frame::new(page_from_bytes(b"priv"));
        alloc_stats::reset();
        f.unshare();
        assert_eq!(alloc_stats::frame_allocs(), 0, "already private");
    }

    #[test]
    fn alloc_stats_count_fresh_frames_only() {
        alloc_stats::reset();
        let z = Frame::zeroed();
        let _alias = z.clone();
        assert_eq!(alloc_stats::frame_allocs(), 0, "interned + Rc shares");
        let f = Frame::new(zero_page());
        let _ = f.deep_copy();
        assert_eq!(alloc_stats::frame_allocs(), 2);
    }

    #[test]
    fn content_hash_is_memoized_and_invalidated_by_writes() {
        let f = Frame::new(page_from_bytes(b"abc"));
        let h1 = f.content_hash();
        assert_eq!(f.content_hash(), h1, "second call hits the cache");
        // An alias shares the memo.
        let alias = f.clone();
        assert_eq!(alias.content_hash(), h1);
        // A write invalidates it and the recomputed hash differs.
        let g = f.deep_copy();
        assert_eq!(g.content_hash(), h1, "deep copy has equal contents");
        g.with_mut(|d| d[0] = b'x');
        assert_ne!(g.content_hash(), h1, "mutation invalidates the memo");
        // And matches a from-scratch frame with the same bytes.
        let mut fresh = *zero_page();
        fresh[..3].copy_from_slice(b"xbc");
        assert_eq!(g.content_hash(), Frame::new(Box::new(fresh)).content_hash());
    }

    #[test]
    fn frame_pool_recycles_capacity() {
        let mut v = frame_pool::take(4);
        assert!(v.is_empty());
        v.push(Frame::zeroed());
        v.push(Frame::zeroed());
        let cap = v.capacity();
        frame_pool::give(v);
        let v2 = frame_pool::take(1);
        assert!(v2.is_empty(), "pooled buffers come back empty");
        assert!(v2.capacity() >= cap.min(1), "capacity survives the round trip");
        frame_pool::give(v2);
        frame_pool::give(Vec::new()); // zero-capacity returns are dropped
    }

    #[test]
    fn page_from_bytes_pads_and_truncates() {
        let p = page_from_bytes(b"ab");
        assert_eq!(&p[..2], b"ab");
        assert!(p[2..].iter().all(|&b| b == 0));
        let big = vec![7u8; 1000];
        let p = page_from_bytes(&big);
        assert!(p.iter().all(|&b| b == 7));
    }
}
