//! Pages, addresses, and reference-counted frames.
//!
//! Accent used 512-byte pages (§2.1 of the paper); every quantity in the
//! evaluation (resident sets, prefetch units, fault granularity) is in these
//! units, so the page size is a crate-wide constant rather than a parameter.

use std::cell::RefCell;
use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// The Accent page size in bytes.
pub const PAGE_SIZE: u64 = 512;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 9;

/// A virtual address within a (up to 4 GB, as on the Perq) address space.
///
/// Addresses are 64-bit here so that arithmetic never overflows even for the
/// Lisp workloads that validate their entire 4 GB space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

/// A virtual page number: `addr >> 9`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(pub u64);

impl VAddr {
    /// The page containing this address.
    pub const fn page(self) -> PageNum {
        PageNum(self.0 >> PAGE_SHIFT)
    }

    /// The byte offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Address arithmetic.
    pub const fn offset(self, delta: u64) -> VAddr {
        VAddr(self.0 + delta)
    }
}

impl PageNum {
    /// The first address of this page.
    pub const fn base(self) -> VAddr {
        VAddr(self.0 << PAGE_SHIFT)
    }

    /// The page `delta` pages after this one.
    pub const fn offset(self, delta: u64) -> PageNum {
        PageNum(self.0 + delta)
    }
}

/// A half-open range of pages `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRange {
    /// First page in the range.
    pub start: PageNum,
    /// One past the last page.
    pub end: PageNum,
}

impl PageRange {
    /// Creates a range; `start` may equal `end` (empty range).
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: PageNum, end: PageNum) -> Self {
        assert!(start <= end, "inverted page range");
        PageRange { start, end }
    }

    /// The smallest page range covering `[addr, addr + len)`.
    pub fn covering(addr: VAddr, len: u64) -> Self {
        if len == 0 {
            let p = addr.page();
            return PageRange::new(p, p);
        }
        let start = addr.page();
        let last = VAddr(addr.0 + len - 1).page();
        PageRange::new(start, PageNum(last.0 + 1))
    }

    /// Number of pages in the range.
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// `true` when the range contains no pages.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Number of bytes spanned.
    pub fn bytes(&self) -> u64 {
        self.len() * PAGE_SIZE
    }

    /// Whether `page` lies within the range.
    pub fn contains(&self, page: PageNum) -> bool {
        self.start <= page && page < self.end
    }

    /// Iterator over the pages in the range.
    pub fn iter(&self) -> impl Iterator<Item = PageNum> {
        (self.start.0..self.end.0).map(PageNum)
    }

    /// The underlying numeric range.
    pub fn as_range(&self) -> Range<u64> {
        self.start.0..self.end.0
    }
}

/// The contents of one page.
pub type PageData = Box<[u8; PAGE_SIZE as usize]>;

/// Allocates a zero-filled page.
pub fn zero_page() -> PageData {
    Box::new([0u8; PAGE_SIZE as usize])
}

/// Allocates a page initialized from `bytes` (zero-padded, truncated to the
/// page size).
pub fn page_from_bytes(bytes: &[u8]) -> PageData {
    let mut p = zero_page();
    let n = bytes.len().min(PAGE_SIZE as usize);
    p[..n].copy_from_slice(&bytes[..n]);
    p
}

/// A reference-counted physical frame.
///
/// The strong count *is* the copy-on-write reference count: a frame with
/// `Frame::is_shared() == true` must be copied before being written. This is
/// the deferred-copy machinery of Accent's IPC (§2.1): mapping message data
/// into a receiver clones the `Rc`, and the 512-byte copy happens only when
/// either party writes.
#[derive(Clone)]
pub struct Frame(Rc<RefCell<PageData>>);

impl Frame {
    /// Wraps page data in a frame.
    pub fn new(data: PageData) -> Self {
        Frame(Rc::new(RefCell::new(data)))
    }

    /// A fresh zero-filled frame.
    pub fn zeroed() -> Self {
        Frame::new(zero_page())
    }

    /// `true` when more than one mapping references this frame, i.e. a write
    /// must first perform the deferred copy.
    pub fn is_shared(&self) -> bool {
        Rc::strong_count(&self.0) > 1
    }

    /// Copies the frame contents into a brand-new unshared frame.
    pub fn deep_copy(&self) -> Frame {
        Frame::new(Box::new(**self.0.borrow()))
    }

    /// Reads the whole page into a fresh buffer.
    pub fn snapshot(&self) -> PageData {
        Box::new(**self.0.borrow())
    }

    /// Runs `f` over the page contents.
    pub fn with<R>(&self, f: impl FnOnce(&[u8; PAGE_SIZE as usize]) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Runs `f` over the mutable page contents.
    ///
    /// Callers must only do this on unshared frames (enforced by
    /// `AddressSpace`, which copies shared frames first); mutating a shared
    /// frame would violate copy-on-write semantics, though it cannot violate
    /// memory safety.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [u8; PAGE_SIZE as usize]) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame(rc={})", Rc::strong_count(&self.0))
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.0)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageNum({})", self.0)
    }
}

impl fmt::Debug for PageRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pages[{}, {})", self.start.0, self.end.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_math() {
        assert_eq!(VAddr(0).page(), PageNum(0));
        assert_eq!(VAddr(511).page(), PageNum(0));
        assert_eq!(VAddr(512).page(), PageNum(1));
        assert_eq!(VAddr(513).page_offset(), 1);
        assert_eq!(PageNum(3).base(), VAddr(1536));
    }

    #[test]
    fn covering_ranges() {
        let r = PageRange::covering(VAddr(0), 512);
        assert_eq!((r.start, r.end), (PageNum(0), PageNum(1)));
        let r = PageRange::covering(VAddr(0), 513);
        assert_eq!(r.len(), 2);
        let r = PageRange::covering(VAddr(100), 412);
        assert_eq!(r.len(), 1);
        let r = PageRange::covering(VAddr(100), 413);
        assert_eq!(r.len(), 2);
        let r = PageRange::covering(VAddr(1000), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn range_iteration_and_bytes() {
        let r = PageRange::new(PageNum(2), PageNum(5));
        assert_eq!(
            r.iter().collect::<Vec<_>>(),
            vec![PageNum(2), PageNum(3), PageNum(4)]
        );
        assert_eq!(r.bytes(), 3 * PAGE_SIZE);
        assert!(r.contains(PageNum(4)));
        assert!(!r.contains(PageNum(5)));
    }

    #[test]
    fn frame_sharing_and_deep_copy() {
        let f = Frame::new(page_from_bytes(b"hello"));
        assert!(!f.is_shared());
        let g = f.clone();
        assert!(f.is_shared() && g.is_shared());
        let h = g.deep_copy();
        h.with_mut(|d| d[0] = b'H');
        // The copy diverged; the original is untouched.
        f.with(|d| assert_eq!(&d[..5], b"hello"));
        h.with(|d| assert_eq!(&d[..5], b"Hello"));
        drop(g);
        assert!(!f.is_shared());
    }

    #[test]
    fn page_from_bytes_pads_and_truncates() {
        let p = page_from_bytes(b"ab");
        assert_eq!(&p[..2], b"ab");
        assert!(p[2..].iter().all(|&b| b == 0));
        let big = vec![7u8; 1000];
        let p = page_from_bytes(&big);
        assert!(p.iter().all(|&b| b == 7));
    }
}
