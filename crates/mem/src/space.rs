//! Sparse process address spaces.
//!
//! An [`AddressSpace`] supports the Accent idioms the paper's evaluation
//! depends on:
//!
//! * **Sparse validation** — validating a range is O(regions), not O(pages):
//!   Lisp validates its full 4 GB at birth (Table 4-1) yet the page table
//!   only ever holds touched pages. Untouched validated pages are
//!   *RealZeroMem* and are materialized by a [`Fault::FillZero`].
//! * **Copy-on-write** — resident pages are reference-counted [`Frame`]s; a
//!   write to a shared frame performs the deferred 512-byte copy.
//! * **Imaginary mappings** — pages may map to a [`SegmentId`] (an IOU for
//!   data behind a backing port); touching one raises [`Fault::Imaginary`].
//! * **Limited physical memory** — an LRU [`ResidentTracker`] pages the
//!   least recently used page out to the local [`Disk`] when a configured
//!   frame budget is exceeded, giving each process a meaningful resident
//!   set at migration time (Table 4-2).

use std::collections::BTreeMap;
use std::fmt;

use crate::amap::{AMap, Access};
use crate::disk::{Disk, DiskAddr};
use crate::error::MemError;
use crate::fault::Fault;
use crate::page::{Frame, PageData, PageNum, PageRange, VAddr, PAGE_SIZE};
use crate::resident::ResidentTracker;

/// Identifies an imaginary segment (a memory object served through a
/// backing IPC port). Allocation and the backing protocol live in
/// `cor-ipc`; the address space only records which segment a page owes its
/// data to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u64);

/// Where one materialized page's data currently lives.
#[derive(Debug, Clone)]
pub enum PageState {
    /// In physical memory. The frame may be shared copy-on-write.
    Resident(Frame),
    /// Paged out to the local disk.
    OnDisk(DiskAddr),
    /// Owed by an imaginary segment: the page's data is `offset` pages into
    /// segment `seg` and must be fetched through its backing port.
    Imaginary {
        /// The owing segment.
        seg: SegmentId,
        /// Page offset within the segment.
        offset: u64,
    },
}

/// Byte-level composition of an address space, as reported in Table 4-1 of
/// the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceStats {
    /// Allocated, non-zero data (*RealMem*): resident plus paged-out bytes.
    pub real_bytes: u64,
    /// Allocated but never touched (*RealZeroMem*).
    pub realzero_bytes: u64,
    /// Bytes owed by imaginary segments (*ImagMem*).
    pub imag_bytes: u64,
    /// Bytes currently resident in physical memory.
    pub resident_bytes: u64,
}

impl SpaceStats {
    /// Total validated bytes.
    pub fn total_bytes(&self) -> u64 {
        self.real_bytes + self.realzero_bytes + self.imag_bytes
    }

    /// RealZeroMem share of the total, as a percentage.
    pub fn realzero_pct(&self) -> f64 {
        if self.total_bytes() == 0 {
            0.0
        } else {
            100.0 * self.realzero_bytes as f64 / self.total_bytes() as f64
        }
    }
}

/// A sparse virtual address space.
pub struct AddressSpace {
    /// Sorted, disjoint, non-adjacent validated page ranges.
    regions: Vec<(u64, u64)>,
    /// Materialized pages only; a validated page absent from this map is
    /// RealZeroMem.
    pages: BTreeMap<PageNum, PageState>,
    resident: ResidentTracker,
    zero_fills: u64,
    cow_copies: u64,
    pageouts: u64,
}

impl AddressSpace {
    /// Creates an empty space with unbounded physical memory.
    pub fn new() -> Self {
        AddressSpace {
            regions: Vec::new(),
            pages: BTreeMap::new(),
            resident: ResidentTracker::unbounded(),
            zero_fills: 0,
            cow_copies: 0,
            pageouts: 0,
        }
    }

    /// Creates an empty space whose resident set is bounded to
    /// `frame_budget` pages (LRU page-out beyond that).
    pub fn with_frame_budget(frame_budget: usize) -> Self {
        let mut s = AddressSpace::new();
        s.resident = ResidentTracker::with_capacity(frame_budget);
        s
    }

    /// Adjusts the frame budget (`None` = unbounded).
    pub fn set_frame_budget(&mut self, frames: Option<usize>) {
        self.resident.set_capacity(frames);
    }

    /// The current frame budget (`None` = unbounded).
    pub fn frame_budget(&self) -> Option<usize> {
        self.resident.capacity()
    }

    // ----- validation ------------------------------------------------------

    /// Validates (allocates) the pages covering `[addr, addr+len)`.
    /// Validation is idempotent and merges with adjacent regions; it is
    /// conceptually a zero-fill, deferred until first touch (paper §2.3).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EmptyRange`] when `len` is zero.
    pub fn validate(&mut self, addr: VAddr, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Err(MemError::EmptyRange);
        }
        let r = PageRange::covering(addr, len);
        self.validate_pages(r);
        Ok(())
    }

    /// Validates a page range directly.
    pub fn validate_pages(&mut self, r: PageRange) {
        if r.is_empty() {
            return;
        }
        let (mut start, mut end) = (r.start.0, r.end.0);
        // Merge every region overlapping or adjacent to [start, end).
        let mut merged = Vec::with_capacity(self.regions.len() + 1);
        let mut placed = false;
        for &(s, e) in &self.regions {
            if e < start || s > end {
                if s > end && !placed {
                    merged.push((start, end));
                    placed = true;
                }
                merged.push((s, e));
            } else {
                start = start.min(s);
                end = end.max(e);
            }
        }
        if !placed {
            merged.push((start, end));
            merged.sort_unstable();
        }
        self.regions = merged;
    }

    /// Whether `page` lies in a validated region.
    pub fn is_validated(&self, page: PageNum) -> bool {
        let idx = self.regions.partition_point(|&(_, e)| e <= page.0);
        self.regions.get(idx).is_some_and(|&(s, _)| s <= page.0)
    }

    /// The validated regions as page ranges.
    pub fn regions(&self) -> Vec<PageRange> {
        self.regions
            .iter()
            .map(|&(s, e)| PageRange::new(PageNum(s), PageNum(e)))
            .collect()
    }

    // ----- classification --------------------------------------------------

    /// Classifies a page into its accessibility class.
    pub fn classify(&self, page: PageNum) -> Access {
        match self.pages.get(&page) {
            Some(PageState::Resident(_)) | Some(PageState::OnDisk(_)) => Access::Real,
            Some(PageState::Imaginary { .. }) => Access::Imag,
            None if self.is_validated(page) => Access::RealZero,
            None => Access::Bad,
        }
    }

    /// Builds the accessibility map for the whole space: a walk of the
    /// regions and the page table, coalescing as it goes. This is the
    /// operation whose cost dominates `ExciseProcess` for sparse spaces
    /// (Table 4-4); its *cost model* lives in the kernel crate, keyed on
    /// [`AddressSpace::map_complexity`].
    pub fn amap(&self) -> AMap {
        let mut b = AMap::builder();
        for &(rs, re) in &self.regions {
            let mut cursor = rs;
            for (&p, state) in self.pages.range(PageNum(rs)..PageNum(re)) {
                if cursor < p.0 {
                    b.push(
                        PageRange::new(PageNum(cursor), p),
                        Access::RealZero,
                        None,
                        0,
                    );
                }
                let one = PageRange::new(p, PageNum(p.0 + 1));
                match state {
                    PageState::Resident(_) | PageState::OnDisk(_) => {
                        b.push(one, Access::Real, None, 0)
                    }
                    PageState::Imaginary { seg, offset } => {
                        b.push(one, Access::Imag, Some(*seg), *offset)
                    }
                }
                cursor = p.0 + 1;
            }
            if cursor < re {
                b.push(
                    PageRange::new(PageNum(cursor), PageNum(re)),
                    Access::RealZero,
                    None,
                    0,
                );
            }
        }
        b.finish()
    }

    /// A complexity measure for the AMap construction cost model: the
    /// number of validated regions plus materialized page-table entries the
    /// kernel must walk.
    pub fn map_complexity(&self) -> u64 {
        self.regions.len() as u64 + self.pages.len() as u64
    }

    // ----- access checks (fault detection) ---------------------------------

    /// Checks whether `page` can be read right now; on failure returns the
    /// fault that must be serviced first. A successful check refreshes the
    /// page's LRU recency.
    pub fn check_read(&mut self, page: PageNum) -> Result<(), Fault> {
        match self.pages.get(&page) {
            Some(PageState::Resident(_)) => {
                self.resident.refresh(page);
                Ok(())
            }
            Some(PageState::OnDisk(addr)) => Err(Fault::DiskIn { page, addr: *addr }),
            Some(PageState::Imaginary { seg, offset }) => Err(Fault::Imaginary {
                page,
                seg: *seg,
                offset: *offset,
            }),
            None if self.is_validated(page) => Err(Fault::FillZero { page }),
            None => Err(Fault::Addressing { addr: page.base() }),
        }
    }

    /// Checks whether `page` can be written right now. Performs the
    /// deferred copy-on-write duplication if the page is resident but
    /// shared (counted in [`AddressSpace::cow_copies`]); other states fault
    /// exactly as [`AddressSpace::check_read`].
    ///
    /// Diverging an interned-zero alias is *not* counted as a CoW copy: it
    /// is the deferred materialization of a zero-fill (the pre-interning
    /// pager allocated that page at fault time), not a copy forced by
    /// sharing with another mapping.
    pub fn check_write(&mut self, page: PageNum) -> Result<(), Fault> {
        self.check_read(page)?;
        if let Some(PageState::Resident(frame)) = self.pages.get_mut(&page) {
            if frame.is_shared() {
                let materializing_zero = frame.is_interned_zero();
                *frame = frame.deep_copy();
                if !materializing_zero {
                    self.cow_copies += 1;
                }
            }
        }
        Ok(())
    }

    // ----- data access (requires residency) --------------------------------

    /// Reads `buf.len()` bytes starting at `addr`. Every covered page must
    /// be resident (callers service faults from `check_read` first).
    ///
    /// # Errors
    ///
    /// [`MemError::NotResident`] if any covered page is not resident.
    pub fn read(&self, addr: VAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < buf.len() {
            let page = cursor.page();
            let off = cursor.page_offset() as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - filled);
            match self.pages.get(&page) {
                Some(PageState::Resident(frame)) => {
                    frame.with(|d| buf[filled..filled + n].copy_from_slice(&d[off..off + n]));
                }
                _ => return Err(MemError::NotResident(page)),
            }
            filled += n;
            cursor = cursor.offset(n as u64);
        }
        Ok(())
    }

    /// Writes `data` starting at `addr`. Every covered page must be
    /// resident and unshared (callers run `check_write` first).
    ///
    /// # Errors
    ///
    /// [`MemError::NotResident`] if a covered page is not resident;
    /// [`MemError::BadState`] if one is still copy-on-write shared.
    pub fn write(&mut self, addr: VAddr, data: &[u8]) -> Result<(), MemError> {
        let mut cursor = addr;
        let mut written = 0usize;
        while written < data.len() {
            let page = cursor.page();
            let off = cursor.page_offset() as usize;
            let n = ((PAGE_SIZE as usize) - off).min(data.len() - written);
            match self.pages.get(&page) {
                Some(PageState::Resident(frame)) => {
                    if frame.is_shared() {
                        return Err(MemError::BadState(page, "copy-on-write shared"));
                    }
                    frame
                        .with_mut(|d| d[off..off + n].copy_from_slice(&data[written..written + n]));
                }
                _ => return Err(MemError::NotResident(page)),
            }
            written += n;
            cursor = cursor.offset(n as u64);
        }
        Ok(())
    }

    // ----- fault service mutators (called by the pager) --------------------

    /// Services a FillZero fault: materializes `page` as an alias of the
    /// interned zero frame (no allocation; a later write diverges it). May
    /// page out an LRU victim to `disk`.
    ///
    /// # Errors
    ///
    /// [`MemError::NotValidated`] if the page is outside every region;
    /// [`MemError::BadState`] if it is already materialized.
    pub fn fill_zero(&mut self, page: PageNum, disk: &mut Disk) -> Result<(), MemError> {
        if !self.is_validated(page) {
            return Err(MemError::NotValidated(page.base()));
        }
        if self.pages.contains_key(&page) {
            return Err(MemError::BadState(page, "already materialized"));
        }
        self.zero_fills += 1;
        self.install_frame(page, Frame::zeroed(), disk);
        Ok(())
    }

    /// Services a DiskIn fault: brings `page` back from `disk` (freeing the
    /// block) and makes it resident. May page out an LRU victim.
    ///
    /// # Errors
    ///
    /// [`MemError::BadState`] if the page is not in the on-disk state or
    /// the disk block vanished.
    pub fn page_in(&mut self, page: PageNum, disk: &mut Disk) -> Result<(), MemError> {
        let addr = match self.pages.get(&page) {
            Some(PageState::OnDisk(a)) => *a,
            _ => return Err(MemError::BadState(page, "not on disk")),
        };
        // Zero-copy: take over the disk's reference to the frame; no bytes
        // move in either direction of the page-out/page-in roundtrip.
        let frame = disk
            .take_frame(addr)
            .ok_or(MemError::BadState(page, "disk block missing"))?;
        self.pages.remove(&page);
        self.install_frame(page, frame, disk);
        Ok(())
    }

    /// Services an imaginary fault: installs fetched `data` for `page`,
    /// replacing its imaginary mapping. May page out an LRU victim.
    ///
    /// # Errors
    ///
    /// [`MemError::BadState`] if the page is not imaginary.
    pub fn satisfy_imaginary(
        &mut self,
        page: PageNum,
        data: PageData,
        disk: &mut Disk,
    ) -> Result<(), MemError> {
        match self.pages.get(&page) {
            Some(PageState::Imaginary { .. }) => {}
            _ => return Err(MemError::BadState(page, "not imaginary")),
        }
        self.pages.remove(&page);
        self.install_frame(page, Frame::new(data), disk);
        Ok(())
    }

    /// Services an imaginary fault with an already-framed page, sharing
    /// the frame by reference count instead of copying 512 bytes. The
    /// fetch path hands the reply message's frame straight in; a later
    /// write performs the deferred copy through the normal copy-on-write
    /// machinery ([`AddressSpace::check_write`]).
    ///
    /// # Errors
    ///
    /// [`MemError::BadState`] if the page is not imaginary.
    pub fn satisfy_imaginary_frame(
        &mut self,
        page: PageNum,
        frame: Frame,
        disk: &mut Disk,
    ) -> Result<(), MemError> {
        match self.pages.get(&page) {
            Some(PageState::Imaginary { .. }) => {}
            _ => return Err(MemError::BadState(page, "not imaginary")),
        }
        self.pages.remove(&page);
        self.install_frame(page, frame, disk);
        Ok(())
    }

    /// Installs `frame` for `page` unconditionally (used when building
    /// processes and reconstructing them at insertion). The page is
    /// validated if it was not already. May page out an LRU victim.
    pub fn install_page(&mut self, page: PageNum, frame: Frame, disk: &mut Disk) {
        self.validate_pages(PageRange::new(page, PageNum(page.0 + 1)));
        self.pages.remove(&page);
        self.install_frame(page, frame, disk);
    }

    /// Installs `data` for `page` directly in the on-disk state (used to
    /// model memory-mapped files whose pages have not been read yet: they
    /// are RealMem, accessible at local-disk cost, but not resident). The
    /// page is validated if needed.
    pub fn install_on_disk(&mut self, page: PageNum, data: PageData, disk: &mut Disk) {
        self.validate_pages(PageRange::new(page, PageNum(page.0 + 1)));
        self.pages.remove(&page);
        self.resident.remove(page);
        let addr = disk.write_new(data);
        self.pages.insert(page, PageState::OnDisk(addr));
    }

    /// Maps `range` to imaginary segment `seg`, with the range's first page
    /// at `base_offset` pages into the segment. The range is validated if
    /// needed. Existing materialized pages in the range are replaced (their
    /// data is owed by the segment now).
    pub fn map_imaginary(&mut self, range: PageRange, seg: SegmentId, base_offset: u64) {
        self.validate_pages(range);
        for (i, page) in range.iter().enumerate() {
            self.pages.remove(&page);
            self.resident.remove(page);
            self.pages.insert(
                page,
                PageState::Imaginary {
                    seg,
                    offset: base_offset + i as u64,
                },
            );
        }
    }

    fn install_frame(&mut self, page: PageNum, frame: Frame, disk: &mut Disk) {
        self.pages.insert(page, PageState::Resident(frame));
        if let Some(victim) = self.resident.touch(page) {
            self.page_out(victim, disk);
        }
    }

    /// Forces `page` out to disk (used by tests and by explicit flush
    /// policies). The frame moves to the disk by reference — no byte copy.
    /// No-op unless the page is resident.
    pub fn page_out(&mut self, page: PageNum, disk: &mut Disk) {
        if let Some(PageState::Resident(frame)) = self.pages.get(&page) {
            let addr = disk.write_new_frame(frame.clone());
            self.pages.insert(page, PageState::OnDisk(addr));
            self.resident.remove(page);
            self.pageouts += 1;
        }
    }

    // ----- inspection -------------------------------------------------------

    /// A copy of `page`'s current contents regardless of where they live
    /// (resident or on disk); `None` for RealZero (all zeros by definition),
    /// imaginary, or invalid pages. Does not refresh LRU recency — this is
    /// the kernel peeking (excision, backing service), not the process
    /// touching memory.
    pub fn peek_page(&self, page: PageNum, disk: &mut Disk) -> Option<PageData> {
        match self.pages.get(&page)? {
            PageState::Resident(frame) => Some(frame.snapshot()),
            PageState::OnDisk(addr) => disk.read(*addr),
            PageState::Imaginary { .. } => None,
        }
    }

    /// Like [`AddressSpace::peek_page`] but shares the frame instead of
    /// copying its bytes — the read-only inspection path for checksums and
    /// transfer assembly. Same disk-read accounting as `peek_page`.
    pub fn peek_frame(&self, page: PageNum, disk: &mut Disk) -> Option<Frame> {
        match self.pages.get(&page)? {
            PageState::Resident(frame) => Some(frame.clone()),
            PageState::OnDisk(addr) => disk.read_frame(*addr),
            PageState::Imaginary { .. } => None,
        }
    }

    /// Removes `page`'s on-disk block and returns its frame without copying
    /// — the excision path for paged-out pages: the process is leaving the
    /// node, so the block is reclaimed and its frame rides the RIMAS
    /// message by reference. Counts one disk read, like the copying path it
    /// replaces. Returns `None` (and changes nothing) unless the page is in
    /// the on-disk state with a live block.
    pub fn take_disk_frame(&mut self, page: PageNum, disk: &mut Disk) -> Option<Frame> {
        let addr = match self.pages.get(&page) {
            Some(PageState::OnDisk(a)) => *a,
            _ => return None,
        };
        disk.take_frame(addr)
    }

    /// The page's raw state, if materialized.
    pub fn page_state(&self, page: PageNum) -> Option<&PageState> {
        self.pages.get(&page)
    }

    /// All materialized pages in ascending order.
    pub fn materialized_pages(&self) -> impl Iterator<Item = (PageNum, &PageState)> {
        self.pages.iter().map(|(&p, s)| (p, s))
    }

    /// The resident pages in ascending page order.
    pub fn resident_pages(&self) -> Vec<PageNum> {
        self.resident.pages()
    }

    /// Composition statistics (Table 4-1 quantities).
    pub fn stats(&self) -> SpaceStats {
        let mut real = 0u64;
        let mut imag = 0u64;
        let mut res = 0u64;
        for state in self.pages.values() {
            match state {
                PageState::Resident(_) => {
                    real += PAGE_SIZE;
                    res += PAGE_SIZE;
                }
                PageState::OnDisk(_) => real += PAGE_SIZE,
                PageState::Imaginary { .. } => imag += PAGE_SIZE,
            }
        }
        let total: u64 = self.regions.iter().map(|&(s, e)| (e - s) * PAGE_SIZE).sum();
        SpaceStats {
            real_bytes: real,
            imag_bytes: imag,
            realzero_bytes: total - real - imag,
            resident_bytes: res,
        }
    }

    /// Deferred copy-on-write copies performed so far.
    pub fn cow_copies(&self) -> u64 {
        self.cow_copies
    }

    /// FillZero faults serviced so far.
    pub fn zero_fills(&self) -> u64 {
        self.zero_fills
    }

    /// Pages paged out so far.
    pub fn pageouts(&self) -> u64 {
        self.pageouts
    }

    /// Destructively extracts every materialized page and validated region
    /// (process excision). The space is left empty.
    pub fn drain(&mut self) -> (Vec<(u64, u64)>, BTreeMap<PageNum, PageState>) {
        self.resident.clear();
        (
            std::mem::take(&mut self.regions),
            std::mem::take(&mut self.pages),
        )
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace::new()
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.stats();
        f.debug_struct("AddressSpace")
            .field("regions", &self.regions.len())
            .field("materialized", &self.pages.len())
            .field("real_bytes", &st.real_bytes)
            .field("total_bytes", &st.total_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageNum {
        PageNum(n)
    }

    fn ready(space: &mut AddressSpace, disk: &mut Disk, page: PageNum) {
        // Service faults until the page is readable, like a tiny pager.
        loop {
            match space.check_write(page) {
                Ok(()) => return,
                Err(Fault::FillZero { page }) => space.fill_zero(page, disk).unwrap(),
                Err(Fault::DiskIn { page, .. }) => space.page_in(page, disk).unwrap(),
                Err(f) => panic!("unexpected fault {f:?}"),
            }
        }
    }

    #[test]
    fn validation_merging() {
        let mut s = AddressSpace::new();
        s.validate(VAddr(0), 1024).unwrap();
        s.validate(VAddr(4096), 512).unwrap();
        s.validate(VAddr(1024), 3072).unwrap(); // bridges the gap
        assert_eq!(s.regions().len(), 1);
        assert_eq!(s.regions()[0], PageRange::new(p(0), p(9)));
        assert!(s.validate(VAddr(0), 0).is_err());
    }

    #[test]
    fn classification_lifecycle() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        s.validate(VAddr(0), 4 * PAGE_SIZE).unwrap();
        assert_eq!(s.classify(p(0)), Access::RealZero);
        assert_eq!(s.classify(p(4)), Access::Bad);
        ready(&mut s, &mut d, p(0));
        assert_eq!(s.classify(p(0)), Access::Real);
        s.map_imaginary(PageRange::new(p(2), p(3)), SegmentId(7), 5);
        assert_eq!(s.classify(p(2)), Access::Imag);
    }

    #[test]
    fn first_touch_is_fillzero_then_reads_zeros() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        s.validate(VAddr(0), PAGE_SIZE).unwrap();
        match s.check_read(p(0)) {
            Err(Fault::FillZero { page }) => assert_eq!(page, p(0)),
            other => panic!("expected FillZero, got {other:?}"),
        }
        s.fill_zero(p(0), &mut d).unwrap();
        assert!(s.check_read(p(0)).is_ok());
        let mut buf = [1u8; 16];
        s.read(VAddr(100), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(s.zero_fills(), 1);
    }

    #[test]
    fn write_read_roundtrip_across_pages() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        s.validate(VAddr(0), 3 * PAGE_SIZE).unwrap();
        for i in 0..3 {
            ready(&mut s, &mut d, p(i));
        }
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        s.write(VAddr(300), &data).unwrap(); // spans pages 0..3
        let mut back = vec![0u8; 1000];
        s.read(VAddr(300), &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unresident_data_access_errors() {
        let mut s = AddressSpace::new();
        s.validate(VAddr(0), PAGE_SIZE).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(s.read(VAddr(0), &mut buf), Err(MemError::NotResident(p(0))));
        assert_eq!(s.write(VAddr(0), &buf), Err(MemError::NotResident(p(0))));
    }

    #[test]
    fn addressing_error_on_unvalidated() {
        let mut s = AddressSpace::new();
        match s.check_read(p(9)) {
            Err(Fault::Addressing { addr }) => assert_eq!(addr, p(9).base()),
            other => panic!("expected Addressing, got {other:?}"),
        }
    }

    #[test]
    fn cow_write_copies_shared_frame() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        let frame = Frame::new(crate::page::page_from_bytes(b"shared"));
        let alias = frame.clone();
        s.install_page(p(0), frame, &mut d);
        assert!(s.check_read(p(0)).is_ok(), "shared frames are readable");
        assert_eq!(s.cow_copies(), 0);
        s.check_write(p(0)).unwrap();
        assert_eq!(s.cow_copies(), 1);
        s.write(VAddr(0), b"WRITED").unwrap();
        // The alias (the "sender's copy") is untouched: deferred copy done.
        alias.with(|d| assert_eq!(&d[..6], b"shared"));
        let mut buf = [0u8; 6];
        s.read(VAddr(0), &mut buf).unwrap();
        assert_eq!(&buf, b"WRITED");
    }

    #[test]
    fn write_to_shared_frame_without_check_is_rejected() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        let frame = Frame::zeroed();
        let _alias = frame.clone();
        s.install_page(p(0), frame, &mut d);
        assert!(matches!(
            s.write(VAddr(0), b"x"),
            Err(MemError::BadState(_, _))
        ));
    }

    #[test]
    fn frame_budget_pages_out_lru_and_pages_back_in() {
        let mut s = AddressSpace::with_frame_budget(2);
        let mut d = Disk::new();
        s.validate(VAddr(0), 3 * PAGE_SIZE).unwrap();
        for i in 0..3 {
            ready(&mut s, &mut d, p(i));
            s.write(p(i).base(), &[i as u8 + 1; 8]).unwrap();
        }
        // Page 0 was LRU and went to disk.
        assert_eq!(s.classify(p(0)), Access::Real);
        assert!(matches!(s.page_state(p(0)), Some(PageState::OnDisk(_))));
        assert_eq!(s.pageouts(), 1);
        match s.check_read(p(0)) {
            Err(Fault::DiskIn { .. }) => {}
            other => panic!("expected DiskIn, got {other:?}"),
        }
        ready(&mut s, &mut d, p(0));
        let mut buf = [0u8; 8];
        s.read(VAddr(0), &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8], "contents survive the disk round trip");
    }

    #[test]
    fn imaginary_fault_and_satisfaction() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        let seg = SegmentId(3);
        s.map_imaginary(PageRange::new(p(10), p(12)), seg, 100);
        match s.check_read(p(11)) {
            Err(Fault::Imaginary {
                page,
                seg: got,
                offset,
            }) => {
                assert_eq!((page, got, offset), (p(11), seg, 101));
            }
            other => panic!("expected Imaginary, got {other:?}"),
        }
        s.satisfy_imaginary(p(11), crate::page::page_from_bytes(b"owed"), &mut d)
            .unwrap();
        assert!(s.check_read(p(11)).is_ok());
        let mut buf = [0u8; 4];
        s.read(p(11).base(), &mut buf).unwrap();
        assert_eq!(&buf, b"owed");
        // Page 10 is still imaginary.
        assert_eq!(s.classify(p(10)), Access::Imag);
    }

    #[test]
    fn satisfy_imaginary_frame_shares_until_written() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        s.map_imaginary(PageRange::new(p(0), p(1)), SegmentId(1), 0);
        let frame = Frame::new(crate::page::page_from_bytes(b"wire"));
        let senders_copy = frame.clone();
        s.satisfy_imaginary_frame(p(0), frame, &mut d).unwrap();
        let mut buf = [0u8; 4];
        s.check_read(p(0)).unwrap();
        s.read(p(0).base(), &mut buf).unwrap();
        assert_eq!(&buf, b"wire", "no byte copy needed to read");
        assert_eq!(s.cow_copies(), 0, "install itself copies nothing");
        // A write triggers the deferred copy; the sender's cache survives.
        s.check_write(p(0)).unwrap();
        assert_eq!(s.cow_copies(), 1);
        s.write(p(0).base(), b"MINE").unwrap();
        senders_copy.with(|d| assert_eq!(&d[..4], b"wire"));
        // Non-imaginary pages are rejected just like satisfy_imaginary.
        assert!(matches!(
            s.satisfy_imaginary_frame(p(0), Frame::zeroed(), &mut d),
            Err(MemError::BadState(_, _))
        ));
    }

    #[test]
    fn stats_track_composition() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        s.validate(VAddr(0), 10 * PAGE_SIZE).unwrap();
        ready(&mut s, &mut d, p(0));
        ready(&mut s, &mut d, p(1));
        s.page_out(p(0), &mut d);
        s.map_imaginary(PageRange::new(p(5), p(7)), SegmentId(1), 0);
        let st = s.stats();
        assert_eq!(st.real_bytes, 2 * PAGE_SIZE);
        assert_eq!(st.resident_bytes, PAGE_SIZE);
        assert_eq!(st.imag_bytes, 2 * PAGE_SIZE);
        assert_eq!(st.realzero_bytes, 6 * PAGE_SIZE);
        assert_eq!(st.total_bytes(), 10 * PAGE_SIZE);
        assert!((st.realzero_pct() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn amap_reflects_space() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        s.validate(VAddr(0), 8 * PAGE_SIZE).unwrap();
        ready(&mut s, &mut d, p(2));
        ready(&mut s, &mut d, p(3));
        s.map_imaginary(PageRange::new(p(5), p(6)), SegmentId(9), 4);
        let m = s.amap();
        assert!(m.verify().is_ok());
        assert_eq!(m.lookup(p(0)).0, Access::RealZero);
        assert_eq!(m.lookup(p(2)).0, Access::Real);
        assert_eq!(m.lookup(p(3)).0, Access::Real);
        assert_eq!(m.lookup(p(5)), (Access::Imag, Some((SegmentId(9), 4))));
        assert_eq!(m.lookup(p(7)).0, Access::RealZero);
        assert_eq!(m.lookup(p(8)).0, Access::Bad);
        assert_eq!(m.bytes_of(Access::Real), 2 * PAGE_SIZE);
        // Real pages at 2,3 coalesce into one run.
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn peek_reads_without_lru_effect() {
        let mut s = AddressSpace::with_frame_budget(2);
        let mut d = Disk::new();
        s.validate(VAddr(0), 4 * PAGE_SIZE).unwrap();
        ready(&mut s, &mut d, p(0));
        s.write(VAddr(0), b"zero").unwrap();
        ready(&mut s, &mut d, p(1));
        // Peeking page 0 must NOT make it recently-used...
        assert_eq!(&s.peek_page(p(0), &mut d).unwrap()[..4], b"zero");
        // ...so materializing page 2 evicts page 0, not page 1.
        ready(&mut s, &mut d, p(2));
        assert!(matches!(s.page_state(p(0)), Some(PageState::OnDisk(_))));
        // And peek still reads it from disk.
        assert_eq!(&s.peek_page(p(0), &mut d).unwrap()[..4], b"zero");
        assert_eq!(s.peek_page(p(3), &mut d), None, "RealZero has no data");
    }

    #[test]
    fn install_on_disk_models_unread_file_pages() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        s.install_on_disk(p(4), crate::page::page_from_bytes(b"file"), &mut d);
        assert_eq!(s.classify(p(4)), Access::Real);
        assert_eq!(s.stats().resident_bytes, 0);
        match s.check_read(p(4)) {
            Err(Fault::DiskIn { .. }) => {}
            other => panic!("expected DiskIn, got {other:?}"),
        }
        ready(&mut s, &mut d, p(4));
        let mut buf = [0u8; 4];
        s.read(p(4).base(), &mut buf).unwrap();
        assert_eq!(&buf, b"file");
    }

    #[test]
    fn drain_empties_space() {
        let mut s = AddressSpace::new();
        let mut d = Disk::new();
        s.validate(VAddr(0), 2 * PAGE_SIZE).unwrap();
        ready(&mut s, &mut d, p(0));
        let (regions, pages) = s.drain();
        assert_eq!(regions.len(), 1);
        assert_eq!(pages.len(), 1);
        assert_eq!(s.stats().total_bytes(), 0);
        assert_eq!(s.classify(p(0)), Access::Bad);
    }
}
