//! Property tests on the virtual-memory substrate: AMap invariants,
//! data-path roundtrips, LRU model conformance.

use std::collections::HashSet;

use proptest::prelude::*;

use cor_mem::amap::Access;
use cor_mem::page::PAGE_SIZE;
use cor_mem::resident::ResidentTracker;
use cor_mem::{AddressSpace, Disk, Fault, PageNum, PageRange, SegmentId, VAddr};

/// Drives a page to readiness like a minimal pager (no imaginary service).
fn ready(space: &mut AddressSpace, disk: &mut Disk, page: PageNum) {
    loop {
        match space.check_write(page) {
            Ok(()) => return,
            Err(Fault::FillZero { page }) => space.fill_zero(page, disk).unwrap(),
            Err(Fault::DiskIn { page, .. }) => space.page_in(page, disk).unwrap(),
            Err(f) => panic!("unexpected fault {f:?}"),
        }
    }
}

#[derive(Debug, Clone)]
enum SpaceOp {
    Validate(u64, u64),
    Touch(u64),
    PageOut(u64),
    MapImag(u64, u64),
}

fn space_ops() -> impl Strategy<Value = Vec<SpaceOp>> {
    let op = prop_oneof![
        (0u64..256, 1u64..32).prop_map(|(p, n)| SpaceOp::Validate(p, n)),
        (0u64..256).prop_map(SpaceOp::Touch),
        (0u64..256).prop_map(SpaceOp::PageOut),
        (0u64..256, 1u64..8).prop_map(|(p, n)| SpaceOp::MapImag(p, n)),
    ];
    prop::collection::vec(op, 1..80)
}

proptest! {
    /// After any sequence of operations, the constructed AMap satisfies
    /// its structural invariants and agrees with per-page classification.
    #[test]
    fn amap_always_valid_and_consistent(ops in space_ops()) {
        let mut space = AddressSpace::new();
        let mut disk = Disk::new();
        let mut seg_count = 0u64;
        for op in ops {
            match op {
                SpaceOp::Validate(p, n) => {
                    space.validate_pages(PageRange::new(PageNum(p), PageNum(p + n)));
                }
                SpaceOp::Touch(p) => {
                    if space.classify(PageNum(p)) == Access::RealZero {
                        ready(&mut space, &mut disk, PageNum(p));
                    }
                }
                SpaceOp::PageOut(p) => space.page_out(PageNum(p), &mut disk),
                SpaceOp::MapImag(p, n) => {
                    seg_count += 1;
                    space.map_imaginary(
                        PageRange::new(PageNum(p), PageNum(p + n)),
                        SegmentId(seg_count),
                        0,
                    );
                }
            }
        }
        let amap = space.amap();
        prop_assert!(amap.verify().is_ok(), "{:?}", amap.verify());
        for p in 0..300u64 {
            let page = PageNum(p);
            prop_assert_eq!(amap.lookup(page).0, space.classify(page), "page {}", p);
        }
        // Byte accounting agrees between the AMap and the space stats.
        let st = space.stats();
        prop_assert_eq!(amap.bytes_of(Access::Real), st.real_bytes);
        prop_assert_eq!(amap.bytes_of(Access::RealZero), st.realzero_bytes);
        prop_assert_eq!(amap.bytes_of(Access::Imag), st.imag_bytes);
    }

    /// Arbitrary writes followed by reads return the written bytes, across
    /// page boundaries, page-outs and page-ins.
    #[test]
    fn write_read_roundtrip_survives_paging(
        writes in prop::collection::vec((0u64..30 * 512, 1usize..200, any::<u8>()), 1..20),
        budget in 2usize..8,
    ) {
        let mut space = AddressSpace::with_frame_budget(budget);
        let mut disk = Disk::new();
        space.validate(VAddr(0), 32 * PAGE_SIZE).unwrap();
        let mut model: Vec<u8> = vec![0; 32 * PAGE_SIZE as usize];
        for &(addr, len, byte) in &writes {
            let range = PageRange::covering(VAddr(addr), len as u64);
            for p in range.iter() {
                ready(&mut space, &mut disk, p);
            }
            let data = vec![byte; len];
            space.write(VAddr(addr), &data).unwrap();
            model[addr as usize..addr as usize + len].fill(byte);
        }
        // Read everything back (through disk for paged-out pages).
        for &(addr, len, _) in &writes {
            let range = PageRange::covering(VAddr(addr), len as u64);
            for p in range.iter() {
                ready(&mut space, &mut disk, p);
            }
            let mut buf = vec![0u8; len];
            space.read(VAddr(addr), &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &model[addr as usize..addr as usize + len]);
        }
    }

    /// The LRU tracker behaves exactly like a naive reference model.
    #[test]
    fn lru_matches_reference_model(
        touches in prop::collection::vec(0u64..64, 1..300),
        cap in 1usize..16,
    ) {
        let mut tracker = ResidentTracker::with_capacity(cap);
        let mut model: Vec<u64> = Vec::new(); // LRU order, front = oldest
        for &p in &touches {
            model.retain(|&q| q != p);
            model.push(p);
            let expect_evict = if model.len() > cap {
                Some(model.remove(0))
            } else {
                None
            };
            let got = tracker.touch(PageNum(p));
            prop_assert_eq!(got, expect_evict.map(PageNum));
            prop_assert_eq!(tracker.len(), model.len());
        }
        let mut expected: Vec<PageNum> = model.iter().map(|&p| PageNum(p)).collect();
        prop_assert_eq!(tracker.pages_lru_order(), expected.clone());
        expected.sort_unstable();
        prop_assert_eq!(tracker.pages(), expected);
    }

    /// Copy-on-write: writes through one mapping never leak into aliases.
    #[test]
    fn cow_isolation(pages in 1usize..16, dirty in prop::collection::vec(any::<bool>(), 16)) {
        use cor_mem::page::{page_from_bytes, Frame};
        let mut space = AddressSpace::new();
        let mut disk = Disk::new();
        let frames: Vec<Frame> = (0..pages)
            .map(|i| Frame::new(page_from_bytes(&[i as u8 + 1; 8])))
            .collect();
        let aliases = frames.clone();
        for (i, f) in frames.into_iter().enumerate() {
            space.install_page(PageNum(i as u64), f, &mut disk);
        }
        let mut dirtied = HashSet::new();
        for (i, &d) in dirty.iter().take(pages).enumerate() {
            if d {
                let page = PageNum(i as u64);
                space.check_write(page).unwrap();
                space.write(page.base(), &[0xEE; 8]).unwrap();
                dirtied.insert(i);
            }
        }
        prop_assert_eq!(space.cow_copies(), dirtied.len() as u64);
        for (i, alias) in aliases.iter().enumerate() {
            alias.with(|d| {
                // The alias always sees the original bytes.
                assert_eq!(d[0], i as u8 + 1, "alias {i} corrupted");
            });
        }
    }

    /// Zero-fill interning: every FillZero page aliases the one canonical
    /// zero frame; any write diverges it privately; the interned frame is
    /// never mutated; and RealZero byte accounting is exactly what the
    /// copying implementation reported.
    #[test]
    fn interned_zero_diverges_on_write(
        total in 4u64..32,
        fills in prop::collection::vec(0u64..32, 1..32),
        writes in prop::collection::vec((0u64..32, 1u8..=255), 0..32),
    ) {
        use cor_mem::page::Frame;
        let mut space = AddressSpace::new();
        let mut disk = Disk::new();
        space.validate(VAddr(0), total * PAGE_SIZE).unwrap();
        let mut filled = HashSet::new();
        for &p in fills.iter().filter(|&&p| p < total) {
            if filled.insert(p) {
                space.fill_zero(PageNum(p), &mut disk).unwrap();
            }
        }
        // Materialized-but-unwritten zero pages are Real; the rest of the
        // validated range stays RealZero — interning must not change the
        // paper's RealZeroMem accounting.
        let st = space.stats();
        prop_assert_eq!(st.realzero_bytes, (total - filled.len() as u64) * PAGE_SIZE);
        prop_assert_eq!(st.real_bytes, filled.len() as u64 * PAGE_SIZE);
        let mut written = HashSet::new();
        for &(p, byte) in &writes {
            if !filled.contains(&p) {
                continue;
            }
            space.check_write(PageNum(p)).unwrap();
            space.write(PageNum(p).base(), &[byte]).unwrap();
            written.insert(p);
        }
        // The canonical zero frame never sees any of those writes.
        Frame::zeroed().with(|d| {
            assert!(d.iter().all(|&b| b == 0), "interned zero frame corrupted");
        });
        // Unwritten zero-filled pages still read back zero, written ones
        // diverged (first byte is the nonzero write).
        for &p in &filled {
            let mut buf = [0xAAu8; 1];
            space.read(PageNum(p).base(), &mut buf).unwrap();
            prop_assert_eq!(buf[0] == 0, !written.contains(&p), "page {}", p);
        }
        prop_assert_eq!(st.realzero_bytes, space.stats().realzero_bytes);
    }

    /// Wire sharing: frames delivered by reference count to several
    /// receivers — one of them twice, modelling a retransmitted reply
    /// deduplicated into the same frame — diverge privately on write.
    /// The sender's frames and every other receiver keep the original
    /// bytes.
    #[test]
    fn shared_delivery_diverges_privately(
        pages in 1usize..12,
        writers in prop::collection::vec((0usize..3, 0usize..12), 1..24),
    ) {
        use cor_mem::page::{page_from_bytes, Frame};
        let sender: Vec<Frame> = (0..pages)
            .map(|i| Frame::new(page_from_bytes(&[0x5A, i as u8])))
            .collect();
        let mut receivers = Vec::new();
        for r in 0..3usize {
            let mut space = AddressSpace::new();
            let mut disk = Disk::new();
            for (i, f) in sender.iter().enumerate() {
                space.install_page(PageNum(i as u64), f.clone(), &mut disk);
                if r == 2 {
                    // Duplicate delivery: the dedup cache hands the same
                    // frame back for a retransmitted reply.
                    space.install_page(PageNum(i as u64), f.clone(), &mut disk);
                }
            }
            receivers.push((space, disk));
        }
        let mut wrote: Vec<HashSet<usize>> = vec![HashSet::new(); 3];
        for &(r, p) in &writers {
            let page = PageNum((p % pages) as u64);
            let (space, _) = &mut receivers[r];
            space.check_write(page).unwrap();
            space.write(page.base(), &[0x80 + r as u8]).unwrap();
            wrote[r].insert(p % pages);
        }
        // The sender's view is untouched by any receiver's writes.
        for (i, f) in sender.iter().enumerate() {
            f.with(|d| {
                assert_eq!((d[0], d[1]), (0x5A, i as u8), "sender frame {i} mutated");
            });
        }
        // Each receiver sees exactly its own writes, nobody else's.
        for (r, (space, _)) in receivers.iter().enumerate() {
            for i in 0..pages {
                let mut buf = [0u8; 1];
                space.read(PageNum(i as u64).base(), &mut buf).unwrap();
                let expect = if wrote[r].contains(&i) { 0x80 + r as u8 } else { 0x5A };
                prop_assert_eq!(buf[0], expect, "receiver {} page {}", r, i);
            }
        }
    }
}
