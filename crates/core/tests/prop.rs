//! Property tests for the migration machinery: context codec fidelity and
//! collapse/reconstruction bijectivity.

use proptest::prelude::*;

use cor_kernel::process::RunStatus;
use cor_kernel::program::Trace;
use cor_kernel::World;
use cor_mem::{AddressSpace, Fault, PageNum, PageRange, VAddr, PAGE_SIZE};
use cor_migrate::context::CoreBlob;
use cor_migrate::{excise_process, insert_process};

fn blob_strategy() -> impl proptest::strategy::Strategy<Value = CoreBlob> {
    (
        "[a-zA-Z0-9 _-]{0,40}",
        any::<u64>(),
        any::<u8>(),
        0u8..4,
        prop::collection::vec(any::<u8>(), 0..600),
        prop::collection::vec(any::<u8>(), 0..100),
        any::<u64>(),
    )
        .prop_map(
            |(name, trace_pos, priority, status, microstate, kernel_stack, frame_budget)| {
                CoreBlob {
                    name,
                    trace_pos,
                    priority,
                    status: match status {
                        0 => RunStatus::Ready,
                        1 => RunStatus::Running,
                        2 => RunStatus::Blocked,
                        _ => RunStatus::Terminated,
                    },
                    microstate,
                    kernel_stack,
                    frame_budget,
                }
            },
        )
}

proptest! {
    /// The Core-message codec is the identity.
    #[test]
    fn core_blob_roundtrips(blob in blob_strategy()) {
        let bytes = blob.encode();
        prop_assert_eq!(CoreBlob::decode(&bytes), Some(blob));
    }

    /// Any truncation of a valid encoding is rejected.
    #[test]
    fn core_blob_rejects_truncation(blob in blob_strategy(), cut in 1usize..64) {
        let bytes = blob.encode();
        let cut = cut.min(bytes.len());
        prop_assert!(CoreBlob::decode(&bytes[..bytes.len() - cut]).is_none());
    }

    /// Excise→insert reproduces the address-space composition exactly, for
    /// arbitrary sparse layouts: every page keeps its class, every real
    /// page keeps its bytes.
    #[test]
    fn collapse_reconstruction_is_bijective(
        regions in prop::collection::vec((0u64..200, 1u64..24), 1..6),
        touched in prop::collection::vec(0u64..220, 0..60),
        budget in 2usize..12,
    ) {
        let (mut world, a, b) = World::testbed();
        let mut space = AddressSpace::with_frame_budget(budget);
        for &(start, len) in &regions {
            space.validate_pages(PageRange::new(PageNum(start), PageNum(start + len)));
        }
        let disk_scope = |world: &mut World, space: &mut AddressSpace, page: PageNum| {
            let n = world.node_mut(a).unwrap();
            loop {
                match space.check_write(page) {
                    Ok(()) => break,
                    Err(Fault::FillZero { page }) => space.fill_zero(page, &mut n.disk).unwrap(),
                    Err(Fault::DiskIn { page, .. }) => space.page_in(page, &mut n.disk).unwrap(),
                    Err(Fault::Addressing { .. }) => return false,
                    Err(f) => panic!("unexpected {f:?}"),
                }
            }
            true
        };
        let mut materialized = Vec::new();
        for &p in &touched {
            let page = PageNum(p);
            if disk_scope(&mut world, &mut space, page) {
                space.write(page.base(), &[p as u8 ^ 0xA5; 16]).unwrap();
                materialized.push(page);
            }
        }
        let before = space.stats();
        let classes: Vec<_> = (0..240u64).map(|p| space.classify(PageNum(p))).collect();
        let pid = world
            .create_process(a, "prop", space, Trace::new(vec![cor_kernel::program::Op::Terminate]))
            .unwrap();
        let dest = world.ports.allocate(b);
        let (excised, _) = excise_process(&mut world, a, pid, dest).unwrap();
        let (pid, _) = insert_process(&mut world, b, excised).unwrap();
        let process = world.node_mut(b).unwrap();
        let proc_ref = process.processes.get_mut(&pid).unwrap();
        let after = proc_ref.space.stats();
        prop_assert_eq!(before.real_bytes, after.real_bytes);
        prop_assert_eq!(before.realzero_bytes, after.realzero_bytes);
        prop_assert_eq!(before.total_bytes(), after.total_bytes());
        for (p, &class) in classes.iter().enumerate() {
            prop_assert_eq!(proc_ref.space.classify(PageNum(p as u64)), class, "page {}", p);
        }
        // Contents survived, wherever they now live (resident or disk).
        for page in materialized {
            let n = world.node_mut(b).unwrap();
            let pr = n.processes.get_mut(&pid).unwrap();
            let data = pr.space.peek_page(page, &mut n.disk).unwrap();
            prop_assert_eq!(data[0], page.0 as u8 ^ 0xA5, "page {} contents", page.0);
        }
    }

    /// Validation byte-accounting is exact for arbitrary page ranges.
    #[test]
    fn validation_accounting(regions in prop::collection::vec((0u64..10_000, 1u64..500), 1..12)) {
        let mut space = AddressSpace::new();
        let mut covered = std::collections::HashSet::new();
        for &(start, len) in &regions {
            space.validate(VAddr(start * PAGE_SIZE), len * PAGE_SIZE).unwrap();
            for p in start..start + len {
                covered.insert(p);
            }
        }
        prop_assert_eq!(space.stats().total_bytes(), covered.len() as u64 * PAGE_SIZE);
    }
}
