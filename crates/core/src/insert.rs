//! The `InsertProcess` primitive (paper §3.1).
//!
//! "Using the AMap for guidance and the RIMAS data for ammunition, the
//! process address space mappings are restored." The two context messages
//! are self-contained: the Core message's inline blob rebuilds the PCB,
//! microstate and kernel stack; its rights are relocated to the new host;
//! and the address space is reconstructed by replaying the AMap walk that
//! `ExciseProcess` performed, consuming collapsed RIMAS slots in order —
//! physically carried slots install real pages, owed slots map imaginary
//! ranges (typically the stand-ins the receiving NetMsgServer created).

use cor_ipc::message::{Message, MsgItem};
use cor_ipc::port::Right;
use cor_ipc::NodeId;
use cor_kernel::process::{Process, ProcessId};
use cor_kernel::{KernelError, World};
use cor_mem::amap::Access;
use cor_mem::page::Frame;
use cor_mem::space::SegmentId;
use cor_mem::{AddressSpace, PageNum, PageRange};
use cor_sim::SimDuration;

use crate::context::{CoreBlob, ExcisedProcess};

/// Measurements of one insertion.
#[derive(Debug, Clone, Copy, Default)]
pub struct InsertReport {
    /// Total elapsed insertion time.
    pub total: SimDuration,
    /// Pages installed from physically carried data.
    pub carried_pages: u64,
    /// Pages mapped as owed (imaginary).
    pub owed_pages: u64,
    /// Address-space runs re-mapped.
    pub runs: u64,
}

enum SlotSrc<'a> {
    Frames(&'a [Frame]),
    Iou { seg: SegmentId, seg_offset: u64 },
}

struct SlotIndex<'a> {
    /// (base_slot, len, source), sorted by base.
    entries: Vec<(u64, u64, SlotSrc<'a>)>,
}

impl<'a> SlotIndex<'a> {
    fn build(rimas: &'a Message) -> Self {
        let mut entries: Vec<(u64, u64, SlotSrc<'a>)> = rimas
            .items
            .iter()
            .filter_map(|item| match item {
                MsgItem::Pages { base_page, frames } => {
                    Some((*base_page, frames.len() as u64, SlotSrc::Frames(frames)))
                }
                MsgItem::Iou {
                    base_page,
                    seg,
                    seg_offset,
                    pages,
                } => Some((
                    *base_page,
                    *pages,
                    SlotSrc::Iou {
                        seg: *seg,
                        seg_offset: *seg_offset,
                    },
                )),
                _ => None,
            })
            .collect();
        entries.sort_by_key(|&(base, _, _)| base);
        SlotIndex { entries }
    }

    fn resolve(&self, slot: u64) -> Option<(&SlotSrc<'a>, u64)> {
        let idx = self
            .entries
            .partition_point(|&(base, len, _)| base + len <= slot);
        let (base, len, src) = self.entries.get(idx)?;
        if slot >= *base && slot < base + len {
            Some((src, slot - base))
        } else {
            None
        }
    }
}

/// Recreates a process on `node` from its two context messages.
///
/// # Errors
///
/// Malformed context messages, unknown node, or port failures while
/// relocating rights.
pub fn insert_process(
    world: &mut World,
    node: NodeId,
    excised: ExcisedProcess,
) -> Result<(ProcessId, InsertReport), KernelError> {
    let start = world.clock.now();
    let malformed =
        || KernelError::Mem(cor_mem::MemError::BadState(PageNum(0), "malformed context"));

    // -- Decode the Core message. --
    let MsgItem::Inline(blob_bytes) = excised.core.items.first().ok_or_else(malformed)? else {
        return Err(malformed());
    };
    let blob = CoreBlob::decode(blob_bytes).ok_or_else(malformed)?;
    let rights = excised.core.rights();
    let amap = excised.core.amap().ok_or_else(malformed)?.clone();

    // -- Rebuild the address space by replaying the collapse walk. The
    // frame budget applies during installation: physically carried pages
    // beyond the destination's physical memory overflow to its disk, just
    // as a bulk-copied context would on the real testbed. --
    let index = SlotIndex::build(&excised.rimas);
    let mut space = AddressSpace::new();
    space.set_frame_budget(blob.budget());
    let mut cursor = 0u64;
    let mut carried_pages = 0u64;
    let mut owed_pages = 0u64;
    let mut runs = 0u64;
    {
        let disk = &mut world.node_mut(node)?.disk;
        for entry in amap.entries() {
            match entry.access {
                Access::RealZero => space.validate_pages(entry.range),
                Access::Real | Access::Imag => {
                    runs += 1;
                    for page in entry.range.iter() {
                        let (src, off) = index.resolve(cursor).ok_or_else(malformed)?;
                        match src {
                            SlotSrc::Frames(frames) => {
                                space.install_page(page, frames[off as usize].clone(), disk);
                                carried_pages += 1;
                            }
                            SlotSrc::Iou { seg, seg_offset } => {
                                space.map_imaginary(
                                    PageRange::new(page, PageNum(page.0 + 1)),
                                    *seg,
                                    seg_offset + off,
                                );
                                owed_pages += 1;
                            }
                        }
                        cursor += 1;
                    }
                }
                Access::Bad => unreachable!("AMaps never contain BadMem entries"),
            }
        }
    }
    // -- Relocate the receive and ownership rights to the new host. --
    for right in &rights {
        if matches!(right.right, Right::Receive | Right::Ownership) {
            world.ports.relocate(right.port, node)?;
        }
    }

    // -- Reassemble the process. --
    let mut process = Process::new(excised.pid, blob.name.clone(), space, excised.program);
    process.pcb.trace_pos = blob.trace_pos as usize;
    process.pcb.priority = blob.priority;
    process.pcb.status = blob.status;
    process.microstate = blob.microstate;
    process.kernel_stack = blob.kernel_stack;
    process.rights = rights;
    process.stats = excised.stats;
    world.install_process(node, process)?;

    world
        .clock
        .advance(world.costs.insert_cost(runs, carried_pages));
    world.note(|| cor_trace::TraceEvent::Inserted {
        pid: excised.pid.0,
        node,
        carried_pages,
        owed_pages,
    });
    let report = InsertReport {
        total: world.clock.now().since(start),
        carried_pages,
        owed_pages,
        runs,
    };
    Ok((excised.pid, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::excise::excise_process;
    use cor_kernel::program::Trace;
    use cor_mem::{VAddr, PAGE_SIZE};

    /// Excise on node a, insert on node b, entirely locally (no wire):
    /// the context messages are consumed as built.
    #[test]
    fn excise_insert_roundtrip_preserves_everything() {
        let (mut world, a, b) = World::testbed();
        let mut space = AddressSpace::with_frame_budget(6);
        space.validate(VAddr(0), 32 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        for i in 0..10u64 {
            tb.write(PageNum(i).base(), 32);
        }
        for i in 0..10u64 {
            tb.read(PageNum(i).base(), 32);
        }
        let trace = tb.terminate();
        let pid = world.create_process(a, "roundtrip", space, trace).unwrap();
        // Give it some port rights, including a receive right.
        let owned = world.ports.allocate(a);
        world.process_mut(a, pid).unwrap().rights = vec![
            cor_ipc::PortRight {
                port: owned,
                right: Right::Receive,
            },
            cor_ipc::PortRight {
                port: owned,
                right: Right::Ownership,
            },
        ];
        // Run half the trace, then checksum.
        world.run_for(a, pid, 10).unwrap();
        let micro_before = world.process(a, pid).unwrap().microstate.clone();

        let dest = world.ports.allocate(b);
        let (excised, _) = excise_process(&mut world, a, pid, dest).unwrap();
        let (pid2, report) = insert_process(&mut world, b, excised).unwrap();
        assert_eq!(pid2, pid, "identity preserved");
        assert_eq!(report.carried_pages, 10);
        assert_eq!(report.owed_pages, 0);

        // Port right relocated with the process.
        assert_eq!(world.ports.home(owned).unwrap(), b);
        // Context pieces intact.
        let process = world.process(b, pid).unwrap();
        assert_eq!(process.pcb.name, "roundtrip");
        assert_eq!(process.pcb.trace_pos, 10);
        assert_eq!(process.microstate, micro_before);
        assert_eq!(process.space.frame_budget(), Some(6));
        // The space classifies like the original.
        let st = process.space.stats();
        assert_eq!(st.real_bytes, 10 * PAGE_SIZE);
        assert_eq!(st.total_bytes(), 32 * PAGE_SIZE);
        // Resuming execution reads back exactly what was written.
        let r = world.run(b, pid).unwrap();
        assert!(r.finished);
    }

    #[test]
    fn final_memory_matches_unmigrated_run() {
        // Reference: run to completion without migration.
        let build = |world: &mut World, node| {
            let mut space = AddressSpace::new();
            space.validate(VAddr(0), 16 * PAGE_SIZE).unwrap();
            let mut tb = Trace::builder();
            for i in 0..12u64 {
                tb.write(VAddr(i * 700), 100);
            }
            world
                .create_process(node, "check", space, tb.terminate())
                .unwrap()
        };
        let reference = {
            let (mut world, a, _) = World::testbed();
            let pid = build(&mut world, a);
            world.run(a, pid).unwrap();
            world.touched_checksum(a, pid).unwrap()
        };
        let migrated = {
            let (mut world, a, b) = World::testbed();
            let pid = build(&mut world, a);
            world.run_for(a, pid, 5).unwrap();
            let dest = world.ports.allocate(b);
            let (excised, _) = excise_process(&mut world, a, pid, dest).unwrap();
            let (pid, _) = insert_process(&mut world, b, excised).unwrap();
            world.run(b, pid).unwrap();
            world.touched_checksum(b, pid).unwrap()
        };
        assert_eq!(reference, migrated);
    }

    #[test]
    fn malformed_context_is_rejected() {
        let (mut world, a, b) = World::testbed();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), PAGE_SIZE).unwrap();
        let pid = world
            .create_process(
                a,
                "x",
                space,
                Trace::new(vec![cor_kernel::program::Op::Terminate]),
            )
            .unwrap();
        let dest = world.ports.allocate(b);
        let (mut excised, _) = excise_process(&mut world, a, pid, dest).unwrap();
        excised.core.items.clear();
        assert!(insert_process(&mut world, b, excised).is_err());
    }
}
