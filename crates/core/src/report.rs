//! Migration trial measurements.

use cor_sim::{SimDuration, SimTime};

/// Timings of every migration phase (the quantities of Tables 4-4 and
/// 4-5).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// AMap construction during `ExciseProcess`.
    pub excise_amap: SimDuration,
    /// Address-space collapse into the RIMAS message.
    pub excise_rimas: SimDuration,
    /// Total `ExciseProcess` time.
    pub excise_total: SimDuration,
    /// Core context message transfer.
    pub core_transfer: SimDuration,
    /// RIMAS message transfer (the strategy-dependent quantity of
    /// Table 4-5).
    pub rimas_transfer: SimDuration,
    /// Total `InsertProcess` time.
    pub insert_total: SimDuration,
}

impl PhaseTimings {
    /// Total migration time (excision through insertion).
    pub fn migration_total(&self) -> SimDuration {
        self.excise_total + self.core_transfer + self.rimas_transfer + self.insert_total
    }
}

/// The complete record of one migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Strategy label ("pure-copy", "pure-iou", ...).
    pub strategy: String,
    /// Migrated process name.
    pub process: String,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// When the migration request was received.
    pub requested_at: SimTime,
    /// When the process was ready to resume at the destination.
    pub resumed_at: SimTime,
    /// Pages physically carried by the RIMAS transfer.
    pub carried_pages: u64,
    /// Pages shipped as IOUs.
    pub owed_pages: u64,
    /// RealMem pages at excision.
    pub real_pages: u64,
    /// Resident pages at excision.
    pub resident_pages: u64,
    /// AMap entries shipped in the Core message.
    pub amap_entries: u64,
    /// Bytes of each pre-copy round (empty for non-precopy strategies);
    /// round 1 is the full copy, later rounds are modeled dirty-page
    /// retransmissions.
    pub precopy_rounds: Vec<u64>,
    /// Elapsed time of each pre-copy round, matching `precopy_rounds`.
    pub precopy_round_times: Vec<SimDuration>,
}

impl MigrationReport {
    /// Total bytes retransmitted by pre-copy rounds after the first.
    pub fn precopy_overhead_bytes(&self) -> u64 {
        self.precopy_rounds.iter().skip(1).sum()
    }

    /// Process downtime: for pre-copy, only the final (smallest) round
    /// plus excision/insertion stops the process — earlier rounds overlap
    /// execution at the source. For every other strategy the whole
    /// migration is downtime.
    pub fn downtime(&self) -> SimDuration {
        match self.precopy_round_times.last() {
            Some(&last) => {
                self.timings.excise_total
                    + self.timings.core_transfer
                    + last
                    + self.timings.insert_total
            }
            None => self.timings.migration_total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = PhaseTimings {
            excise_amap: SimDuration::from_millis(370),
            excise_rimas: SimDuration::from_millis(360),
            excise_total: SimDuration::from_millis(820),
            core_transfer: SimDuration::from_secs(1),
            rimas_transfer: SimDuration::from_millis(160),
            insert_total: SimDuration::from_millis(263),
        };
        assert_eq!(t.migration_total(), SimDuration::from_millis(2243));
    }

    #[test]
    fn precopy_overhead_excludes_first_round() {
        let r = MigrationReport {
            strategy: "precopy".into(),
            process: "x".into(),
            timings: PhaseTimings::default(),
            requested_at: SimTime::ZERO,
            resumed_at: SimTime::ZERO,
            carried_pages: 0,
            owed_pages: 0,
            real_pages: 0,
            resident_pages: 0,
            amap_entries: 0,
            precopy_rounds: vec![1000, 200, 50],
            precopy_round_times: vec![
                SimDuration::from_secs(10),
                SimDuration::from_secs(2),
                SimDuration::from_millis(500),
            ],
        };
        assert_eq!(r.precopy_overhead_bytes(), 250);
        // Downtime counts only the final round (plus zeroed phases here).
        assert_eq!(r.downtime(), SimDuration::from_millis(500));
    }
}
