//! Copy-on-reference process migration (the paper's contribution, §3).
//!
//! This crate implements the SPICE migration facility on top of the
//! substrates:
//!
//! * [`excise::excise_process`] — the `ExciseProcess` kernel trap: removes
//!   a process's complete context from its host and delivers it as two
//!   self-contained IPC messages. The **Core** message carries the
//!   microengine state, kernel stack, PCB, port rights, and an AMap of the
//!   whole address space; the **RIMAS** message carries the Real and
//!   Imaginary portions of the address space collapsed into a contiguous
//!   area. The resident pages are *memory-mapped* (copy-on-write frame
//!   shares), not copied.
//! * [`insert::insert_process`] — the counterpart: reconstructs the
//!   process at the destination from the two context messages alone,
//!   relocating its receive rights and rebuilding its address space from
//!   the AMap plus the (physical or owed) RIMAS contents.
//! * [`manager::MigrationManager`] — the per-node user-level server that
//!   executes migrations under a chosen [`strategy::Strategy`]:
//!
//!   | Strategy | RIMAS packaging |
//!   |---|---|
//!   | `PureCopy` | `NoIOUs` set: every real page crosses the wire now |
//!   | `PureIou`  | `NoIOUs` clear: the source NetMsgServer caches the pages and passes IOUs; pages cross on reference |
//!   | `ResidentSet` | the manager ships the resident set physically, actively manages the rest itself (its own imaginary segment + page store) |
//!   | `PreCopy` | V-system style iterative pre-copying (our ablation; paper §5 discusses Theimer's design) |
//!
//! * [`report::MigrationReport`] — per-phase timings, byte and message
//!   accounting: everything Tables 4-4/4-5 and Figures 4-1 through 4-5
//!   need.

//!
//! * [`drain::Drainer`] — background residual-dependency draining: between
//!   foreground slices, owed pages are prefetched across the wire or
//!   flushed to the source's crash-survivable disk backer, shrinking the
//!   window in which a source crash orphans the migrated process.

pub mod context;
pub mod drain;
pub mod excise;
pub mod insert;
pub mod manager;
pub mod policy;
pub mod report;
pub mod strategy;

pub use context::ExcisedProcess;
pub use drain::{DrainReport, Drainer};
pub use excise::excise_process;
pub use insert::insert_process;
pub use manager::MigrationManager;
pub use policy::{Balancer, NodeLoad};
pub use report::{MigrationReport, PhaseTimings};
pub use strategy::Strategy;
