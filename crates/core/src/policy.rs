//! Automatic migration policies (the paper's §6 future work).
//!
//! "The creation and evaluation of automatic migration strategies ... will
//! involve the development of good load metrics which specifically take
//! into account the fact that a process virtual address space may be
//! physically dispersed among several computational hosts."
//!
//! This module provides exactly that:
//!
//! * [`dispersion`] — where a process's owed pages physically live, found
//!   by resolving each imaginary mapping's backing port to its home node.
//! * [`NodeLoad`] — a per-node load metric combining the runnable process
//!   count with the expected cost of the remote pages local processes
//!   still owe (each owed remote page will cost a ~115 ms fault versus
//!   ~41 ms locally, so dispersion is genuine load).
//! * [`Balancer`] — a simple greedy policy: move a process from the most
//!   to the least loaded node when the imbalance exceeds a threshold,
//!   preferring the candidate whose memory affinity points *toward* the
//!   destination (migrating computation to its data turns remote faults
//!   into local ones).

use std::collections::HashMap;

use cor_ipc::NodeId;
use cor_kernel::process::{ProcessId, RunStatus};
use cor_kernel::{KernelError, World};
use cor_mem::PageState;

use crate::manager::MigrationManager;
use crate::report::MigrationReport;
use crate::strategy::Strategy;

/// Pages of a process's address space owed by each node (the "physical
/// dispersion" of §6), following NMS stand-in forwarding chains to the
/// node that ultimately holds the data.
///
/// # Errors
///
/// Unknown node/process, or broken backing chains.
pub fn dispersion(
    world: &World,
    node: NodeId,
    pid: ProcessId,
) -> Result<HashMap<NodeId, u64>, KernelError> {
    let process = world.process(node, pid)?;
    let mut by_node: HashMap<NodeId, u64> = HashMap::new();
    for (_, state) in process.space.materialized_pages() {
        if let PageState::Imaginary { seg, .. } = state {
            let home = world
                .fabric
                .ultimate_backer(&world.ports, &world.segs, *seg)?;
            *by_node.entry(home).or_insert(0) += 1;
        }
    }
    Ok(by_node)
}

/// The load metric of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLoad {
    /// The node.
    pub node: NodeId,
    /// Unfinished processes homed here.
    pub runnable: u64,
    /// Owed pages that would fault *remotely* (their backer lives
    /// elsewhere).
    pub remote_owed_pages: u64,
    /// Owed pages whose backer is local (cheap to satisfy).
    pub local_owed_pages: u64,
}

impl NodeLoad {
    /// Scalar load: each runnable process counts 1.0; each remote owed
    /// page adds the fault-cost ratio premium over a local fetch,
    /// amortized (the 2.8x of §4.3.3, scaled down by a nominal working
    /// set so page counts don't swamp process counts).
    pub fn score(&self) -> f64 {
        self.runnable as f64 + self.remote_owed_pages as f64 * (2.8 / 512.0)
    }
}

/// Computes every node's [`NodeLoad`].
///
/// # Errors
///
/// Broken backing chains while resolving dispersion.
pub fn node_loads(world: &World) -> Result<Vec<NodeLoad>, KernelError> {
    let mut loads = Vec::new();
    for node in world.node_ids() {
        let mut runnable = 0u64;
        let mut remote = 0u64;
        let mut local = 0u64;
        let pids: Vec<ProcessId> = world
            .node(node)?
            .processes
            .values()
            .filter(|p| p.pcb.status != RunStatus::Terminated)
            .map(|p| p.id)
            .collect();
        for pid in pids {
            runnable += 1;
            for (owner, pages) in dispersion(world, node, pid)? {
                if owner == node {
                    local += pages;
                } else {
                    remote += pages;
                }
            }
        }
        loads.push(NodeLoad {
            node,
            runnable,
            remote_owed_pages: remote,
            local_owed_pages: local,
        });
    }
    Ok(loads)
}

/// One planned move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// The process to migrate.
    pub pid: ProcessId,
    /// Its current home.
    pub from: NodeId,
    /// The planned destination.
    pub to: NodeId,
}

/// A greedy threshold balancer.
#[derive(Debug, Clone)]
pub struct Balancer {
    /// Minimum load-score gap between the busiest and idlest node before
    /// a move is proposed.
    pub threshold: f64,
    /// The transfer strategy to migrate with.
    pub strategy: Strategy,
}

impl Default for Balancer {
    fn default() -> Self {
        Balancer {
            threshold: 1.5,
            strategy: Strategy::PureIou { prefetch: 1 },
        }
    }
}

impl Balancer {
    /// Proposes at most one move out of the most loaded node, when some
    /// other node trails it by at least the threshold. The (process,
    /// destination) pair is chosen jointly: maximize the process's memory
    /// affinity for the destination (owed pages already living there —
    /// migrating computation to its data turns remote faults local),
    /// breaking ties toward the least loaded destination and then the
    /// smallest resident set (cheapest to excise).
    ///
    /// # Errors
    ///
    /// Broken backing chains while resolving dispersion.
    pub fn plan(&self, world: &World) -> Result<Option<Move>, KernelError> {
        let loads = node_loads(world)?;
        if loads.len() < 2 {
            return Ok(None);
        }
        let busiest = loads
            .iter()
            .max_by(|a, b| a.score().total_cmp(&b.score()))
            .expect("non-empty");
        if busiest.runnable < 2 {
            return Ok(None);
        }
        let from = busiest.node;
        let destinations: Vec<&NodeLoad> = loads
            .iter()
            .filter(|l| l.node != from && busiest.score() - l.score() >= self.threshold)
            .collect();
        if destinations.is_empty() {
            return Ok(None);
        }
        let pids: Vec<ProcessId> = world
            .node(from)?
            .processes
            .values()
            .filter(|p| p.pcb.status != RunStatus::Terminated)
            .map(|p| p.id)
            .collect();
        // (affinity desc, dest score asc, resident asc) — pick the best.
        let mut best: Option<(Move, u64, f64, u64)> = None;
        for pid in pids {
            let d = dispersion(world, from, pid)?;
            let resident = world.process(from, pid)?.space.resident_pages().len() as u64;
            for dest in &destinations {
                let affinity = d.get(&dest.node).copied().unwrap_or(0);
                let candidate = (
                    Move {
                        pid,
                        from,
                        to: dest.node,
                    },
                    affinity,
                    dest.score(),
                    resident,
                );
                let better = match &best {
                    None => true,
                    Some((_, a, ds, r)) => {
                        affinity > *a
                            || (affinity == *a
                                && (dest.score() < *ds || (dest.score() == *ds && resident < *r)))
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        Ok(best.map(|(mv, _, _, _)| mv))
    }

    /// Plans and, if a move is due, executes it through the per-node
    /// managers. Returns the migration report when a move happened.
    ///
    /// # Errors
    ///
    /// Planning or migration failures.
    pub fn rebalance_step(
        &self,
        world: &mut World,
        managers: &HashMap<NodeId, MigrationManager>,
    ) -> Result<Option<(Move, MigrationReport)>, KernelError> {
        let Some(mv) = self.plan(world)? else {
            return Ok(None);
        };
        let src = managers
            .get(&mv.from)
            .ok_or(KernelError::UnknownNode(mv.from))?;
        let dst = managers
            .get(&mv.to)
            .ok_or(KernelError::UnknownNode(mv.to))?;
        let report = src.migrate_to(world, dst, mv.pid, self.strategy)?;
        Ok(Some((mv, report)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_kernel::program::Trace;
    use cor_mem::{AddressSpace, PageNum, VAddr, PAGE_SIZE};
    use cor_sim::SimDuration;

    fn spawn(world: &mut World, node: NodeId, pages: u64) -> ProcessId {
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), pages * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        for i in 0..pages {
            tb.write(PageNum(i).base(), 64);
            tb.compute(SimDuration::from_millis(200));
        }
        let pid = world
            .create_process(node, "load", space, tb.terminate())
            .unwrap();
        world.run_for(node, pid, (pages / 2) as usize).unwrap();
        pid
    }

    #[test]
    fn loads_count_runnables() {
        let (mut world, a, b) = World::testbed();
        spawn(&mut world, a, 8);
        spawn(&mut world, a, 8);
        spawn(&mut world, b, 8);
        let loads = node_loads(&world).unwrap();
        let get = |n: NodeId| loads.iter().find(|l| l.node == n).unwrap().clone();
        assert_eq!(get(a).runnable, 2);
        assert_eq!(get(b).runnable, 1);
        assert!(get(a).score() > get(b).score());
    }

    #[test]
    fn balancer_moves_from_busy_to_idle() {
        let (mut world, a, b) = World::testbed();
        let mut managers = HashMap::new();
        managers.insert(a, MigrationManager::new(&mut world, a));
        managers.insert(b, MigrationManager::new(&mut world, b));
        for _ in 0..3 {
            spawn(&mut world, a, 10);
        }
        let balancer = Balancer {
            threshold: 1.5,
            ..Balancer::default()
        };
        let (mv, _report) = balancer
            .rebalance_step(&mut world, &managers)
            .unwrap()
            .expect("a move is due");
        assert_eq!(mv.from, a);
        assert_eq!(mv.to, b);
        // The moved process really lives at b now and still completes.
        assert!(world.process(b, mv.pid).is_ok());
        world.run(b, mv.pid).unwrap();
        // Loads re-evaluated: the gap narrowed below the threshold after
        // one more step or no further move is proposed once balanced.
        let again = balancer.plan(&world).unwrap();
        if let Some(second) = again {
            assert_eq!(second.from, a);
        }
    }

    #[test]
    fn balancer_is_quiet_when_balanced() {
        let (mut world, a, b) = World::testbed();
        spawn(&mut world, a, 8);
        spawn(&mut world, b, 8);
        let balancer = Balancer::default();
        assert_eq!(balancer.plan(&world).unwrap(), None);
    }

    #[test]
    fn dispersion_tracks_owed_pages_by_home() {
        let (mut world, a, b) = World::testbed();
        let mut managers = HashMap::new();
        managers.insert(a, MigrationManager::new(&mut world, a));
        managers.insert(b, MigrationManager::new(&mut world, b));
        let pid = spawn(&mut world, a, 12);
        managers[&a]
            .migrate_to(
                &mut world,
                &managers[&b],
                pid,
                Strategy::PureIou { prefetch: 0 },
            )
            .unwrap();
        // At b, the unfetched pages map to a local stand-in — but the data
        // is really cached at a's NMS, and dispersion follows the chain.
        let d = dispersion(&world, b, pid).unwrap();
        // spawn() ran 6 ops = 3 write+compute pairs, so 3 pages are real
        // at migration time and owed afterwards.
        assert_eq!(
            d.get(&a).copied(),
            Some(3),
            "the pre-materialized pages are owed by node a: {d:?}"
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn balancer_prefers_moving_computation_to_its_data() {
        // Three nodes; two processes pile up on node 0. One of them was
        // previously migrated 2 -> 0 pure-IOU, so its unfetched pages are
        // still owed by node 2's NMS cache. When the balancer relieves
        // node 0, it must pick that process and send it *to node 2*.
        let mut world = World::new(Default::default(), Default::default());
        let nodes: Vec<_> = (0..3).map(|_| world.add_node()).collect();
        let (n0, _n1, n2) = (nodes[0], nodes[1], nodes[2]);
        let mut managers = HashMap::new();
        for &n in &nodes {
            managers.insert(n, MigrationManager::new(&mut world, n));
        }
        // A local process on node 0 with everything resident.
        let _local = spawn(&mut world, n0, 10);
        // A process born on node 2, half-materialized, then migrated to 0.
        let traveler = spawn(&mut world, n2, 10);
        managers[&n2]
            .migrate_to(
                &mut world,
                &managers[&n0],
                traveler,
                Strategy::PureIou { prefetch: 0 },
            )
            .unwrap();
        // Its data affinity points back at node 2.
        let d = dispersion(&world, n0, traveler).unwrap();
        assert!(d.get(&n2).copied().unwrap_or(0) > 0, "{d:?}");
        let balancer = Balancer {
            threshold: 1.0,
            ..Balancer::default()
        };
        let mv = balancer.plan(&world).unwrap().expect("imbalance");
        assert_eq!(mv.from, n0);
        assert_eq!(mv.to, n2, "destination follows the data");
        assert_eq!(mv.pid, traveler, "the dispersed process moves");
    }

    #[test]
    fn single_node_never_plans() {
        let mut world = World::new(Default::default(), Default::default());
        let a = world.add_node();
        spawn(&mut world, a, 8);
        spawn(&mut world, a, 8);
        assert_eq!(Balancer::default().plan(&world).unwrap(), None);
    }
}
