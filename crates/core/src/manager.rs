//! The MigrationManager process (paper §3.2).
//!
//! Each machine wishing to participate in migration runs a simple
//! MigrationManager. Given a process and a destination, it excises the
//! context, packages the RIMAS message for the chosen strategy, ships both
//! context messages, and the peer manager reinserts the process.
//!
//! The manager "doesn't attempt sophisticated address space management" in
//! the pure-IOU case — it simply leaves the `NoIOUs` bit clear so the
//! intermediary NetMsgServers cache the data and become its backer. For
//! the resident-set strategy it plays the active role §3.1 allows: it
//! caches the non-resident portions itself and substitutes its *own*
//! imaginary objects in the RIMAS message, servicing later page requests
//! from its page store.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use cor_ipc::message::{Message, MsgItem, MsgKind};
use cor_ipc::port::PortId;
use cor_ipc::NodeId;
use cor_kernel::backer::{PageStore, VecStore};
use cor_kernel::process::ProcessId;
use cor_kernel::{KernelError, World};
use cor_mem::page::{Frame, PAGE_SIZE};
use cor_mem::space::SegmentId;
use cor_sim::SimDuration;

use crate::context::{CoreBlob, ExcisedProcess};
use crate::excise::excise_process;
use crate::insert::insert_process;
use crate::report::{MigrationReport, PhaseTimings};
use crate::strategy::Strategy;

/// A clonable handle to a [`VecStore`], so the manager can keep filling
/// the store after registering it as a world backer.
#[derive(Clone)]
pub struct SharedStore(Rc<RefCell<VecStore>>);

impl SharedStore {
    /// Creates an empty shared store.
    pub fn new() -> Self {
        SharedStore(Rc::new(RefCell::new(VecStore::new())))
    }

    /// Installs segment data.
    pub fn insert(&self, seg: SegmentId, frames: Vec<Frame>) {
        self.0.borrow_mut().insert(seg, frames);
    }
}

impl Default for SharedStore {
    fn default() -> Self {
        SharedStore::new()
    }
}

impl PageStore for SharedStore {
    fn fetch(&mut self, seg: SegmentId, offset: u64, count: u64) -> Option<Vec<Frame>> {
        self.0.borrow_mut().fetch(seg, offset, count)
    }

    fn death(&mut self, seg: SegmentId) {
        self.0.borrow_mut().death(seg);
    }

    fn pages_held(&self) -> u64 {
        self.0.borrow().pages_held()
    }
}

/// The per-node migration server.
pub struct MigrationManager {
    node: NodeId,
    control_port: PortId,
    backing_port: PortId,
    store: SharedStore,
}

impl MigrationManager {
    /// Starts a manager on `node`: allocates its control and backing ports
    /// and registers its page store with the world.
    pub fn new(world: &mut World, node: NodeId) -> Self {
        let control_port = world.ports.allocate(node);
        let backing_port = world.ports.allocate(node);
        let store = SharedStore::new();
        world.register_backer(backing_port, node, Box::new(store.clone()));
        MigrationManager {
            node,
            control_port,
            backing_port,
            store,
        }
    }

    /// The manager's home node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The port migration commands and context messages arrive on.
    pub fn control_port(&self) -> PortId {
        self.control_port
    }

    /// Pages this manager's store currently holds on behalf of migrated
    /// processes.
    pub fn pages_held(&self) -> u64 {
        self.store.pages_held()
    }

    /// Migrates `pid` from this manager's node to `dest`'s node under
    /// `strategy`, returning the phase-by-phase report. On return the
    /// process exists at the destination, ready to resume, and
    /// `world.prefetch` is set to the strategy's prefetch amount.
    ///
    /// # Errors
    ///
    /// Any excision, transfer or insertion failure.
    pub fn migrate_to(
        &self,
        world: &mut World,
        dest: &MigrationManager,
        pid: ProcessId,
        strategy: Strategy,
    ) -> Result<MigrationReport, KernelError> {
        // The whole migration is one milestone span; each phase below is
        // a fine-grained child, so a Full-level trace shows the
        // excise/transfer/insert breakdown on the timeline. Wire spans
        // the fabric opens parent under the innermost active phase via
        // the cross-journal hook, and the span closes even on the error
        // paths so a failed migration never leaves a dangling interval.
        let mig_span = world.span_enter_milestone("migration", Some(self.node));
        let result = self.migrate_inner(world, dest, pid, strategy);
        world.span_exit(mig_span);
        result
    }

    fn migrate_inner(
        &self,
        world: &mut World,
        dest: &MigrationManager,
        pid: ProcessId,
        strategy: Strategy,
    ) -> Result<MigrationReport, KernelError> {
        let requested_at = world.clock.now();
        // The migration command itself is a control message.
        let req = Message::new(MsgKind::MigrateRequest, self.control_port).with_no_ious(true);
        world.send_from(self.node, req)?;
        let _cmd = world.ports.dequeue(self.control_port)?;

        // -- Phase 1: packaging (ExciseProcess). --
        let excise_span = world.span_enter("excise", Some(self.node));
        let (mut excised, ex_report) = excise_process(world, self.node, pid, dest.control_port)?;
        world.span_exit(excise_span);
        let process_name = self.peek_name(&excised);
        let mut precopy_plan: Vec<u64> = Vec::new();
        match strategy {
            Strategy::PureCopy => {
                excised.rimas.no_ious = true;
            }
            Strategy::PureIou { .. } => {
                excised.rimas.no_ious = false;
            }
            Strategy::ResidentSet { .. } => {
                self.repackage_resident_set(world, &mut excised)?;
            }
            Strategy::PreCopy {
                max_rounds,
                stop_pages,
            } => {
                excised.rimas.no_ious = true;
                precopy_plan = plan_precopy_rounds(world, &excised, max_rounds, stop_pages);
            }
        }
        world.prefetch = strategy.prefetch();

        // -- Phase 2: context transfer. --
        let core_span = world.span_enter("core-transfer", Some(self.node));
        let (_, core_transfer) = {
            let t0 = world.clock.now();
            world.send_from(self.node, excised.core.clone())?;
            ((), world.clock.now().since(t0))
        };
        world.span_exit(core_span);
        let rimas_span = world.span_enter("rimas-transfer", Some(self.node));
        let t0 = world.clock.now();
        let rimas_report = world.send_from(self.node, excised.rimas.clone())?;
        let rimas_transfer = world.clock.now().since(t0);
        world.settle()?;
        world.span_exit(rimas_span);

        // Modeled dirty-page retransmission rounds (pre-copy only).
        let mut precopy_rounds = Vec::new();
        let mut precopy_round_times = Vec::new();
        if !precopy_plan.is_empty() {
            let precopy_span = world.span_enter("precopy-rounds", Some(self.node));
            precopy_rounds.push(rimas_report.wire_bytes);
            precopy_round_times.push(rimas_transfer);
            for &bytes in &precopy_plan {
                let round = Message::new(MsgKind::PreCopyRound, dest.control_port)
                    .with_no_ious(true)
                    .push(MsgItem::Inline(vec![0u8; bytes as usize]));
                let t0 = world.clock.now();
                let rep = world.send_from(self.node, round)?;
                precopy_rounds.push(rep.wire_bytes);
                precopy_round_times.push(world.clock.now().since(t0));
            }
            world.settle()?;
            world.span_exit(precopy_span);
        }

        // -- Phase 3: reconstruction at the destination. --
        let no_ctx = || {
            KernelError::Mem(cor_mem::MemError::BadState(
                cor_mem::PageNum(0),
                "context message missing at destination",
            ))
        };
        // Classify arrivals by kind rather than by position: an unreliable
        // wire may reorder the Core and RIMAS context messages or slot
        // pre-copy rounds between them. Taking the first of each kind and
        // ignoring the rest makes reconstruction idempotent.
        let mut core_rx = None;
        let mut rimas_rx = None;
        while let Some(m) = world.ports.dequeue(dest.control_port)? {
            match m.kind {
                MsgKind::Core if core_rx.is_none() => core_rx = Some(m),
                MsgKind::Rimas if rimas_rx.is_none() => rimas_rx = Some(m),
                MsgKind::PreCopyRound => {} // synthetic dirty-round payload
                _ => {}                     // duplicates or stray traffic
            }
        }
        let core_rx = core_rx.ok_or_else(no_ctx)?;
        let rimas_rx = rimas_rx.ok_or_else(no_ctx)?;
        let carried_pages = rimas_rx.carried_pages();
        let owed_pages = rimas_rx.owed_pages();
        let excised_rx = ExcisedProcess {
            pid: excised.pid,
            core: core_rx,
            rimas: rimas_rx,
            resident_slots: Vec::new(),
            program: excised.program,
            stats: excised.stats,
            frame_budget: excised.frame_budget,
        };
        let insert_span = world.span_enter("insert", Some(dest.node));
        let (new_pid, ins_report) = insert_process(world, dest.node, excised_rx)?;
        world.span_exit(insert_span);
        let resumed_at = world.clock.now();

        // Acknowledge completion to the source manager.
        let ack = Message::new(MsgKind::MigrateAck, self.control_port).with_no_ious(true);
        world.send_from(dest.node, ack)?;
        world.settle()?;
        let _ = world.ports.dequeue(self.control_port)?;

        debug_assert_eq!(new_pid, pid);
        Ok(MigrationReport {
            strategy: strategy.to_string(),
            process: process_name,
            timings: PhaseTimings {
                excise_amap: ex_report.amap_time,
                excise_rimas: ex_report.rimas_time,
                excise_total: ex_report.total,
                core_transfer,
                rimas_transfer,
                insert_total: ins_report.total,
            },
            requested_at,
            resumed_at,
            carried_pages,
            owed_pages,
            real_pages: ex_report.real_pages,
            resident_pages: ex_report.resident_pages,
            amap_entries: ex_report.amap_entries,
            precopy_rounds,
            precopy_round_times,
        })
    }

    fn peek_name(&self, excised: &ExcisedProcess) -> String {
        excised
            .core
            .items
            .first()
            .and_then(|item| match item {
                MsgItem::Inline(bytes) => CoreBlob::decode(bytes).map(|b| b.name),
                _ => None,
            })
            .unwrap_or_else(|| format!("pid{}", excised.pid.0))
    }

    /// Resident-set packaging: resident slots stay physical; every other
    /// real page moves into this manager's store behind a fresh imaginary
    /// segment, and IOU items take their place in the RIMAS message.
    fn repackage_resident_set(
        &self,
        world: &mut World,
        excised: &mut ExcisedProcess,
    ) -> Result<(), KernelError> {
        let resident: HashSet<u64> = excised.resident_slots.iter().copied().collect();
        let total_owed: u64 = excised
            .rimas
            .items
            .iter()
            .map(|item| match item {
                MsgItem::Pages { base_page, frames } => (0..frames.len() as u64)
                    .filter(|i| !resident.contains(&(base_page + i)))
                    .count() as u64,
                _ => 0,
            })
            .sum();
        if total_owed == 0 {
            excised.rimas.no_ious = true;
            return Ok(());
        }
        let seg = world.segs.create(self.backing_port, total_owed);
        world.segs.add_refs(seg, total_owed)?;

        let old_items = std::mem::take(&mut excised.rimas.items);
        let mut new_items = Vec::new();
        let mut owed_frames: Vec<Frame> = Vec::new();
        for item in old_items {
            let MsgItem::Pages { base_page, frames } = item else {
                new_items.push(item);
                continue;
            };
            let mut phys: Vec<Frame> = Vec::new();
            let mut phys_base = 0u64;
            let mut owed_run: Option<(u64, u64, u64)> = None; // (slot0, seg_off0, len)
            for (i, frame) in frames.into_iter().enumerate() {
                let slot = base_page + i as u64;
                if resident.contains(&slot) {
                    if let Some((s0, o0, len)) = owed_run.take() {
                        new_items.push(MsgItem::Iou {
                            base_page: s0,
                            seg,
                            seg_offset: o0,
                            pages: len,
                        });
                    }
                    if phys.is_empty() {
                        phys_base = slot;
                    }
                    phys.push(frame);
                } else {
                    if !phys.is_empty() {
                        new_items.push(MsgItem::Pages {
                            base_page: phys_base,
                            frames: std::mem::take(&mut phys),
                        });
                    }
                    let seg_off = owed_frames.len() as u64;
                    owed_run = match owed_run {
                        Some((s0, o0, len)) => Some((s0, o0, len + 1)),
                        None => Some((slot, seg_off, 1)),
                    };
                    owed_frames.push(frame);
                }
            }
            if let Some((s0, o0, len)) = owed_run {
                new_items.push(MsgItem::Iou {
                    base_page: s0,
                    seg,
                    seg_offset: o0,
                    pages: len,
                });
            }
            if !phys.is_empty() {
                new_items.push(MsgItem::Pages {
                    base_page: phys_base,
                    frames: phys,
                });
            }
        }
        // With replicated page homes enabled, write-through the owed
        // pages to the segment's replica set at page-out time (a
        // fire-and-forget background transfer; bytes are ledgered under
        // `Replicate` so the paper's categories stay untouched).
        world
            .fabric
            .replicate_backing(&mut world.clock, self.node, seg, &owed_frames)?;
        self.store.insert(seg, owed_frames);
        excised.rimas.items = new_items;
        excised.rimas.no_ious = true;
        Ok(())
    }
}

/// Sizes the dirty-page retransmission rounds of a modeled pre-copy.
///
/// The dirty rate is estimated from the process's remaining trace (bytes
/// written per unit of modeled computation); each round retransmits what
/// was dirtied while the previous round was on the wire, shrinking until
/// `stop_pages` or `max_rounds` is reached.
fn plan_precopy_rounds(
    world: &World,
    excised: &ExcisedProcess,
    max_rounds: u32,
    stop_pages: u64,
) -> Vec<u64> {
    let trace = &excised.program;
    let pos = excised
        .core
        .items
        .first()
        .and_then(|item| match item {
            MsgItem::Inline(bytes) => CoreBlob::decode(bytes).map(|b| b.trace_pos as usize),
            _ => None,
        })
        .unwrap_or(0);
    let remaining = &trace.ops()[pos.min(trace.len())..];
    let write_bytes: u64 = remaining
        .iter()
        .filter_map(|op| match op {
            cor_kernel::program::Op::Touch {
                len, write: true, ..
            } => Some(*len),
            _ => None,
        })
        .sum();
    let compute: SimDuration = remaining
        .iter()
        .filter_map(|op| match op {
            cor_kernel::program::Op::Compute(d) => Some(*d),
            _ => None,
        })
        .sum();
    let secs = compute.as_secs_f64().max(0.1);
    let rate = write_bytes as f64 / secs; // bytes dirtied per second
    let full_bytes = excised.rimas.wire_size();
    let mut rounds = Vec::new();
    let mut prev = full_bytes as f64;
    for _ in 0..max_rounds {
        let t_prev = world.fabric.params.xmit_time(prev as u64, 1).as_secs_f64();
        let dirty = (rate * t_prev).min(prev);
        let dirty_pages = (dirty / PAGE_SIZE as f64).ceil() as u64;
        if dirty_pages == 0 {
            break;
        }
        rounds.push(dirty_pages * PAGE_SIZE);
        if dirty_pages <= stop_pages {
            break;
        }
        prev = dirty;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_kernel::program::Trace;
    use cor_mem::{AddressSpace, PageNum, VAddr};
    use cor_sim::{LedgerCategory, SimDuration};

    fn workload(world: &mut World, node: NodeId, pages: u64, budget: Option<usize>) -> ProcessId {
        let mut space = match budget {
            Some(b) => AddressSpace::with_frame_budget(b),
            None => AddressSpace::new(),
        };
        space.validate(VAddr(0), 4 * pages * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        // Phase A (run at source): write all pages.
        for i in 0..pages {
            tb.write(PageNum(i).base(), 64);
        }
        // Phase B (run at destination): read half of them back.
        for i in 0..pages / 2 {
            tb.read(PageNum(i * 2).base(), 64);
        }
        let trace = tb.terminate();
        let pid = world
            .create_process(node, "mgr-test", space, trace)
            .unwrap();
        world.run_for(node, pid, pages as usize).unwrap();
        pid
    }

    fn managers(world: &mut World, a: NodeId, b: NodeId) -> (MigrationManager, MigrationManager) {
        (
            MigrationManager::new(world, a),
            MigrationManager::new(world, b),
        )
    }

    #[test]
    fn pure_copy_ships_everything_up_front() {
        let (mut world, a, b) = World::testbed();
        let (src, dst) = managers(&mut world, a, b);
        let pid = workload(&mut world, a, 20, None);
        let report = src
            .migrate_to(&mut world, &dst, pid, Strategy::PureCopy)
            .unwrap();
        assert_eq!(report.carried_pages, 20);
        assert_eq!(report.owed_pages, 0);
        assert!(world.fabric.ledger.total_for(LedgerCategory::Bulk) > 20 * PAGE_SIZE);
        let r = world.run(b, pid).unwrap();
        assert!(r.finished);
        assert_eq!(world.process(b, pid).unwrap().stats.imag_faults, 0);
    }

    #[test]
    fn pure_iou_ships_only_ious_then_faults() {
        let (mut world, a, b) = World::testbed();
        let (src, dst) = managers(&mut world, a, b);
        let pid = workload(&mut world, a, 20, None);
        let report = src
            .migrate_to(&mut world, &dst, pid, Strategy::PureIou { prefetch: 0 })
            .unwrap();
        assert_eq!(report.carried_pages, 0);
        assert_eq!(report.owed_pages, 20);
        let bulk_at_transfer = world.fabric.ledger.total_for(LedgerCategory::Bulk);
        assert!(
            bulk_at_transfer < 20 * PAGE_SIZE / 2,
            "transfer phase is cheap: {bulk_at_transfer}"
        );
        let r = world.run(b, pid).unwrap();
        assert!(r.finished);
        let stats = &world.process(b, pid).unwrap().stats;
        assert_eq!(stats.imag_faults, 10, "half the pages were referenced");
        assert!(world.fabric.ledger.total_for(LedgerCategory::FaultSupport) > 10 * PAGE_SIZE);
    }

    #[test]
    fn iou_transfer_is_much_faster_than_copy() {
        let time_for = |strategy: Strategy| {
            let (mut world, a, b) = World::testbed();
            let (src, dst) = managers(&mut world, a, b);
            let pid = workload(&mut world, a, 200, None);
            let report = src.migrate_to(&mut world, &dst, pid, strategy).unwrap();
            report.timings.rimas_transfer.as_secs_f64()
        };
        let copy = time_for(Strategy::PureCopy);
        let iou = time_for(Strategy::PureIou { prefetch: 0 });
        assert!(copy > 10.0 * iou, "copy {copy} vs iou {iou}");
    }

    #[test]
    fn resident_set_splits_physical_and_owed() {
        let (mut world, a, b) = World::testbed();
        let (src, dst) = managers(&mut world, a, b);
        // 20 pages written, budget 8: 8 resident, 12 on disk at migration.
        let pid = workload(&mut world, a, 20, Some(8));
        let report = src
            .migrate_to(&mut world, &dst, pid, Strategy::ResidentSet { prefetch: 0 })
            .unwrap();
        assert_eq!(report.carried_pages, 8);
        assert_eq!(report.owed_pages, 12);
        assert_eq!(src.pages_held(), 12, "manager stores the owed pages");
        let r = world.run(b, pid).unwrap();
        assert!(r.finished);
        // Faults on the owed pages were served by the manager's store.
        let stats = &world.process(b, pid).unwrap().stats;
        assert!(stats.imag_faults > 0);
    }

    #[test]
    fn migration_preserves_final_memory_under_every_strategy() {
        // The comparable set is the pages touched in the *remote* phase:
        // an unreferenced owed page is correctly discarded when the
        // process dies, so its data is (by design) gone afterwards.
        let reference = {
            let (mut world, a, _) = World::testbed();
            let pid = workload(&mut world, a, 24, Some(10));
            world.reset_touch_tracking(a, pid).unwrap();
            world.run(a, pid).unwrap();
            world.touched_checksum(a, pid).unwrap()
        };
        for strategy in [
            Strategy::PureCopy,
            Strategy::PureIou { prefetch: 0 },
            Strategy::PureIou { prefetch: 3 },
            Strategy::ResidentSet { prefetch: 1 },
            Strategy::PreCopy {
                max_rounds: 4,
                stop_pages: 4,
            },
        ] {
            let (mut world, a, b) = World::testbed();
            let (src, dst) = managers(&mut world, a, b);
            let pid = workload(&mut world, a, 24, Some(10));
            world.reset_touch_tracking(a, pid).unwrap();
            src.migrate_to(&mut world, &dst, pid, strategy).unwrap();
            world.run(b, pid).unwrap();
            let got = world.touched_checksum(b, pid).unwrap();
            assert_eq!(got, reference, "strategy {strategy} diverged");
        }
    }

    #[test]
    fn all_segments_die_after_remote_execution() {
        for strategy in [
            Strategy::PureIou { prefetch: 1 },
            Strategy::ResidentSet { prefetch: 0 },
        ] {
            let (mut world, a, b) = World::testbed();
            let (src, dst) = managers(&mut world, a, b);
            let pid = workload(&mut world, a, 16, Some(6));
            src.migrate_to(&mut world, &dst, pid, strategy).unwrap();
            world.run(b, pid).unwrap();
            assert_eq!(world.segs.live(), 0, "segments leaked under {strategy}");
            assert_eq!(world.fabric.cached_pages_live(a), 0);
            assert_eq!(src.pages_held(), 0);
            assert_eq!(world.backer_pages_held(), 0);
        }
    }

    #[test]
    fn precopy_records_shrinking_rounds() {
        let (mut world, a, b) = World::testbed();
        let (src, dst) = managers(&mut world, a, b);
        // A process with a moderate remaining write rate: 100 pages built
        // at the source, then remote-phase writes interleaved with compute
        // so the modeled dirty set shrinks round over round.
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), 512 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        for i in 0..100u64 {
            tb.write(PageNum(i).base(), 64);
        }
        for i in 0..20u64 {
            tb.compute(SimDuration::from_millis(500));
            tb.write(PageNum(i).base(), PAGE_SIZE);
        }
        let pid = world
            .create_process(a, "precopy", space, tb.terminate())
            .unwrap();
        world.run_for(a, pid, 100).unwrap();
        let report = src
            .migrate_to(
                &mut world,
                &dst,
                pid,
                Strategy::PreCopy {
                    max_rounds: 5,
                    stop_pages: 2,
                },
            )
            .unwrap();
        assert!(
            report.precopy_rounds.len() >= 2,
            "rounds: {:?}",
            report.precopy_rounds
        );
        assert!(report.precopy_rounds[0] > report.precopy_rounds[1]);
        assert!(report.precopy_overhead_bytes() > 0);
        let r = world.run(b, pid).unwrap();
        assert!(r.finished);
    }

    #[test]
    fn prefetch_reduces_fault_count() {
        let faults_with = |prefetch: u64| {
            let (mut world, a, b) = World::testbed();
            let (src, dst) = managers(&mut world, a, b);
            // Sequential reader: touches pages 0..10 in order.
            let mut space = AddressSpace::new();
            space.validate(VAddr(0), 64 * PAGE_SIZE).unwrap();
            let mut tb = Trace::builder();
            for i in 0..10u64 {
                tb.write(PageNum(i).base(), 32);
            }
            for i in 0..10u64 {
                tb.read(PageNum(i).base(), 32);
            }
            let pid = world
                .create_process(a, "seq", space, tb.terminate())
                .unwrap();
            world.run_for(a, pid, 10).unwrap();
            src.migrate_to(&mut world, &dst, pid, Strategy::PureIou { prefetch })
                .unwrap();
            world.run(b, pid).unwrap();
            world.process(b, pid).unwrap().stats.imag_faults
        };
        assert_eq!(faults_with(0), 10);
        assert_eq!(faults_with(4), 2);
    }
}
