//! Excised process contexts and the Core-message codec.
//!
//! The Core message must be self-contained (paper §3.1: the context
//! messages "do not have to be preprocessed in any way"), so the PCB,
//! microengine state and kernel stack are serialized into a real binary
//! encoding whose length is what crosses the wire.

use cor_ipc::message::Message;
use cor_kernel::process::{ExecStats, Pcb, ProcessId, RunStatus};
use cor_kernel::program::Trace;

/// A process context extracted by `ExciseProcess`, ready for shipment.
#[derive(Debug)]
pub struct ExcisedProcess {
    /// The identity of the excised process (preserved across migration).
    pub pid: ProcessId,
    /// The Core context message: serialized PCB + microstate + kernel
    /// stack (inline), the port rights, and the address-space AMap.
    pub core: Message,
    /// The RIMAS message: the Real and Imaginary address-space portions
    /// collapsed into a contiguous area of page slots.
    pub rimas: Message,
    /// Collapsed slot indices that were *resident* at excision time (used
    /// by the resident-set strategy to decide what ships physically).
    pub resident_slots: Vec<u64>,
    /// The program text. In a real system this lives in the Real pages
    /// already carried by the RIMAS message; the simulation keeps the
    /// structured form alongside so the destination can keep executing it.
    pub program: Trace,
    /// Measurement carry-over (simulation bookkeeping, not context).
    pub stats: ExecStats,
    /// The source's resident-set frame budget, restored at insertion.
    pub frame_budget: Option<usize>,
}

/// The serializable PCB/microstate/kernel-stack bundle carried inline in
/// the Core message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreBlob {
    /// Process name.
    pub name: String,
    /// Next trace op ("program counter").
    pub trace_pos: u64,
    /// Scheduling priority.
    pub priority: u8,
    /// Run status at excision (preserved so the process resumes in its
    /// original queue, §3.1).
    pub status: RunStatus,
    /// Microengine registers.
    pub microstate: Vec<u8>,
    /// Kernel stack (non-empty only in supervisor mode).
    pub kernel_stack: Vec<u8>,
    /// Resident frame budget (0 = unbounded).
    pub frame_budget: u64,
}

fn status_code(s: RunStatus) -> u8 {
    match s {
        RunStatus::Ready => 0,
        RunStatus::Running => 1,
        RunStatus::Blocked => 2,
        RunStatus::Terminated => 3,
    }
}

fn status_from(code: u8) -> Option<RunStatus> {
    Some(match code {
        0 => RunStatus::Ready,
        1 => RunStatus::Running,
        2 => RunStatus::Blocked,
        3 => RunStatus::Terminated,
        _ => return None,
    })
}

impl CoreBlob {
    /// Builds the blob from a PCB and context pieces.
    pub fn from_parts(
        pcb: &Pcb,
        microstate: &[u8],
        kernel_stack: &[u8],
        frame_budget: Option<usize>,
    ) -> Self {
        CoreBlob {
            name: pcb.name.clone(),
            trace_pos: pcb.trace_pos as u64,
            priority: pcb.priority,
            status: pcb.status,
            microstate: microstate.to_vec(),
            kernel_stack: kernel_stack.to_vec(),
            frame_budget: frame_budget.map_or(0, |b| b as u64),
        }
    }

    /// Serializes to the wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.name.len() + self.microstate.len());
        let name = self.name.as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.trace_pos.to_le_bytes());
        out.push(self.priority);
        out.push(status_code(self.status));
        out.extend_from_slice(&self.frame_budget.to_le_bytes());
        out.extend_from_slice(&(self.microstate.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.microstate);
        out.extend_from_slice(&(self.kernel_stack.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.kernel_stack);
        out
    }

    /// Parses the wire form; `None` on any structural damage.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).ok()?;
        let trace_pos = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let priority = take(&mut pos, 1)?[0];
        let status = status_from(take(&mut pos, 1)?[0])?;
        let frame_budget = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let micro_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let microstate = take(&mut pos, micro_len)?.to_vec();
        let ks_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let kernel_stack = take(&mut pos, ks_len)?.to_vec();
        if pos != bytes.len() {
            return None;
        }
        Some(CoreBlob {
            name,
            trace_pos,
            priority,
            status,
            microstate,
            kernel_stack,
            frame_budget,
        })
    }

    /// The carried frame budget, `None` when unbounded.
    pub fn budget(&self) -> Option<usize> {
        if self.frame_budget == 0 {
            None
        } else {
            Some(self.frame_budget as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoreBlob {
        CoreBlob {
            name: "Lisp-Del".into(),
            trace_pos: 1234,
            priority: 7,
            status: RunStatus::Ready,
            microstate: (0..512).map(|i| i as u8).collect(),
            kernel_stack: vec![9; 64],
            frame_budget: 372,
        }
    }

    #[test]
    fn roundtrip() {
        let blob = sample();
        let bytes = blob.encode();
        assert_eq!(CoreBlob::decode(&bytes), Some(blob));
    }

    #[test]
    fn encoded_size_is_about_a_kilobyte() {
        let n = sample().encode().len();
        assert!((600..1400).contains(&n), "got {n}");
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        assert!(CoreBlob::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(CoreBlob::decode(&[]).is_none());
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(CoreBlob::decode(&bytes).is_none());
    }

    #[test]
    fn bad_status_code_is_rejected() {
        let blob = sample();
        let mut bytes = blob.encode();
        // The status byte sits right after name(4+8) + trace_pos(8) + prio.
        let idx = 4 + blob.name.len() + 8 + 1;
        bytes[idx] = 99;
        assert!(CoreBlob::decode(&bytes).is_none());
    }

    #[test]
    fn budget_zero_means_unbounded() {
        let mut blob = sample();
        blob.frame_budget = 0;
        assert_eq!(blob.budget(), None);
        blob.frame_budget = 42;
        assert_eq!(blob.budget(), Some(42));
    }
}
