//! Context transfer strategies.

use std::fmt;

/// How a process's address space travels to the new execution site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Brute force: every RealMem page crosses the wire at migration time
    /// (the RIMAS message is sent with `NoIOUs` set).
    PureCopy,
    /// Copy-on-reference: the source NetMsgServer caches the pages and
    /// forwards IOUs; each page crosses only when referenced, with
    /// `prefetch` extra contiguous pages per fault.
    PureIou {
        /// Pages prefetched per imaginary fault (paper: 0, 1, 3, 7, 15).
        prefetch: u64,
    },
    /// Middle ground: the resident set (an approximation of the working
    /// set) ships physically; the MigrationManager actively backs the rest
    /// with its own imaginary segment.
    ResidentSet {
        /// Pages prefetched per imaginary fault.
        prefetch: u64,
    },
    /// V-system style iterative pre-copy (Theimer et al., paper §5):
    /// the full copy plus modeled dirty-page retransmission rounds. Our
    /// ablation baseline — not part of the paper's own evaluation.
    PreCopy {
        /// Maximum retransmission rounds after the full copy.
        max_rounds: u32,
        /// Stop when a round would ship at most this many pages.
        stop_pages: u64,
    },
}

impl Strategy {
    /// The prefetch amount this strategy runs remote execution with.
    pub fn prefetch(&self) -> u64 {
        match self {
            Strategy::PureIou { prefetch } | Strategy::ResidentSet { prefetch } => *prefetch,
            Strategy::PureCopy | Strategy::PreCopy { .. } => 0,
        }
    }

    /// Short family name without parameters.
    pub fn family(&self) -> &'static str {
        match self {
            Strategy::PureCopy => "pure-copy",
            Strategy::PureIou { .. } => "pure-iou",
            Strategy::ResidentSet { .. } => "resident-set",
            Strategy::PreCopy { .. } => "pre-copy",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::PureCopy => write!(f, "pure-copy"),
            Strategy::PureIou { prefetch } => write!(f, "pure-iou(pf={prefetch})"),
            Strategy::ResidentSet { prefetch } => write!(f, "resident-set(pf={prefetch})"),
            Strategy::PreCopy { max_rounds, .. } => write!(f, "pre-copy(rounds<={max_rounds})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_extraction() {
        assert_eq!(Strategy::PureCopy.prefetch(), 0);
        assert_eq!(Strategy::PureIou { prefetch: 7 }.prefetch(), 7);
        assert_eq!(Strategy::ResidentSet { prefetch: 3 }.prefetch(), 3);
    }

    #[test]
    fn labels() {
        assert_eq!(
            Strategy::PureIou { prefetch: 1 }.to_string(),
            "pure-iou(pf=1)"
        );
        assert_eq!(Strategy::PureCopy.family(), "pure-copy");
    }
}
