//! The `ExciseProcess` kernel trap (paper §3.1).
//!
//! Removes the complete context of a process from its host and delivers it
//! as two self-contained IPC messages. The address space is *collapsed*:
//! walking the AMap in address order, every Real and Imaginary page is
//! assigned a consecutive slot in a contiguous area. Resident pages are
//! memory-mapped into the message (copy-on-write frame shares — "instead
//! of physical copies"); paged-out pages are transferred by reference to
//! their disk blocks; already-imaginary ranges become IOU items carrying
//! the references the space held.

use cor_ipc::message::{Message, MsgItem, MsgKind};
use cor_ipc::port::PortId;
use cor_ipc::NodeId;
use cor_kernel::process::ProcessId;
use cor_kernel::{KernelError, World};
use cor_mem::amap::Access;
use cor_mem::page::Frame;
use cor_mem::PageState;
use cor_sim::SimDuration;

use crate::context::{CoreBlob, ExcisedProcess};

/// Measurements of one excision (Table 4-4 quantities).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExciseReport {
    /// AMap construction time.
    pub amap_time: SimDuration,
    /// RIMAS collapse time.
    pub rimas_time: SimDuration,
    /// Total elapsed excision time.
    pub total: SimDuration,
    /// RealMem pages collapsed.
    pub real_pages: u64,
    /// Of those, pages resident at excision.
    pub resident_pages: u64,
    /// Pages that were already imaginary.
    pub imag_pages: u64,
    /// AMap entries produced.
    pub amap_entries: u64,
}

/// Excises `pid` from `node`, addressing both context messages to `dest`.
/// The process ceases to exist on the node; its identity, port rights and
/// address-space contents travel in the returned context.
///
/// # Errors
///
/// Unknown node/process, or internal state errors while collapsing.
pub fn excise_process(
    world: &mut World,
    node: NodeId,
    pid: ProcessId,
    dest: PortId,
) -> Result<(ExcisedProcess, ExciseReport), KernelError> {
    let start = world.clock.now();

    // -- AMap construction (the dominant cost for sparse spaces). --
    let (amap, map_complexity) = {
        let process = world.process(node, pid)?;
        if process.finished() {
            // A terminated process released its owed-page references; its
            // context can no longer be shipped coherently.
            return Err(KernelError::ProcessNotActive(pid));
        }
        (process.space.amap(), process.space.map_complexity())
    };
    let amap_time = world.costs.amap_cost(map_complexity);
    world.clock.advance(amap_time);

    // -- Collapse the Real and Imaginary portions into RIMAS items. --
    let mut items: Vec<MsgItem> = Vec::new();
    let mut batch: Vec<Frame> = Vec::new();
    let mut batch_base = 0u64;
    let mut cursor = 0u64; // next collapsed slot
    let mut resident_slots = Vec::new();
    let mut real_pages = 0u64;
    let mut resident_pages = 0u64;
    let mut imag_pages = 0u64;
    {
        let n = world.node_mut(node)?;
        let (processes, disk) = (&mut n.processes, &mut n.disk);
        let process = processes
            .get_mut(&pid)
            .ok_or(KernelError::UnknownProcess(pid))?;
        for entry in amap.entries() {
            match entry.access {
                Access::RealZero => {} // reconstructed from the AMap alone
                Access::Real => {
                    for page in entry.range.iter() {
                        if batch.is_empty() {
                            batch_base = cursor;
                        }
                        match process.space.page_state(page) {
                            Some(PageState::Resident(frame)) => {
                                // Memory-mapped into the message: a COW
                                // share, not a copy.
                                batch.push(frame.clone());
                                resident_slots.push(cursor);
                                resident_pages += 1;
                            }
                            Some(PageState::OnDisk(_)) => {
                                // Transferred by reference to the disk
                                // block: the frame moves into the message
                                // and the block is reclaimed (the process
                                // is leaving this node) — no byte copy.
                                let frame =
                                    process.space.take_disk_frame(page, disk).ok_or(
                                        KernelError::Mem(cor_mem::MemError::NotResident(page)),
                                    )?;
                                batch.push(frame);
                            }
                            other => {
                                return Err(KernelError::Mem(cor_mem::MemError::BadState(
                                    page,
                                    match other {
                                        None => "AMap says Real but page is missing",
                                        _ => "AMap says Real but page is imaginary",
                                    },
                                )))
                            }
                        }
                        real_pages += 1;
                        cursor += 1;
                    }
                }
                Access::Imag => {
                    if !batch.is_empty() {
                        items.push(MsgItem::Pages {
                            base_page: batch_base,
                            frames: std::mem::take(&mut batch),
                        });
                    }
                    let pages = entry.range.len();
                    items.push(MsgItem::Iou {
                        base_page: cursor,
                        seg: entry.seg.expect("Imag entries carry a segment"),
                        seg_offset: entry.seg_offset,
                        pages,
                    });
                    imag_pages += pages;
                    cursor += pages;
                }
                Access::Bad => unreachable!("AMaps never contain BadMem entries"),
            }
        }
    }
    if !batch.is_empty() {
        items.push(MsgItem::Pages {
            base_page: batch_base,
            frames: batch,
        });
    }
    let rimas_time = world.costs.rimas_cost(resident_pages, real_pages);
    world.clock.advance(rimas_time);
    world.clock.advance(world.costs.excise_fixed);

    // -- Remove the process and assemble the self-contained messages. --
    let process = world.remove_process(node, pid)?;
    let frame_budget = process.space.frame_budget();
    let blob = CoreBlob::from_parts(
        &process.pcb,
        &process.microstate,
        &process.kernel_stack,
        frame_budget,
    );
    let core = Message::new(MsgKind::Core, dest)
        .with_no_ious(true)
        .push(MsgItem::Inline(blob.encode()))
        .push(MsgItem::Rights(process.rights.clone()))
        .push(MsgItem::AMap(amap.clone()));
    let mut rimas = Message::new(MsgKind::Rimas, dest);
    rimas.items = items;

    world.note(|| cor_trace::TraceEvent::Excised {
        pid: pid.0,
        node,
        real_pages,
        resident_pages,
    });
    let report = ExciseReport {
        amap_time,
        rimas_time,
        total: world.clock.now().since(start),
        real_pages,
        resident_pages,
        imag_pages,
        amap_entries: amap.len() as u64,
    };
    let excised = ExcisedProcess {
        pid,
        core,
        rimas,
        resident_slots,
        program: process.trace,
        stats: process.stats,
        frame_budget,
    };
    Ok((excised, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_kernel::program::Trace;
    use cor_mem::{AddressSpace, PageNum, PageRange, VAddr, PAGE_SIZE};

    fn build_process(budget: Option<usize>) -> (World, NodeId, ProcessId) {
        let (mut world, a, _) = World::testbed();
        let mut space = match budget {
            Some(b) => AddressSpace::with_frame_budget(b),
            None => AddressSpace::new(),
        };
        space.validate(VAddr(0), 16 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        for i in 0..8u64 {
            tb.write(PageNum(i).base(), 16);
        }
        let trace = tb.terminate();
        let pid = world.create_process(a, "excisee", space, trace).unwrap();
        // Materialize the first 8 pages.
        world.run_for(a, pid, 8).unwrap();
        (world, a, pid)
    }

    #[test]
    fn excision_removes_process_and_packages_context() {
        let (mut world, a, pid) = build_process(None);
        let dest = world.ports.allocate(a);
        let (excised, report) = excise_process(&mut world, a, pid, dest).unwrap();
        assert!(world.process(a, pid).is_err(), "process ceased to exist");
        assert_eq!(report.real_pages, 8);
        assert_eq!(report.resident_pages, 8);
        assert_eq!(excised.rimas.carried_pages(), 8);
        assert_eq!(excised.rimas.owed_pages(), 0);
        assert_eq!(excised.resident_slots, (0..8).collect::<Vec<_>>());
        // The Core message is self-contained.
        let blob_item = &excised.core.items[0];
        let MsgItem::Inline(bytes) = blob_item else {
            panic!("expected blob")
        };
        let blob = CoreBlob::decode(bytes).unwrap();
        assert_eq!(blob.name, "excisee");
        assert_eq!(blob.trace_pos, 8);
        assert!(excised.core.amap().is_some());
    }

    #[test]
    fn collapse_shares_frames_instead_of_copying() {
        let (mut world, a, pid) = build_process(None);
        // Hold an alias of a resident frame so sharing is observable after
        // the source process is dismantled.
        let alias = {
            let process = world.process(a, pid).unwrap();
            match process.space.page_state(PageNum(0)) {
                Some(cor_mem::PageState::Resident(f)) => f.clone(),
                other => panic!("expected resident page, got {other:?}"),
            }
        };
        assert_eq!(world.process(a, pid).unwrap().space.cow_copies(), 0);
        let dest = world.ports.allocate(a);
        let (excised, _) = excise_process(&mut world, a, pid, dest).unwrap();
        let MsgItem::Pages { frames, .. } = &excised.rimas.items[0] else {
            panic!("expected Pages");
        };
        // Slot 0's frame in the message IS the original frame (COW share,
        // not a byte copy): both views are marked shared.
        assert!(alias.is_shared());
        assert!(frames[0].is_shared());
    }

    #[test]
    fn paged_out_pages_are_collapsed_from_disk() {
        let (mut world, a, pid) = build_process(Some(4));
        // 8 pages touched with a 4-frame budget: 4 on disk, 4 resident.
        let st = world.process(a, pid).unwrap().space.stats();
        assert_eq!(st.resident_bytes, 4 * PAGE_SIZE);
        let dest = world.ports.allocate(a);
        let (excised, report) = excise_process(&mut world, a, pid, dest).unwrap();
        assert_eq!(report.real_pages, 8);
        assert_eq!(report.resident_pages, 4);
        assert_eq!(excised.resident_slots.len(), 4);
        assert_eq!(excised.rimas.carried_pages(), 8, "disk pages included");
    }

    #[test]
    fn imaginary_ranges_become_iou_items() {
        let (mut world, a, _) = World::testbed();
        let backing = world.ports.allocate(a);
        let seg = world.segs.create(backing, 4);
        world.segs.add_refs(seg, 4).unwrap();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), 8 * PAGE_SIZE).unwrap();
        space.map_imaginary(PageRange::new(PageNum(2), PageNum(6)), seg, 0);
        let trace = Trace::new(vec![cor_kernel::program::Op::Terminate]);
        let pid = world.create_process(a, "imag", space, trace).unwrap();
        let dest = world.ports.allocate(a);
        let (excised, report) = excise_process(&mut world, a, pid, dest).unwrap();
        assert_eq!(report.imag_pages, 4);
        assert_eq!(excised.rimas.owed_pages(), 4);
        // Refs were not disturbed: still 4 outstanding, held by the item.
        assert_eq!(world.segs.get(seg).unwrap().outstanding, 4);
    }

    #[test]
    fn excision_time_has_the_right_structure() {
        let (mut world, a, pid) = build_process(None);
        let complexity = world.process(a, pid).unwrap().space.map_complexity();
        let dest = world.ports.allocate(a);
        let (_, report) = excise_process(&mut world, a, pid, dest).unwrap();
        assert_eq!(report.amap_time, world.costs.amap_cost(complexity));
        assert_eq!(report.rimas_time, world.costs.rimas_cost(8, 8));
        assert_eq!(
            report.total,
            report.amap_time + report.rimas_time + world.costs.excise_fixed
        );
    }
}
