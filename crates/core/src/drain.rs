//! Background IOU draining (the robustness counterpart of §6).
//!
//! A pure-IOU migration leaves the process residually dependent on its
//! source: every untouched page is still owed by the source NetMsgServer's
//! volatile cache, and a source crash orphans the process. The [`Drainer`]
//! attacks that window: it interleaves foreground execution with idle
//! rounds of [`World::drain_round`], either *prefetching* owed pages
//! across the wire or *flushing* them to the source's crash-survivable
//! disk backer ("flush to Sesame"), so that
//! [`World::residual_dependencies`] shrinks monotonically while the
//! process makes normal progress. All drain traffic is ledgered under
//! [`cor_sim::LedgerCategory::Drain`], leaving the paper's byte categories
//! untouched.

use cor_ipc::NodeId;
use cor_kernel::process::ProcessId;
use cor_kernel::{DrainPolicy, KernelError, World};

/// What a drained run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Trace ops the foreground process executed.
    pub ops_executed: usize,
    /// Idle drain rounds taken.
    pub drain_rounds: u64,
    /// Pages made crash-safe by those rounds.
    pub drained_pages: u64,
    /// Whether the process ran to termination.
    pub finished: bool,
    /// Whether the dependency set was empty when the run ended.
    pub fully_drained: bool,
}

/// Interleaves foreground execution with background IOU draining.
#[derive(Debug, Clone, Copy)]
pub struct Drainer {
    /// The per-round draining policy.
    pub policy: DrainPolicy,
    /// Foreground trace ops executed between drain rounds — the model of
    /// "idle time": a smaller value drains more aggressively.
    pub interleave_ops: usize,
}

impl Drainer {
    /// A drainer with the given policy and a default interleave of 16
    /// foreground ops per drain round.
    pub fn new(policy: DrainPolicy) -> Self {
        Drainer {
            policy,
            interleave_ops: 16,
        }
    }

    /// Sets the foreground ops per drain round.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is zero (the foreground could never progress).
    pub fn with_interleave(mut self, ops: usize) -> Self {
        assert!(ops > 0, "foreground slices must make progress");
        self.interleave_ops = ops;
        self
    }

    /// Runs `pid` to termination, draining between foreground slices.
    ///
    /// # Errors
    ///
    /// Execution failures — including
    /// [`KernelError::OrphanedProcess`](cor_kernel::KernelError) if a
    /// dependency crashes before draining saves its pages.
    pub fn run(
        &self,
        world: &mut World,
        node: NodeId,
        pid: ProcessId,
    ) -> Result<DrainReport, KernelError> {
        let mut report = DrainReport {
            ops_executed: 0,
            drain_rounds: 0,
            drained_pages: 0,
            finished: false,
            fully_drained: false,
        };
        loop {
            let exec = world.run_for(node, pid, self.interleave_ops)?;
            report.ops_executed += exec.ops_executed;
            if exec.finished {
                report.finished = true;
                break;
            }
            report.drain_rounds += 1;
            report.drained_pages += world.drain_round(node, pid, self.policy)?;
        }
        report.fully_drained = world.residual_dependencies(node, pid)?.is_empty();
        Ok(report)
    }

    /// Drains with no foreground progress at all until the dependency set
    /// stops shrinking; returns the pages made crash-safe. After this,
    /// either [`World::residual_dependencies`] is empty or the remainder
    /// is undrainable under the policy.
    ///
    /// # Errors
    ///
    /// Draining failures (e.g. the recovery-ladder outcomes when
    /// prefetch-draining races a crash).
    pub fn drain_fully(
        &self,
        world: &mut World,
        node: NodeId,
        pid: ProcessId,
    ) -> Result<u64, KernelError> {
        let mut total = 0;
        loop {
            let drained = world.drain_round(node, pid, self.policy)?;
            if drained == 0 {
                return Ok(total);
            }
            total += drained;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::MigrationManager;
    use crate::strategy::Strategy;
    use cor_kernel::program::Trace;
    use cor_kernel::{DrainMode, RunStatus};
    use cor_mem::{AddressSpace, PageNum, VAddr, PAGE_SIZE};

    /// The traveler's trace: write every page, idle a while (compute),
    /// then re-read everything. Migration happens after the writes, so at
    /// the destination every page is owed and the computes are the idle
    /// time a drainer can exploit before the final read touches it all.
    fn traveler_trace(pages: u64) -> Trace {
        let mut tb = Trace::builder();
        for i in 0..pages {
            tb.write(PageNum(i).base(), 64);
        }
        for _ in 0..pages {
            tb.compute(cor_sim::SimDuration::from_millis(5));
        }
        tb.read(VAddr(0), pages * PAGE_SIZE);
        tb.terminate()
    }

    /// A process on `a` with all `pages` materialized, migrated to `b`
    /// pure-IOU so everything stays owed by `a`'s NMS cache.
    fn migrated(pages: u64) -> (World, NodeId, NodeId, ProcessId) {
        let (mut world, a, b) = World::testbed();
        let src = MigrationManager::new(&mut world, a);
        let dst = MigrationManager::new(&mut world, b);
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), pages * PAGE_SIZE).unwrap();
        let pid = world
            .create_process(a, "traveler", space, traveler_trace(pages))
            .unwrap();
        world.run_for(a, pid, pages as usize).unwrap();
        src.migrate_to(&mut world, &dst, pid, Strategy::PureIou { prefetch: 0 })
            .unwrap();
        (world, a, b, pid)
    }

    #[test]
    fn interleaved_prefetch_drain_finishes_and_empties_the_set() {
        let (mut world, a, b, pid) = migrated(12);
        assert!(
            world.residual_dependencies(b, pid).unwrap().contains_key(&a),
            "migration left a residual dependency on the source"
        );
        let drainer = Drainer::new(DrainPolicy::prefetch(4)).with_interleave(1);
        let report = drainer.run(&mut world, b, pid).unwrap();
        assert!(report.finished);
        assert!(report.fully_drained);
        assert!(report.drain_rounds > 0);
        assert_eq!(report.drained_pages, 12, "idle rounds pulled every page");
        assert_eq!(
            world.process(b, pid).unwrap().pcb.status,
            RunStatus::Terminated
        );
    }

    #[test]
    fn flush_drain_immunizes_against_a_source_crash() {
        // Reference checksum: same program, no migration, no crash.
        let pages = 10u64;
        let clean = {
            let (mut world, a, _) = World::testbed();
            let mut space = AddressSpace::new();
            space.validate(VAddr(0), pages * PAGE_SIZE).unwrap();
            let pid = world
                .create_process(a, "traveler", space, traveler_trace(pages))
                .unwrap();
            world.run(a, pid).unwrap();
            world.touched_checksum(a, pid).unwrap()
        };
        let (mut world, a, b, pid) = migrated(pages);
        let drainer = Drainer::new(DrainPolicy {
            mode: DrainMode::FlushToDisk,
            pages_per_round: 3,
        });
        let flushed = drainer.drain_fully(&mut world, b, pid).unwrap();
        assert!(flushed > 0);
        assert!(world.residual_dependencies(b, pid).unwrap().is_empty());
        // Kill the source: every remaining fetch recovers from its disk.
        let now = world.clock.now();
        world.fabric.crash_node(now, &mut world.ports, a, false);
        world.run(b, pid).unwrap();
        assert_eq!(world.touched_checksum(b, pid).unwrap(), clean);
        assert_eq!(world.fabric.reliability.pages_lost.get(), 0);
    }

    #[test]
    fn without_draining_the_same_crash_orphans() {
        let (mut world, a, b, pid) = migrated(10);
        let now = world.clock.now();
        world.fabric.crash_node(now, &mut world.ports, a, false);
        match world.run(b, pid) {
            Err(KernelError::OrphanedProcess { pid: p, node, .. }) => {
                assert_eq!(p, pid);
                assert_eq!(node, a);
            }
            other => panic!("expected OrphanedProcess, got {other:?}"),
        }
    }
}
