//! Crash tolerance: residual dependencies, draining, and the recovery
//! ladder.
//!
//! Split out of `world.rs` by the actor-runtime refactor: this module
//! owns everything that runs when a node crashes or is about to — the
//! multi-hop residual-dependency walk, the background drainer
//! ([`crate::DrainPolicy`]), and the salvage-or-orphan ladder.

use std::collections::BTreeMap;

use cor_ipc::NodeId;
use cor_mem::space::SegmentId;
use cor_mem::{PageNum, PageRange, PageState, VAddr};
use cor_trace::TraceEvent;

use crate::error::KernelError;
use crate::process::ProcessId;
use crate::world::{DrainMode, DrainPolicy, World};

impl World {
    // ----- crash tolerance: residual deps, draining, recovery --------------

    /// The residual dependencies of `pid`: for every still-owed
    /// (imaginary) page, the node whose *volatile* state the process
    /// depends on — resolved through the full stand-in forwarding chain,
    /// multi-hop included. Pages whose bytes already sit in the backer's
    /// crash-survivable disk backer are crash-recoverable and therefore
    /// not counted, which is what makes flush-draining monotonically
    /// shrink this map. Local dependencies (pages the node owes itself)
    /// are omitted: a node cannot outlive its own crash.
    ///
    /// # Errors
    ///
    /// Unknown node/process, or a broken backing chain.
    pub fn residual_dependencies(
        &self,
        node: NodeId,
        pid: ProcessId,
    ) -> Result<BTreeMap<NodeId, u64>, KernelError> {
        let mut deps = BTreeMap::new();
        let process = self.process(node, pid)?;
        for (_, state) in process.space.materialized_pages() {
            if let PageState::Imaginary { seg, offset } = state {
                // A dead segment means the references were already
                // released (e.g. at termination): no dependency remains.
                if self.segs.get(*seg).is_none() {
                    continue;
                }
                let (backer, bseg, boff) =
                    self.fabric
                        .resolve_owed(&self.ports, &self.segs, *seg, *offset)?;
                if backer != node
                    && !self.fabric.disk_has(backer, bseg, boff)
                    && !self.fabric.replica_live_elsewhere(backer, bseg, boff)
                {
                    *deps.entry(backer).or_insert(0) += 1;
                }
            }
        }
        Ok(deps)
    }

    /// One round of background IOU draining under `policy`; returns the
    /// number of pages made crash-safe this round (zero means the
    /// dependency set is fully drained — or nothing more is drainable).
    /// Every drained page is counted in
    /// [`ReliabilityStats::drained_pages`](cor_sim::ReliabilityStats) and
    /// its traffic ledgered under [`cor_sim::LedgerCategory::Drain`], so paper
    /// tables built from the other categories are untouched.
    ///
    /// # Errors
    ///
    /// Unknown node/process, broken chains, or (for prefetch draining
    /// against a crashed backer) the recovery-ladder outcomes of
    /// [`World::touch`].
    pub fn drain_round(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        policy: DrainPolicy,
    ) -> Result<u64, KernelError> {
        if policy.pages_per_round == 0 {
            return Ok(0);
        }
        match policy.mode {
            DrainMode::Prefetch => self.drain_prefetch(node, pid, policy.pages_per_round),
            DrainMode::FlushToDisk => self.drain_flush(node, pid, policy.pages_per_round),
        }
    }

    /// The first still-owed page of `pid` whose resolved backer is remote
    /// and not yet crash-safe on that backer's disk.
    pub(crate) fn first_remote_owed(
        &self,
        node: NodeId,
        pid: ProcessId,
    ) -> Result<Option<(PageNum, SegmentId, u64)>, KernelError> {
        let process = self.process(node, pid)?;
        for (page, state) in process.space.materialized_pages() {
            if let PageState::Imaginary { seg, offset } = state {
                if self.segs.get(*seg).is_none() {
                    continue;
                }
                let (backer, bseg, boff) =
                    self.fabric
                        .resolve_owed(&self.ports, &self.segs, *seg, *offset)?;
                if backer != node
                    && !self.fabric.disk_has(backer, bseg, boff)
                    && !self.fabric.replica_live_elsewhere(backer, bseg, boff)
                {
                    return Ok(Some((page, *seg, *offset)));
                }
            }
        }
        Ok(None)
    }

    /// Prefetch-mode draining: pull up to `quota` owed pages across the
    /// wire during idle time, exactly as an imaginary fault would, so the
    /// dependency disappears outright.
    pub(crate) fn drain_prefetch(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        quota: u64,
    ) -> Result<u64, KernelError> {
        let Some((page, seg, offset)) = self.first_remote_owed(node, pid)? else {
            return Ok(0);
        };
        let saved = self.prefetch;
        self.prefetch = quota - 1;
        self.fabric.set_drain_accounting(true);
        let fetched = self.handle_imaginary_fault(node, pid, page, seg, offset);
        self.fabric.set_drain_accounting(false);
        self.prefetch = saved;
        let installed = fetched?;
        self.fabric.reliability.drained_pages.add(installed);
        self.note(|| TraceEvent::DrainPrefetch {
            pid: pid.0,
            node,
            pages: installed,
            seg: seg.0,
            offset,
        });
        Ok(installed)
    }

    /// Flush-mode draining ("flush to Sesame"): copy up to `quota` owed
    /// pages from the backing site's volatile NMS cache (or user-level
    /// backer) onto that site's crash-survivable disk backer. The pages
    /// stay owed — no wire transfer happens — but a crash can no longer
    /// lose them, so they leave [`World::residual_dependencies`].
    pub(crate) fn drain_flush(&mut self, node: NodeId, pid: ProcessId, quota: u64) -> Result<u64, KernelError> {
        let targets: Vec<(NodeId, SegmentId, u64)> = {
            let process = self.process(node, pid)?;
            let mut t = Vec::new();
            for (_, state) in process.space.materialized_pages() {
                if let PageState::Imaginary { seg, offset } = state {
                    if self.segs.get(*seg).is_none() {
                        continue;
                    }
                    let (backer, bseg, boff) =
                        self.fabric
                            .resolve_owed(&self.ports, &self.segs, *seg, *offset)?;
                    if backer != node
                        && !self.fabric.disk_has(backer, bseg, boff)
                        && !self.fabric.replica_live_elsewhere(backer, bseg, boff)
                    {
                        t.push((backer, bseg, boff));
                    }
                }
            }
            t
        };
        let mut flushed = 0u64;
        for (backer, bseg, boff) in targets {
            if flushed >= quota {
                break;
            }
            // A dead backer's volatile copy is already gone; there is
            // nothing left to flush (prefetch-mode draining would instead
            // climb the recovery ladder here).
            if self.fabric.is_crashed(backer) {
                continue;
            }
            let written = self.fabric.flush_cached_page_to_disk(backer, bseg, boff)
                || self.flush_user_backed_page(backer, bseg, boff);
            if !written {
                continue;
            }
            // The flush is the *backer's* disk writing out its own cache —
            // background work at another node that overlaps the foreground
            // process's execution, so it costs ledger bytes but no global
            // wall time (the destination never blocks on it).
            let now = self.clock.now();
            self.fabric
                .ledger
                .record(now, cor_mem::PAGE_SIZE, cor_sim::LedgerCategory::Drain);
            self.fabric.reliability.drained_pages.incr();
            flushed += 1;
            self.note(|| TraceEvent::DrainFlush {
                pid: pid.0,
                node,
                seg: bseg.0,
                offset: boff,
                backer,
            });
        }
        Ok(flushed)
    }

    /// Flushes one page of a *user-level*-backed segment to the backing
    /// node's disk backer. Returns `true` if a page was written.
    pub(crate) fn flush_user_backed_page(&mut self, backer: NodeId, seg: SegmentId, offset: u64) -> bool {
        let Ok(port) = self.segs.backing_port(seg) else {
            return false;
        };
        let Some(mut frames) = self
            .backers
            .get_mut(&port)
            .and_then(|e| e.store.fetch(seg, offset, 1))
        else {
            return false;
        };
        if frames.is_empty() {
            return false;
        }
        self.fabric
            .disk_install_page(backer, seg, offset, frames.remove(0));
        true
    }

    /// The crash-recovery ladder, entered when an imaginary fetch failed.
    /// Rung 1: if the failure traces to a *crashed* backing site, read the
    /// owed pages back from that site's crash-survivable disk backer and
    /// install them as the reply would have. Rung 2: if the faulting page
    /// is not on disk either, the data is gone — count the losses,
    /// terminate the orphan cleanly (releasing its remaining references),
    /// and surface [`KernelError::OrphanedProcess`]. Failures unrelated to
    /// a crash propagate unchanged.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn crash_recover_or_orphan(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        seg: SegmentId,
        offset: u64,
        count: u64,
        err: KernelError,
    ) -> Result<u64, KernelError> {
        let dead = match &err {
            KernelError::SourceUnreachable { to, .. } if self.fabric.is_crashed(*to) => *to,
            // A missing reply (the backer died after the request left) or
            // a transport error: recoverable only if the resolved backing
            // site is in fact down.
            KernelError::NoReply { .. } | KernelError::Net(_) => {
                let (backer, _, _) =
                    self.fabric
                        .resolve_owed(&self.ports, &self.segs, seg, offset)?;
                // An amnesiac reboot answers the wire again but its cache
                // and forward tables are gone — for owed pages that is the
                // same loss as staying down, so it climbs the same ladder.
                if self.fabric.lost_volatile_state(backer) {
                    backer
                } else {
                    return Err(err);
                }
            }
            _ => return Err(err),
        };
        // Rung 0: with replicated page homes, a surviving replica serves
        // the read content-addressed — no data loss, no drain, and the
        // fetch is charged like a wire round trip (the measured failover
        // latency). Reached when the primary died *mid-flight*: a fetch
        // that found it already down failed over before sending.
        if self.fabric.params.replication.is_some() {
            let now = self.clock.now();
            if let Some(installed) =
                self.try_replica_read(node, pid, page, seg, offset, count, now)?
            {
                return Ok(installed);
            }
        }
        // Rung 1: the crashed node's disk backer, page by page; prefetch
        // pages beyond the faulting one are best-effort.
        let mut recovered = Vec::new();
        for i in 0..count {
            let (bnode, bseg, boff) =
                self.fabric
                    .resolve_owed(&self.ports, &self.segs, seg, offset + i)?;
            if bnode != dead {
                break;
            }
            match self.fabric.disk_recover(bnode, bseg, boff, 1) {
                Some(mut f) => recovered.push(f.remove(0)),
                None => break,
            }
        }
        if !recovered.is_empty() {
            let n = recovered.len() as u64;
            self.clock.advance(
                self.costs.disk_service
                    + self.costs.map_in
                    + self.costs.map_in_extra.saturating_mul(n - 1),
            );
            let now = self.clock.now();
            self.fabric.ledger.record(
                now,
                cor_mem::PAGE_SIZE * n,
                cor_sim::LedgerCategory::Drain,
            );
            let mut installed = 0u64;
            {
                let nd = self.node_mut(node)?;
                let process = nd
                    .processes
                    .get_mut(&pid)
                    .ok_or(KernelError::UnknownProcess(pid))?;
                for (i, frame) in recovered.into_iter().enumerate() {
                    let target = page.offset(i as u64);
                    if matches!(
                        process.space.page_state(target),
                        Some(PageState::Imaginary { .. })
                    ) {
                        process
                            .space
                            .satisfy_imaginary_frame(target, frame, &mut nd.disk)?;
                        installed += 1;
                    }
                }
                process.stats.imag_faults += 1;
            }
            self.fabric.reliability.pages_recovered.add(installed);
            if installed > 0 {
                self.fabric.release_refs(
                    &mut self.clock,
                    &mut self.ports,
                    &mut self.segs,
                    node,
                    seg,
                    installed,
                )?;
                self.settle()?;
            }
            self.note(|| TraceEvent::Recover {
                pid: pid.0,
                node,
                pages: installed,
                seg: seg.0,
                dead,
            });
            return Ok(installed);
        }
        // Rung 2: the faulting page is unrecoverable. Tally every owed
        // page this process will never see, then terminate it cleanly.
        let lost = self.count_lost_pages(node, pid, dead)?;
        self.fabric.reliability.pages_lost.add(lost);
        self.note(|| TraceEvent::Orphan {
            pid: pid.0,
            node,
            dead,
            lost,
        });
        self.terminate(node, pid)?;
        Err(KernelError::OrphanedProcess {
            pid,
            node: dead,
            lost_pages: lost,
        })
    }

    /// Owed pages of `pid` that resolve to `dead` and are not on its disk
    /// backer: data that no rung of the recovery ladder can produce.
    pub(crate) fn count_lost_pages(
        &self,
        node: NodeId,
        pid: ProcessId,
        dead: NodeId,
    ) -> Result<u64, KernelError> {
        let process = self.process(node, pid)?;
        let mut lost = 0;
        for (_, state) in process.space.materialized_pages() {
            if let PageState::Imaginary { seg, offset } = state {
                if self.segs.get(*seg).is_none() {
                    continue;
                }
                let (bnode, bseg, boff) =
                    self.fabric
                        .resolve_owed(&self.ports, &self.segs, *seg, *offset)?;
                if bnode == dead
                    && !self.fabric.disk_has(bnode, bseg, boff)
                    && !self.fabric.replica_live_elsewhere(bnode, bseg, boff)
                {
                    lost += 1;
                }
            }
        }
        Ok(lost)
    }

    /// A *kernel-context* read of process memory (paper §2.3): the caller
    /// holds the system critical section, so touching a port-backed
    /// (imaginary) page would deadlock — the backer could never execute
    /// the `Receive` needed to answer the fault. The accessibility map is
    /// consulted first and the read is refused, not deadlocked, when the
    /// range is distantly accessible. FillZero and disk faults are safe
    /// and serviced inline.
    ///
    /// # Errors
    ///
    /// [`KernelError::WouldDeadlock`] for ImagMem ranges;
    /// [`KernelError::AddressingViolation`] for BadMem; otherwise the
    /// usual failures.
    pub fn kernel_peek(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        addr: VAddr,
        len: u64,
    ) -> Result<Vec<u8>, KernelError> {
        let range = PageRange::covering(addr, len);
        let access = {
            let process = self.process(node, pid)?;
            process.space.amap().max_access_in(range)
        };
        match access {
            cor_mem::amap::Access::Imag => return Err(KernelError::WouldDeadlock { pid, addr }),
            cor_mem::amap::Access::Bad => {
                return Err(KernelError::AddressingViolation { pid, addr })
            }
            _ => {}
        }
        for page in range.iter() {
            self.ensure_ready(node, pid, page, false)?;
        }
        let process = self.process(node, pid)?;
        let mut buf = vec![0u8; len as usize];
        process.space.read(addr, &mut buf)?;
        Ok(buf)
    }
}
