//! Kernel-side service times, calibrated against the paper.
//!
//! Together with [`cor_net::WireParams`] these constants reproduce the
//! paper's measured fault costs:
//!
//! * local disk fault = `fault_dispatch + disk_service + map_in`
//!   = 2 + 38 + 0.8 = **40.8 ms** (paper §4.3.3);
//! * remote imaginary fault ≈ dispatch + local hop to the stand-in
//!   backer + NMS forwarding + request/reply wire time + map-in
//!   ≈ **115 ms** (§4.3.3: "roughly 2.8 times more expensive" than disk).
//!
//! The excision/insertion models follow the structure of Table 4-4:
//! AMap construction cost grows with the number of map entries the kernel
//! must walk (the paper blames "the complex process map organization" and
//! the "lazy update algorithm" that forces table searches); RIMAS collapse
//! cost is dominated by memory-mapping the *resident* pages into the
//! message (which is why Lisp's huge-but-mostly-paged-out space collapses
//! faster than PM-End's smaller, more-resident one); insertion cost grows
//! with the number of runs to re-map plus a smaller per-page charge for
//! physically carried data.

use cor_sim::SimDuration;

/// Kernel service-time constants.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fault detection and Pager/Scheduler dispatch.
    pub fault_dispatch: SimDuration,
    /// Zero-filling a fresh frame (FillZero service; the disk is never
    /// consulted).
    pub fill_zero_service: SimDuration,
    /// Local disk read/write service.
    pub disk_service: SimDuration,
    /// Entering the new page mapping and resuming the faulter.
    pub map_in: SimDuration,
    /// Additional map-in work per extra (prefetched) page in a reply.
    pub map_in_extra: SimDuration,
    /// A user-level backer's service time per read request.
    pub backer_service: SimDuration,
    /// Drawing one screen update (Chess's clock tick, Lisp-Del's graphics).
    pub screen_update: SimDuration,
    /// Fixed part of AMap construction.
    pub amap_base: SimDuration,
    /// AMap construction per map entry walked (materialized pages +
    /// validated regions).
    pub amap_per_entry: SimDuration,
    /// Fixed part of the RIMAS collapse.
    pub rimas_base: SimDuration,
    /// RIMAS collapse per resident page (memory-mapped into the message).
    pub rimas_per_resident_page: SimDuration,
    /// RIMAS collapse per non-resident real page (disk mapping transferred
    /// by reference).
    pub rimas_per_real_page: SimDuration,
    /// Gathering microstate, kernel stack, PCB and rights.
    pub excise_fixed: SimDuration,
    /// Fixed part of `InsertProcess`.
    pub insert_base: SimDuration,
    /// Insertion cost per address-space run re-mapped.
    pub insert_per_run: SimDuration,
    /// Insertion cost per physically carried page installed.
    pub insert_per_page: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fault_dispatch: SimDuration::from_millis(2),
            fill_zero_service: SimDuration::from_micros(1_500),
            disk_service: SimDuration::from_millis(38),
            map_in: SimDuration::from_micros(800),
            map_in_extra: SimDuration::from_micros(100),
            backer_service: SimDuration::from_millis(1),
            screen_update: SimDuration::from_millis(15),
            amap_base: SimDuration::from_millis(250),
            amap_per_entry: SimDuration::from_micros(450),
            rimas_base: SimDuration::from_millis(180),
            rimas_per_resident_page: SimDuration::from_micros(1_300),
            rimas_per_real_page: SimDuration::from_micros(20),
            excise_fixed: SimDuration::from_millis(30),
            insert_base: SimDuration::from_millis(250),
            insert_per_run: SimDuration::from_millis(1),
            insert_per_page: SimDuration::from_micros(100),
        }
    }
}

impl CostModel {
    /// Total service time of a FillZero fault.
    pub fn fill_zero_fault(&self) -> SimDuration {
        self.fault_dispatch + self.fill_zero_service + self.map_in
    }

    /// Total service time of a local disk fault.
    pub fn disk_fault(&self) -> SimDuration {
        self.fault_dispatch + self.disk_service + self.map_in
    }

    /// AMap construction time for a space of `map_entries` entries.
    pub fn amap_cost(&self, map_entries: u64) -> SimDuration {
        self.amap_base + self.amap_per_entry.saturating_mul(map_entries)
    }

    /// RIMAS collapse time.
    pub fn rimas_cost(&self, resident_pages: u64, real_pages: u64) -> SimDuration {
        self.rimas_base
            + self.rimas_per_resident_page.saturating_mul(resident_pages)
            + self
                .rimas_per_real_page
                .saturating_mul(real_pages.saturating_sub(resident_pages))
    }

    /// `InsertProcess` time for a context of `runs` address-space runs of
    /// which `carried_pages` arrive physically.
    pub fn insert_cost(&self, runs: u64, carried_pages: u64) -> SimDuration {
        self.insert_base
            + self.insert_per_run.saturating_mul(runs)
            + self.insert_per_page.saturating_mul(carried_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_fault_matches_paper() {
        let c = CostModel::default();
        assert_eq!(c.disk_fault(), SimDuration::from_micros(40_800));
    }

    #[test]
    fn fill_zero_is_far_cheaper_than_disk() {
        let c = CostModel::default();
        assert!(c.fill_zero_fault() * 9 < c.disk_fault());
    }

    #[test]
    fn amap_cost_scales_with_map_entries() {
        let c = CostModel::default();
        // Minprog-sized (≈280 entries) vs Lisp-sized (≈4300 entries):
        // the paper measures 0.37 s vs 2.12–2.46 s (Table 4-4).
        let small = c.amap_cost(280).as_secs_f64();
        let big = c.amap_cost(4_300).as_secs_f64();
        assert!((0.3..0.5).contains(&small), "got {small}");
        assert!((1.9..2.6).contains(&big), "got {big}");
    }

    #[test]
    fn rimas_cost_is_resident_dominated() {
        let c = CostModel::default();
        // Lisp: 4300 real pages but only ~372 resident -> cheaper collapse
        // than PM-End's 961 real / ~590 resident (paper: 0.59 s vs 0.94 s).
        let lisp = c.rimas_cost(372, 4_300).as_secs_f64();
        let pm_end = c.rimas_cost(590, 961).as_secs_f64();
        assert!(lisp < pm_end, "lisp {lisp} vs pm_end {pm_end}");
        assert!((0.5..0.9).contains(&lisp), "got {lisp}");
        assert!((0.8..1.1).contains(&pm_end), "got {pm_end}");
    }

    #[test]
    fn insert_cost_range_matches_paper() {
        let c = CostModel::default();
        // Paper: 263 ms (Minprog) to 853 ms (Lisp-Del), factor 3.3.
        let minprog = c.insert_cost(10, 0).as_secs_f64();
        let lisp = c.insert_cost(600, 0).as_secs_f64();
        assert!((0.2..0.35).contains(&minprog), "got {minprog}");
        assert!((0.7..0.95).contains(&lisp), "got {lisp}");
    }
}
