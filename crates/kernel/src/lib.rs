//! The node/kernel model: processes, the pager/scheduler, and the world.
//!
//! This crate assembles the substrates (`cor-mem`, `cor-ipc`, `cor-net`)
//! into a runnable simulated distributed system:
//!
//! * [`costs::CostModel`] — every kernel-side service time, calibrated from
//!   the paper (40.8 ms local disk fault, ≈115 ms remote imaginary fault,
//!   the excision/insertion cost structure of Table 4-4; derivations in
//!   DESIGN.md §5).
//! * [`program`] — processes are driven by deterministic traces of
//!   [`program::Op`]s (touch memory, compute, update the screen,
//!   terminate). Write-touches store deterministic values so that trials
//!   can verify, byte for byte, that migration moved the right data.
//! * [`process::Process`] — the five Accent context components of §3.1:
//!   microengine state, kernel stack, PCB, port rights, address space.
//! * [`World`] — the simulated testbed: a set of [`node::Node`]s joined by
//!   a [`cor_net::Fabric`], a global clock, and the **Pager/Scheduler**
//!   fault loop ([`World::touch`]) that services FillZero faults by zero
//!   filling, disk faults from the local disk, and imaginary faults by a
//!   full IPC round trip to the segment's backing port — with optional
//!   prefetch of adjacent pages, the paper's key tunable.
//!
//! User-level backers (like the MigrationManager when it actively manages
//! an excised address space) plug in through the [`backer::PageStore`]
//! trait.
//!
//! **Crash tolerance.** [`World::residual_dependencies`] names the nodes
//! a migrated process still owes pages from (through multi-hop stand-in
//! chains); [`World::drain_round`] shrinks that set in the background
//! under a [`DrainPolicy`] (wire prefetch or flush-to-disk); and when a
//! dependency *does* crash, the imaginary-fault path climbs a recovery
//! ladder — the crashed node's crash-survivable disk backer first, then
//! clean orphan termination surfacing
//! [`KernelError::OrphanedProcess`] — never a panic or a hang.

pub mod backer;
pub mod costs;
pub mod error;
pub mod node;
pub mod exec;
pub mod pager;
pub mod placement;
pub mod process;
pub mod program;
pub mod recovery;
pub mod runtime;
pub mod world;

pub use backer::PageStore;
pub use costs::CostModel;
pub use error::KernelError;
pub use node::Node;
pub use placement::{LeastLoaded, LocalityAware, Placement, PlacementCtx, RoundRobin};
pub use process::{ExecStats, Pcb, Process, ProcessId, RunStatus};
pub use program::{Op, Trace};
pub use runtime::RuntimeKind;
pub use world::{DrainMode, DrainPolicy, ExecReport, World, FABRIC_SPAN_BASE};
