//! The Pager/Scheduler: the fault loop of §3.2.
//!
//! Split out of `world.rs` by the actor-runtime refactor: this module
//! owns the per-node memory-touch path — zero-fill and disk faults
//! serviced locally, imaginary faults by a full IPC round trip to the
//! segment's backing port (with optional prefetch, replica failover,
//! and the batched/coalesced hot path).

use cor_ipc::protocol::{self, ProtocolMsg};
use cor_ipc::NodeId;
use cor_mem::space::SegmentId;
use cor_mem::{Fault, PageNum, PageRange, PageState, VAddr};
use cor_sim::SimTime;
use cor_trace::TraceEvent;

use crate::error::KernelError;
use crate::process::ProcessId;
use crate::program::write_pattern;
use crate::world::World;

impl World {
    // ----- the Pager/Scheduler ---------------------------------------------

    /// Makes `[addr, addr+len)` of `pid` accessible (servicing any faults)
    /// and performs the touch. Write-touches store the deterministic
    /// [`write_pattern`] for `op_index`.
    ///
    /// # Errors
    ///
    /// Addressing violations, broken backing chains, or internal state
    /// errors.
    pub fn touch(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        addr: VAddr,
        len: u64,
        write: bool,
        op_index: usize,
    ) -> Result<(), KernelError> {
        let range = PageRange::covering(addr, len);
        let end = addr.0 + len;
        for page in range.iter() {
            self.ensure_ready(node, pid, page, write)?;
            self.note_touch(node, pid, page)?;
            // Move this page's slice of the data immediately — a touch
            // spanning more pages than the frame budget would otherwise
            // evict earlier pages before the access completes (thrashing
            // is re-faulting, not failing).
            let chunk_start = addr.0.max(page.base().0);
            let chunk_end = end.min(page.offset(1).base().0);
            let chunk_len = (chunk_end - chunk_start) as usize;
            let process = self.process_mut(node, pid)?;
            if write {
                let data: Vec<u8> = (0..chunk_len as u64)
                    .map(|i| write_pattern(VAddr(chunk_start + i), op_index))
                    .collect();
                process.space.write(VAddr(chunk_start), &data)?;
            } else {
                let mut scratch = vec![0u8; chunk_len];
                process.space.read(VAddr(chunk_start), &mut scratch)?;
            }
        }
        Ok(())
    }

    pub(crate) fn ensure_ready(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        write: bool,
    ) -> Result<(), KernelError> {
        for _ in 0..8 {
            let fault = {
                let process = self.process_mut(node, pid)?;
                let res = if write {
                    process.space.check_write(page)
                } else {
                    process.space.check_read(page)
                };
                match res {
                    Ok(()) => return Ok(()),
                    Err(f) => f,
                }
            };
            self.handle_fault(node, pid, fault)?;
        }
        Err(KernelError::Mem(cor_mem::MemError::BadState(
            page,
            "page still faulting after repeated service",
        )))
    }

    pub(crate) fn handle_fault(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        fault: Fault,
    ) -> Result<(), KernelError> {
        match fault {
            Fault::FillZero { page } => {
                let span = self.span_enter(fault.name(), Some(node));
                self.clock.advance(self.costs.fill_zero_fault());
                let n = self.node_mut(node)?;
                let process = n
                    .processes
                    .get_mut(&pid)
                    .ok_or(KernelError::UnknownProcess(pid))?;
                process.space.fill_zero(page, &mut n.disk)?;
                process.stats.zero_faults += 1;
                self.note(|| TraceEvent::FillZero {
                    pid: pid.0,
                    node,
                    page: page.0,
                });
                self.span_exit(span);
                Ok(())
            }
            Fault::DiskIn { page, .. } => {
                let span = self.span_enter(fault.name(), Some(node));
                self.clock.advance(self.costs.disk_fault());
                let n = self.node_mut(node)?;
                let process = n
                    .processes
                    .get_mut(&pid)
                    .ok_or(KernelError::UnknownProcess(pid))?;
                process.space.page_in(page, &mut n.disk)?;
                process.stats.disk_faults += 1;
                self.note(|| TraceEvent::DiskIn {
                    pid: pid.0,
                    node,
                    page: page.0,
                });
                self.span_exit(span);
                Ok(())
            }
            Fault::Imaginary { page, seg, offset } => self
                .handle_imaginary_fault(node, pid, page, seg, offset)
                .map(|_| ()),
            Fault::Addressing { addr } => Err(KernelError::AddressingViolation { pid, addr }),
        }
    }

    /// The copy-on-reference fault path (paper §2.2): an IPC round trip to
    /// the segment's backing port, through the NetMsgServers when the
    /// backer is remote, with `self.prefetch` extra contiguous pages
    /// requested. Returns the number of pages installed.
    ///
    /// When the backing site has crashed the fetch falls through to the
    /// recovery ladder ([`World::crash_recover_or_orphan`]): the crashed
    /// node's disk backer first, clean orphan termination second.
    pub(crate) fn handle_imaginary_fault(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        seg: SegmentId,
        offset: u64,
    ) -> Result<u64, KernelError> {
        // One span per copy-on-reference fault, closed on every exit —
        // recovery-ladder errors included — so a trace is never left with
        // a dangling fault interval.
        let span = self.span_enter("imag-fault", Some(node));
        // Fabric spans opened outside the round trip (replica reads,
        // failover fetches) parent under the fault via the cross-journal
        // hook, which span_enter/span_exit keep synced to the innermost
        // open world span.
        let result = self.imaginary_fault_inner(node, pid, page, seg, offset);
        self.span_exit(span);
        result
    }

    pub(crate) fn imaginary_fault_inner(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        seg: SegmentId,
        offset: u64,
    ) -> Result<u64, KernelError> {
        let fault_start = self.clock.now();
        self.clock.advance(self.costs.fault_dispatch);
        let want = self.prefetch + 1;
        let count = self.contiguous_owed(node, pid, page, seg, offset, want)?;
        // With replicated page homes the fetch is content-addressed: a
        // replica may answer instead of the primary backing site — always
        // when the primary is down, and in Quorum mode also when a replica
        // is simply closer on the topology.
        if self.fabric.params.replication.is_some() {
            if let Some(installed) =
                self.try_replica_read(node, pid, page, seg, offset, count, fault_start)?
            {
                return Ok(installed);
            }
        }
        let pager_port = self.node(node)?.pager_port;
        let backing = self.segs.backing_port(seg)?;
        let seq = self.next_seq();
        let req = protocol::imag_read_request(backing, pager_port, seg, offset, count)
            .with_seq(seq)
            .with_no_ious(true);
        // The round-trip span covers the request send, every relay hop
        // the NetMsgServers serve during the settle, and the reply's
        // journey back. Wire spans opened by the fabric parent under it
        // via the cross-journal hook.
        let rt_span = self.span_enter("cor-roundtrip", Some(node));
        let round_trip = self
            .send_from(node, req)
            .and_then(|_| self.settle())
            .map(|_| ());
        self.span_exit(rt_span);
        if let Err(err) = round_trip {
            return self.crash_recover_or_orphan(node, pid, page, seg, offset, count, err);
        }
        // Drain the pager port until *our* reply appears. Anything else —
        // a reply to an earlier request that was duplicated or delayed on
        // an unreliable wire — is stale: drop it and keep looking
        // (idempotent handling).
        let mut frames = loop {
            let Some(reply) = self.ports.dequeue(pager_port)? else {
                // The queue ran dry without our reply: if the backing site
                // died mid-flight this is recoverable; otherwise it is the
                // old broken-chain error.
                let err = KernelError::NoReply {
                    fault: Fault::Imaginary { page, seg, offset },
                };
                return self.crash_recover_or_orphan(node, pid, page, seg, offset, count, err);
            };
            // Owned parse: the reply's frames move out of the message
            // instead of being cloned.
            match protocol::parse_owned(reply) {
                Ok(ProtocolMsg::ImagReadReply {
                    seg: rseg,
                    offset: roffset,
                    frames,
                    seq: rseq,
                }) if rseg == seg && roffset == offset && (rseq == seq || rseq == 0) => {
                    break frames;
                }
                _ => {
                    self.fabric.reliability.stale_replies.incr();
                    self.note(|| TraceEvent::StaleReply {
                        pid: pid.0,
                        node,
                        seg: seg.0,
                        offset,
                        seq,
                    });
                }
            }
        };
        let mapin_span = self.span_enter("map-in", Some(node));
        self.clock.advance(
            self.costs.map_in
                + self
                    .costs
                    .map_in_extra
                    .saturating_mul(frames.len().saturating_sub(1) as u64),
        );
        let mut installed = 0u64;
        {
            let n = self.node_mut(node)?;
            let process = n
                .processes
                .get_mut(&pid)
                .ok_or(KernelError::UnknownProcess(pid))?;
            // Install the delivered frames by reference count, not by
            // 512-byte snapshot: the page is mapped copy-on-write against
            // the sender's cache, and a later write performs the deferred
            // copy (Accent's own message semantics, paper §2.1).
            for (i, frame) in frames.drain(..).enumerate() {
                let target = page.offset(i as u64);
                if matches!(
                    process.space.page_state(target),
                    Some(PageState::Imaginary { .. })
                ) {
                    process
                        .space
                        .satisfy_imaginary_frame(target, frame, &mut n.disk)?;
                    installed += 1;
                    if i > 0 {
                        process.stats.prefetched_pages += 1;
                        process.stats.prefetch_pending.insert(target);
                    }
                }
            }
            process.stats.imag_faults += 1;
        }
        // The drained reply vector goes back to the scratch pool for the
        // next reply assembly on this thread.
        cor_mem::page::frame_pool::give(frames);
        self.span_exit(mapin_span);
        if installed > 0 {
            self.fabric.release_refs(
                &mut self.clock,
                &mut self.ports,
                &mut self.segs,
                node,
                seg,
                installed,
            )?;
            self.settle()?;
        }
        let service_time = self.clock.now().since(fault_start);
        self.process_mut(node, pid)?
            .stats
            .record_fault_time(service_time);
        self.note(|| TraceEvent::Imaginary {
            pid: pid.0,
            node,
            page: page.0,
            seg: seg.0,
            prefetched: installed.saturating_sub(1),
            service: service_time,
        });
        Ok(installed)
    }

    /// Counts how many pages starting at `page` are still owed by `seg`
    /// with consecutive offsets, clipped to `want` and to the segment
    /// length — the prefetchable run.
    pub(crate) fn contiguous_owed(
        &self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        seg: SegmentId,
        offset: u64,
        want: u64,
    ) -> Result<u64, KernelError> {
        let seg_len = self
            .segs
            .get(seg)
            .map(|s| s.len_pages)
            .ok_or(KernelError::Net(cor_net::NetError::MissingData {
                seg,
                offset,
            }))?;
        let process = self.process(node, pid)?;
        let max = want.min(seg_len.saturating_sub(offset));
        let mut count = 0;
        for i in 0..max {
            match process.space.page_state(page.offset(i)) {
                Some(PageState::Imaginary { seg: s, offset: o })
                    if *s == seg && *o == offset + i =>
                {
                    count += 1;
                }
                _ => break,
            }
        }
        Ok(count.max(1))
    }

    /// Tries to satisfy an owed fetch content-addressed from a replica
    /// page home (see `docs/REPLICATION.md`) instead of the primary
    /// backing site. The fabric decides whether a replica may answer —
    /// always when the primary is down (the failover path, rung 0 of the
    /// recovery ladder), and under [`cor_net::ReplicationMode::Quorum`]
    /// also when a live replica is nearer on the topology. Returns
    /// `Ok(None)` when no replica can or should serve the read; the
    /// caller then proceeds exactly as without replication.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn try_replica_read(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        seg: SegmentId,
        offset: u64,
        count: u64,
        fault_start: SimTime,
    ) -> Result<Option<u64>, KernelError> {
        // A broken chain here is not ours to diagnose: fall through and
        // let the ordinary fetch surface the seed-identical error.
        let Ok((backer, bseg, boff)) =
            self.fabric
                .resolve_owed(&self.ports, &self.segs, seg, offset)
        else {
            return Ok(None);
        };
        if backer == node {
            return Ok(None);
        }
        // Clip the prefetch run to the prefix resolving contiguously to
        // the same terminal home (mirrors the disk-salvage rung).
        let mut run = 1u64;
        while run < count {
            match self
                .fabric
                .resolve_owed(&self.ports, &self.segs, seg, offset + run)
            {
                Ok((n2, s2, o2)) if n2 == backer && s2 == bseg && o2 == boff + run => run += 1,
                _ => break,
            }
        }
        let Some((replica, frames, failover)) =
            self.fabric
                .replica_read(&mut self.clock, node, backer, bseg, boff, run)
        else {
            return Ok(None);
        };
        let mapin_span = self.span_enter("map-in", Some(node));
        self.clock.advance(
            self.costs.map_in
                + self
                    .costs
                    .map_in_extra
                    .saturating_mul(frames.len().saturating_sub(1) as u64),
        );
        let mut installed = 0u64;
        {
            let n = self.node_mut(node)?;
            let process = n
                .processes
                .get_mut(&pid)
                .ok_or(KernelError::UnknownProcess(pid))?;
            for (i, frame) in frames.into_iter().enumerate() {
                let target = page.offset(i as u64);
                if matches!(
                    process.space.page_state(target),
                    Some(PageState::Imaginary { .. })
                ) {
                    process
                        .space
                        .satisfy_imaginary_frame(target, frame, &mut n.disk)?;
                    installed += 1;
                    if i > 0 {
                        process.stats.prefetched_pages += 1;
                        process.stats.prefetch_pending.insert(target);
                    }
                }
            }
            process.stats.imag_faults += 1;
        }
        self.span_exit(mapin_span);
        if installed > 0 {
            self.fabric.release_refs(
                &mut self.clock,
                &mut self.ports,
                &mut self.segs,
                node,
                seg,
                installed,
            )?;
            self.settle()?;
        }
        let service_time = self.clock.now().since(fault_start);
        self.process_mut(node, pid)?
            .stats
            .record_fault_time(service_time);
        self.note(|| TraceEvent::Imaginary {
            pid: pid.0,
            node,
            page: page.0,
            seg: seg.0,
            prefetched: installed.saturating_sub(1),
            service: service_time,
        });
        if failover {
            self.note(|| TraceEvent::Failover {
                pid: pid.0,
                node,
                dead: backer,
                replica,
                pages: installed,
                seg: bseg.0,
            });
        }
        Ok(Some(installed))
    }

    pub(crate) fn note_touch(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
    ) -> Result<(), KernelError> {
        let process = self.process_mut(node, pid)?;
        if process.stats.touched.insert(page) && process.stats.prefetch_pending.remove(&page) {
            process.stats.prefetch_hits += 1;
        }
        Ok(())
    }
}
