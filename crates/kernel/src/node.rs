//! A simulated machine.

use std::collections::BTreeMap;

use cor_ipc::{NodeId, PortId};
use cor_mem::Disk;

use crate::process::{Process, ProcessId};

/// One machine of the testbed: a local disk, a pager service port, and the
/// processes currently homed here. Its NetMsgServer state lives in the
/// world's [`cor_net::Fabric`].
#[derive(Debug)]
pub struct Node {
    /// Identifier.
    pub id: NodeId,
    /// The local paging disk.
    pub disk: Disk,
    /// The Pager/Scheduler's reply port (imaginary read replies arrive
    /// here).
    pub pager_port: PortId,
    /// Processes homed on this node.
    pub processes: BTreeMap<ProcessId, Process>,
}

impl Node {
    /// Creates a node with the given pager port.
    pub fn new(id: NodeId, pager_port: PortId) -> Self {
        Node {
            id,
            disk: Disk::new(),
            pager_port,
            processes: BTreeMap::new(),
        }
    }

    /// Looks up a process.
    pub fn process(&self, pid: ProcessId) -> Option<&Process> {
        self.processes.get(&pid)
    }

    /// Looks up a process mutably.
    pub fn process_mut(&mut self, pid: ProcessId) -> Option<&mut Process> {
        self.processes.get_mut(&pid)
    }
}
