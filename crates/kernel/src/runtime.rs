//! The simulation-runtime knob: global lock-step vs. actor-style
//! per-node runtimes.
//!
//! The seed path drives every world through a centralized lock-step
//! schedule ([`RuntimeKind::Lockstep`]): the experiment driver calls
//! into [`crate::World`] synchronously and the single virtual clock
//! orders everything. [`RuntimeKind::Actor`] routes the same work
//! through per-node event runtimes ([`cor_sim::runtime::NodeRuntime`])
//! and — where a sweep decomposes into independent per-process chains —
//! executes node groups concurrently under conservative synchronization
//! (see `docs/RUNTIME.md`). Both runtimes are required to produce
//! byte-identical paper tables, journals, and ledger totals; the
//! cross-runtime equivalence suite is the oracle.

use std::fmt;

/// Environment variable consulted by [`RuntimeKind::from_env`]
/// (`lockstep` | `actor`), mirroring the experiments binary's
/// `--runtime` flag.
pub const RUNTIME_ENV: &str = "COR_RUNTIME";

/// Which simulation runtime executes a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// The seed path: one centralized loop per world, strictly
    /// sequential on the virtual clock.
    #[default]
    Lockstep,
    /// Actor-style per-node runtimes with a seeded virtual-time
    /// scheduler; independent chains execute in parallel under a
    /// conservative lookahead rule.
    Actor,
}

impl RuntimeKind {
    /// Parses a runtime name as accepted by `--runtime` / [`RUNTIME_ENV`].
    pub fn parse(s: &str) -> Option<RuntimeKind> {
        match s {
            "lockstep" => Some(RuntimeKind::Lockstep),
            "actor" => Some(RuntimeKind::Actor),
            _ => None,
        }
    }

    /// Reads [`RUNTIME_ENV`], defaulting to [`RuntimeKind::Lockstep`];
    /// unknown values also fall back to the default (the seed path is
    /// never silently replaced).
    pub fn from_env() -> RuntimeKind {
        std::env::var(RUNTIME_ENV)
            .ok()
            .and_then(|v| RuntimeKind::parse(&v))
            .unwrap_or_default()
    }

    /// The canonical name (`lockstep` | `actor`).
    pub fn name(self) -> &'static str {
        match self {
            RuntimeKind::Lockstep => "lockstep",
            RuntimeKind::Actor => "actor",
        }
    }
}

impl fmt::Display for RuntimeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_runtimes_and_rejects_junk() {
        assert_eq!(RuntimeKind::parse("lockstep"), Some(RuntimeKind::Lockstep));
        assert_eq!(RuntimeKind::parse("actor"), Some(RuntimeKind::Actor));
        assert_eq!(RuntimeKind::parse("fibers"), None);
        assert_eq!(RuntimeKind::default(), RuntimeKind::Lockstep);
        assert_eq!(RuntimeKind::Actor.to_string(), "actor");
    }
}
