//! The simulated testbed: nodes, the pager/scheduler, and the executor.

use std::collections::{BTreeMap, HashMap};

use cor_ipc::message::Message;
use cor_ipc::port::{PortId, PortRegistry};
use cor_ipc::protocol::{self, ProtocolMsg};
use cor_ipc::segment::SegmentRegistry;
use cor_ipc::NodeId;
use cor_mem::space::SegmentId;
use cor_mem::{AddressSpace, Fault, PageNum, PageRange, PageState, VAddr};
use cor_net::{Fabric, SendReport, WireParams};
use cor_sim::{Clock, JournalLevel, SimDuration, SimTime};
use cor_trace::{Journal, MetricsRegistry, SpanId, TraceEvent};

use crate::backer::PageStore;
use crate::costs::CostModel;
use crate::error::KernelError;
use crate::node::Node;
use crate::process::{Process, ProcessId, RunStatus};
use crate::program::{write_pattern, Op, Trace};

/// Span-id base of the fabric's journal: the world journal mints ids
/// from 1 and the fabric from `FABRIC_SPAN_BASE + 1`, so a merged export
/// of both journals never sees an id collision.
pub const FABRIC_SPAN_BASE: u64 = 1 << 32;

/// Outcome of running a process (or a slice of its trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecReport {
    /// When execution started.
    pub started_at: SimTime,
    /// Virtual time consumed.
    pub elapsed: SimDuration,
    /// Trace ops executed.
    pub ops_executed: usize,
    /// Whether the process terminated.
    pub finished: bool,
}

/// How a background drain round makes owed pages crash-safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainMode {
    /// Pull owed pages across the wire (an ordinary prefetch fetch),
    /// removing the dependency outright. Costs wire traffic.
    Prefetch,
    /// Copy owed pages from the backing site's volatile cache (or
    /// user-level backer) onto that site's crash-survivable disk backer
    /// ("flush to Sesame"). The pages stay owed, but a crash can no
    /// longer lose them. Costs only disk service at the backer.
    FlushToDisk,
}

/// An opt-in background IOU draining policy: each idle round makes up to
/// `pages_per_round` owed pages crash-safe in the chosen [`DrainMode`],
/// monotonically shrinking [`World::residual_dependencies`]. All drain
/// traffic is ledgered under [`cor_sim::LedgerCategory::Drain`] so the
/// paper's byte categories are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainPolicy {
    /// The draining mechanism.
    pub mode: DrainMode,
    /// Page budget per round (zero disables draining).
    pub pages_per_round: u64,
}

impl DrainPolicy {
    /// A prefetch-mode policy.
    pub fn prefetch(pages_per_round: u64) -> Self {
        DrainPolicy {
            mode: DrainMode::Prefetch,
            pages_per_round,
        }
    }

    /// A flush-to-disk policy.
    pub fn flush(pages_per_round: u64) -> Self {
        DrainPolicy {
            mode: DrainMode::FlushToDisk,
            pages_per_round,
        }
    }
}

struct BackerEntry {
    node: NodeId,
    store: Box<dyn PageStore>,
}

/// The simulated distributed system.
///
/// Owns the clock, the global port/segment name services, the network
/// [`Fabric`], every [`Node`], and the registered user-level backers. All
/// experiment drivers and the migration machinery operate through this
/// type.
pub struct World {
    /// The virtual clock.
    pub clock: Clock,
    /// The port name service and queues.
    pub ports: PortRegistry,
    /// The imaginary segment table.
    pub segs: SegmentRegistry,
    /// The network.
    pub fabric: Fabric,
    /// Kernel service times.
    pub costs: CostModel,
    /// Pages to prefetch per imaginary fault (the paper studies
    /// 0, 1, 3, 7, 15).
    pub prefetch: u64,
    /// Optional structured event log with causal spans. Install with
    /// [`World::enable_journal`]; recording is skipped entirely when
    /// absent.
    pub journal: Option<Journal>,
    nodes: BTreeMap<NodeId, Node>,
    backers: BTreeMap<PortId, BackerEntry>,
    next_pid: u64,
    next_node: u32,
    /// Monotonic sequence stamp for pager read requests; replies echo it
    /// so stale or duplicated responses can be recognised and dropped.
    next_seq: u64,
}

impl World {
    /// Creates an empty world with the given cost models.
    pub fn new(costs: CostModel, wire: WireParams) -> Self {
        World {
            clock: Clock::new(),
            ports: PortRegistry::new(),
            segs: SegmentRegistry::new(),
            fabric: Fabric::new(wire),
            costs,
            prefetch: 0,
            journal: None,
            nodes: BTreeMap::new(),
            backers: BTreeMap::new(),
            next_pid: 0,
            next_node: 0,
            next_seq: 0,
        }
    }

    /// A two-node world with default parameters — the shape of the paper's
    /// testbed.
    pub fn testbed() -> (World, NodeId, NodeId) {
        let mut w = World::new(CostModel::default(), WireParams::default());
        let a = w.add_node();
        let b = w.add_node();
        (w, a, b)
    }

    /// An `n`-node world: the fleet-scale sibling of [`World::testbed`].
    /// Node ids are sequential from zero, so they index a
    /// [`cor_net::Topology`] of the same size directly. Returns the world
    /// and its node ids in order.
    pub fn fleet(n: u32, costs: CostModel, wire: WireParams) -> (World, Vec<NodeId>) {
        let mut w = World::new(costs, wire);
        let nodes = (0..n).map(|_| w.add_node()).collect();
        (w, nodes)
    }

    /// Installs (or resets) the event journal; subsequent faults, sends
    /// and lifecycle transitions are recorded. The fabric gets its own
    /// journal for wire-level fault-injection events (`net-*` kinds) and
    /// wire spans; its span ids start at [`FABRIC_SPAN_BASE`] so merged
    /// exports of the two journals stay globally unique.
    pub fn enable_journal(&mut self) {
        self.enable_journal_at(JournalLevel::Full);
    }

    /// Installs (or resets) the event journal at a chosen recording level.
    /// At [`JournalLevel::Off`] the journals stay installed but mute:
    /// every `record_with` call returns before the event is even
    /// constructed, so instrumented hot paths cost one branch. At
    /// [`JournalLevel::Summary`] only lifecycle milestones are kept.
    pub fn enable_journal_at(&mut self, level: JournalLevel) {
        self.journal = Some(Journal::with_level_and_base(level, 0));
        self.fabric.journal = Some(Journal::with_level_and_base(level, FABRIC_SPAN_BASE));
    }

    /// The two journals as a named slice for the exporters in
    /// [`cor_trace::export`], world first; empty entries are omitted.
    pub fn journals(&self) -> Vec<(&'static str, &Journal)> {
        let mut js = Vec::new();
        if let Some(j) = &self.journal {
            js.push(("world", j));
        }
        if let Some(j) = &self.fabric.journal {
            js.push(("fabric", j));
        }
        js
    }

    /// Builds a per-node metrics snapshot as of the current instant:
    /// fault and prefetch counters per node, message-handling CPU, the
    /// wire ledger's byte categories and reliability counters on the
    /// global `wire` pseudo-node, and (when journals are installed)
    /// latency histograms for every closed span by name. Rebuildable at
    /// any time; deterministic rendering via
    /// [`MetricsRegistry::render`].
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let now = self.clock.now();
        let mut reg = MetricsRegistry::new();
        for (&id, n) in &self.nodes {
            for p in n.processes.values() {
                let s = &p.stats;
                let pairs = [
                    ("faults.imaginary", s.imag_faults),
                    ("faults.disk", s.disk_faults),
                    ("faults.zero", s.zero_faults),
                    ("prefetch.pages", s.prefetched_pages),
                    ("prefetch.hits", s.prefetch_hits),
                    ("pages.touched", s.touched.len() as u64),
                    ("exec.screen-updates", s.screen_updates),
                ];
                for (name, v) in pairs {
                    if v > 0 {
                        reg.counter_add(Some(id), name, v);
                    }
                }
            }
            let cpu = self.fabric.node_cpu(id);
            if cpu > SimDuration::ZERO {
                reg.counter_add(Some(id), "cpu.msg-handling-us", cpu.as_micros());
            }
        }
        reg.ingest_ledger(&self.fabric.ledger, now);
        reg.ingest_reliability(&self.fabric.reliability);
        if let Some(j) = &self.journal {
            reg.ingest_spans(j, now);
        }
        if let Some(j) = &self.fabric.journal {
            reg.ingest_spans(j, now);
        }
        reg
    }

    /// The next pager request sequence number (monotonic, never zero).
    fn next_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Records a journal event if a journal is installed. The event is
    /// built lazily so disabled journals cost one branch.
    pub fn note(&mut self, event: impl FnOnce() -> TraceEvent) {
        if let Some(j) = &mut self.journal {
            let at = self.clock.now();
            j.record_with(at, event);
        }
    }

    /// Opens a fine-grained causal span at the current instant (recorded
    /// only at [`JournalLevel::Full`]). Close with [`World::span_exit`];
    /// the returned id is [`SpanId::NONE`] (a no-op to close) when muted.
    pub fn span_enter(&mut self, name: &'static str, node: Option<NodeId>) -> SpanId {
        match &mut self.journal {
            Some(j) => j.span_start(self.clock.now(), name, node),
            None => SpanId::NONE,
        }
    }

    /// Opens a milestone span (recorded at [`JournalLevel::Summary`] and
    /// above): migration phases and scheduling slices.
    pub fn span_enter_milestone(&mut self, name: &'static str, node: Option<NodeId>) -> SpanId {
        match &mut self.journal {
            Some(j) => j.milestone_span_start(self.clock.now(), name, node),
            None => SpanId::NONE,
        }
    }

    /// Closes a span opened by [`World::span_enter`] at the current
    /// instant; still-open children close with it.
    pub fn span_exit(&mut self, id: SpanId) {
        if let Some(j) = &mut self.journal {
            j.span_end(self.clock.now(), id);
        }
    }

    /// Adds a machine (starting its NetMsgServer and pager).
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.fabric.add_node(id, &mut self.ports);
        let pager_port = self.ports.allocate(id);
        self.nodes.insert(id, Node::new(id, pager_port));
        id
    }

    /// Borrows a node.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn node(&self, id: NodeId) -> Result<&Node, KernelError> {
        self.nodes.get(&id).ok_or(KernelError::UnknownNode(id))
    }

    /// Borrows a node mutably.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, KernelError> {
        self.nodes.get_mut(&id).ok_or(KernelError::UnknownNode(id))
    }

    /// Creates a process on `node` from a prepared space and trace.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn create_process(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        space: AddressSpace,
        trace: Trace,
    ) -> Result<ProcessId, KernelError> {
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        let process = Process::new(pid, name, space, trace);
        self.node_mut(node)?.processes.insert(pid, process);
        Ok(pid)
    }

    /// Borrows a process.
    ///
    /// # Errors
    ///
    /// Unknown node or process.
    pub fn process(&self, node: NodeId, pid: ProcessId) -> Result<&Process, KernelError> {
        self.node(node)?
            .process(pid)
            .ok_or(KernelError::UnknownProcess(pid))
    }

    /// Borrows a process mutably.
    ///
    /// # Errors
    ///
    /// Unknown node or process.
    pub fn process_mut(
        &mut self,
        node: NodeId,
        pid: ProcessId,
    ) -> Result<&mut Process, KernelError> {
        self.node_mut(node)?
            .process_mut(pid)
            .ok_or(KernelError::UnknownProcess(pid))
    }

    /// Removes a process from its node (excision uses this).
    ///
    /// # Errors
    ///
    /// Unknown node or process.
    pub fn remove_process(&mut self, node: NodeId, pid: ProcessId) -> Result<Process, KernelError> {
        self.node_mut(node)?
            .processes
            .remove(&pid)
            .ok_or(KernelError::UnknownProcess(pid))
    }

    /// Installs an existing process structure on `node` (insertion uses
    /// this).
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn install_process(&mut self, node: NodeId, process: Process) -> Result<(), KernelError> {
        self.node_mut(node)?.processes.insert(process.id, process);
        Ok(())
    }

    /// Registers a user-level backer: messages arriving on `port` are
    /// served from `store` by [`World::settle`].
    pub fn register_backer(&mut self, port: PortId, node: NodeId, store: Box<dyn PageStore>) {
        self.backers.insert(port, BackerEntry { node, store });
    }

    /// Unregisters a backer and returns its store.
    pub fn take_backer(&mut self, port: PortId) -> Option<Box<dyn PageStore>> {
        self.backers.remove(&port).map(|e| e.store)
    }

    /// Pages currently held by registered user-level backers.
    pub fn backer_pages_held(&self) -> u64 {
        self.backers.values().map(|e| e.store.pages_held()).sum()
    }

    /// Sends a message on behalf of `node`.
    ///
    /// # Errors
    ///
    /// Network failures.
    pub fn send_from(&mut self, node: NodeId, msg: Message) -> Result<SendReport, KernelError> {
        let kind = msg.kind;
        let report =
            self.fabric
                .send(&mut self.clock, &mut self.ports, &mut self.segs, node, msg)?;
        if report.remote {
            self.note(|| TraceEvent::Send {
                kind,
                from: node,
                wire_bytes: report.wire_bytes,
            });
        }
        Ok(report)
    }

    /// Drives the system to quiescence: pumps every NetMsgServer and
    /// services every registered user-level backer until no queued work
    /// remains. Returns the number of messages processed.
    ///
    /// # Errors
    ///
    /// Network failures or unexpected messages on backing ports.
    pub fn settle(&mut self) -> Result<usize, KernelError> {
        let mut processed = 0;
        loop {
            let pumped = self
                .fabric
                .pump(&mut self.clock, &mut self.ports, &mut self.segs)?;
            let served = self.service_backers()?;
            processed += pumped + served;
            if pumped + served == 0 {
                return Ok(processed);
            }
        }
    }

    fn service_backers(&mut self) -> Result<usize, KernelError> {
        let ports_list: Vec<PortId> = self.backers.keys().copied().collect();
        let mut served = 0;
        for port in ports_list {
            while let Some(msg) = self.ports.dequeue(port)? {
                served += 1;
                // Temporarily take the entry so `self` can be re-borrowed
                // for sending the reply.
                let mut entry = self
                    .backers
                    .remove(&port)
                    .expect("backer disappeared while being served");
                let result = self.serve_backer_msg(port, &mut entry, &msg);
                self.backers.insert(port, entry);
                result?;
            }
        }
        Ok(served)
    }

    fn serve_backer_msg(
        &mut self,
        port: PortId,
        entry: &mut BackerEntry,
        msg: &Message,
    ) -> Result<(), KernelError> {
        match protocol::parse(msg) {
            Some(ProtocolMsg::ImagReadRequest {
                seg,
                offset,
                count,
                reply,
                seq,
            }) => {
                self.clock.advance(self.costs.backer_service);
                let frames = entry
                    .store
                    .fetch(seg, offset, count)
                    .ok_or(KernelError::Net(cor_net::NetError::MissingData {
                        seg,
                        offset,
                    }))?;
                // Echo the request's sequence number so the faulter can
                // pair the reply with its request.
                let reply_msg = protocol::imag_read_reply(reply, seg, offset, frames)
                    .with_seq(seq)
                    .with_no_ious(true);
                self.send_from(entry.node, reply_msg)?;
                Ok(())
            }
            Some(ProtocolMsg::ImagSegmentDeath { seg }) => {
                entry.store.death(seg);
                Ok(())
            }
            _ => Err(KernelError::UnexpectedMessage { port }),
        }
    }

    // ----- the Pager/Scheduler ---------------------------------------------

    /// Makes `[addr, addr+len)` of `pid` accessible (servicing any faults)
    /// and performs the touch. Write-touches store the deterministic
    /// [`write_pattern`] for `op_index`.
    ///
    /// # Errors
    ///
    /// Addressing violations, broken backing chains, or internal state
    /// errors.
    pub fn touch(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        addr: VAddr,
        len: u64,
        write: bool,
        op_index: usize,
    ) -> Result<(), KernelError> {
        let range = PageRange::covering(addr, len);
        let end = addr.0 + len;
        for page in range.iter() {
            self.ensure_ready(node, pid, page, write)?;
            self.note_touch(node, pid, page)?;
            // Move this page's slice of the data immediately — a touch
            // spanning more pages than the frame budget would otherwise
            // evict earlier pages before the access completes (thrashing
            // is re-faulting, not failing).
            let chunk_start = addr.0.max(page.base().0);
            let chunk_end = end.min(page.offset(1).base().0);
            let chunk_len = (chunk_end - chunk_start) as usize;
            let process = self.process_mut(node, pid)?;
            if write {
                let data: Vec<u8> = (0..chunk_len as u64)
                    .map(|i| write_pattern(VAddr(chunk_start + i), op_index))
                    .collect();
                process.space.write(VAddr(chunk_start), &data)?;
            } else {
                let mut scratch = vec![0u8; chunk_len];
                process.space.read(VAddr(chunk_start), &mut scratch)?;
            }
        }
        Ok(())
    }

    fn ensure_ready(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        write: bool,
    ) -> Result<(), KernelError> {
        for _ in 0..8 {
            let fault = {
                let process = self.process_mut(node, pid)?;
                let res = if write {
                    process.space.check_write(page)
                } else {
                    process.space.check_read(page)
                };
                match res {
                    Ok(()) => return Ok(()),
                    Err(f) => f,
                }
            };
            self.handle_fault(node, pid, fault)?;
        }
        Err(KernelError::Mem(cor_mem::MemError::BadState(
            page,
            "page still faulting after repeated service",
        )))
    }

    fn handle_fault(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        fault: Fault,
    ) -> Result<(), KernelError> {
        match fault {
            Fault::FillZero { page } => {
                let span = self.span_enter(fault.name(), Some(node));
                self.clock.advance(self.costs.fill_zero_fault());
                let n = self.node_mut(node)?;
                let process = n
                    .processes
                    .get_mut(&pid)
                    .ok_or(KernelError::UnknownProcess(pid))?;
                process.space.fill_zero(page, &mut n.disk)?;
                process.stats.zero_faults += 1;
                self.note(|| TraceEvent::FillZero {
                    pid: pid.0,
                    node,
                    page: page.0,
                });
                self.span_exit(span);
                Ok(())
            }
            Fault::DiskIn { page, .. } => {
                let span = self.span_enter(fault.name(), Some(node));
                self.clock.advance(self.costs.disk_fault());
                let n = self.node_mut(node)?;
                let process = n
                    .processes
                    .get_mut(&pid)
                    .ok_or(KernelError::UnknownProcess(pid))?;
                process.space.page_in(page, &mut n.disk)?;
                process.stats.disk_faults += 1;
                self.note(|| TraceEvent::DiskIn {
                    pid: pid.0,
                    node,
                    page: page.0,
                });
                self.span_exit(span);
                Ok(())
            }
            Fault::Imaginary { page, seg, offset } => self
                .handle_imaginary_fault(node, pid, page, seg, offset)
                .map(|_| ()),
            Fault::Addressing { addr } => Err(KernelError::AddressingViolation { pid, addr }),
        }
    }

    /// The copy-on-reference fault path (paper §2.2): an IPC round trip to
    /// the segment's backing port, through the NetMsgServers when the
    /// backer is remote, with `self.prefetch` extra contiguous pages
    /// requested. Returns the number of pages installed.
    ///
    /// When the backing site has crashed the fetch falls through to the
    /// recovery ladder ([`World::crash_recover_or_orphan`]): the crashed
    /// node's disk backer first, clean orphan termination second.
    fn handle_imaginary_fault(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        seg: SegmentId,
        offset: u64,
    ) -> Result<u64, KernelError> {
        // One span per copy-on-reference fault, closed on every exit —
        // recovery-ladder errors included — so a trace is never left with
        // a dangling fault interval.
        let span = self.span_enter("imag-fault", Some(node));
        let result = self.imaginary_fault_inner(node, pid, page, seg, offset);
        self.span_exit(span);
        result
    }

    fn imaginary_fault_inner(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        seg: SegmentId,
        offset: u64,
    ) -> Result<u64, KernelError> {
        let fault_start = self.clock.now();
        self.clock.advance(self.costs.fault_dispatch);
        let want = self.prefetch + 1;
        let count = self.contiguous_owed(node, pid, page, seg, offset, want)?;
        // With replicated page homes the fetch is content-addressed: a
        // replica may answer instead of the primary backing site — always
        // when the primary is down, and in Quorum mode also when a replica
        // is simply closer on the topology.
        if self.fabric.params.replication.is_some() {
            if let Some(installed) =
                self.try_replica_read(node, pid, page, seg, offset, count, fault_start)?
            {
                return Ok(installed);
            }
        }
        let pager_port = self.node(node)?.pager_port;
        let backing = self.segs.backing_port(seg)?;
        let seq = self.next_seq();
        let req = protocol::imag_read_request(backing, pager_port, seg, offset, count)
            .with_seq(seq)
            .with_no_ious(true);
        // The round-trip span covers the request send, every relay hop
        // the NetMsgServers serve during the settle, and the reply's
        // journey back. Wire spans opened by the fabric parent under it
        // via the cross-journal hook.
        let rt_span = self.span_enter("cor-roundtrip", Some(node));
        self.fabric.set_trace_parent(rt_span);
        let round_trip = self
            .send_from(node, req)
            .and_then(|_| self.settle())
            .map(|_| ());
        self.fabric.set_trace_parent(SpanId::NONE);
        self.span_exit(rt_span);
        if let Err(err) = round_trip {
            return self.crash_recover_or_orphan(node, pid, page, seg, offset, count, err);
        }
        // Drain the pager port until *our* reply appears. Anything else —
        // a reply to an earlier request that was duplicated or delayed on
        // an unreliable wire — is stale: drop it and keep looking
        // (idempotent handling).
        let mut frames = loop {
            let Some(reply) = self.ports.dequeue(pager_port)? else {
                // The queue ran dry without our reply: if the backing site
                // died mid-flight this is recoverable; otherwise it is the
                // old broken-chain error.
                let err = KernelError::NoReply {
                    fault: Fault::Imaginary { page, seg, offset },
                };
                return self.crash_recover_or_orphan(node, pid, page, seg, offset, count, err);
            };
            // Owned parse: the reply's frames move out of the message
            // instead of being cloned.
            match protocol::parse_owned(reply) {
                Ok(ProtocolMsg::ImagReadReply {
                    seg: rseg,
                    offset: roffset,
                    frames,
                    seq: rseq,
                }) if rseg == seg && roffset == offset && (rseq == seq || rseq == 0) => {
                    break frames;
                }
                _ => {
                    self.fabric.reliability.stale_replies.incr();
                    self.note(|| TraceEvent::StaleReply {
                        pid: pid.0,
                        node,
                        seg: seg.0,
                        offset,
                        seq,
                    });
                }
            }
        };
        let mapin_span = self.span_enter("map-in", Some(node));
        self.clock.advance(
            self.costs.map_in
                + self
                    .costs
                    .map_in_extra
                    .saturating_mul(frames.len().saturating_sub(1) as u64),
        );
        let mut installed = 0u64;
        {
            let n = self.node_mut(node)?;
            let process = n
                .processes
                .get_mut(&pid)
                .ok_or(KernelError::UnknownProcess(pid))?;
            // Install the delivered frames by reference count, not by
            // 512-byte snapshot: the page is mapped copy-on-write against
            // the sender's cache, and a later write performs the deferred
            // copy (Accent's own message semantics, paper §2.1).
            for (i, frame) in frames.drain(..).enumerate() {
                let target = page.offset(i as u64);
                if matches!(
                    process.space.page_state(target),
                    Some(PageState::Imaginary { .. })
                ) {
                    process
                        .space
                        .satisfy_imaginary_frame(target, frame, &mut n.disk)?;
                    installed += 1;
                    if i > 0 {
                        process.stats.prefetched_pages += 1;
                        process.stats.prefetch_pending.insert(target);
                    }
                }
            }
            process.stats.imag_faults += 1;
        }
        // The drained reply vector goes back to the scratch pool for the
        // next reply assembly on this thread.
        cor_mem::page::frame_pool::give(frames);
        self.span_exit(mapin_span);
        if installed > 0 {
            self.fabric.release_refs(
                &mut self.clock,
                &mut self.ports,
                &mut self.segs,
                node,
                seg,
                installed,
            )?;
            self.settle()?;
        }
        let service_time = self.clock.now().since(fault_start);
        self.process_mut(node, pid)?
            .stats
            .record_fault_time(service_time);
        self.note(|| TraceEvent::Imaginary {
            pid: pid.0,
            node,
            page: page.0,
            seg: seg.0,
            prefetched: installed.saturating_sub(1),
            service: service_time,
        });
        Ok(installed)
    }

    /// Counts how many pages starting at `page` are still owed by `seg`
    /// with consecutive offsets, clipped to `want` and to the segment
    /// length — the prefetchable run.
    fn contiguous_owed(
        &self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        seg: SegmentId,
        offset: u64,
        want: u64,
    ) -> Result<u64, KernelError> {
        let seg_len = self
            .segs
            .get(seg)
            .map(|s| s.len_pages)
            .ok_or(KernelError::Net(cor_net::NetError::MissingData {
                seg,
                offset,
            }))?;
        let process = self.process(node, pid)?;
        let max = want.min(seg_len.saturating_sub(offset));
        let mut count = 0;
        for i in 0..max {
            match process.space.page_state(page.offset(i)) {
                Some(PageState::Imaginary { seg: s, offset: o })
                    if *s == seg && *o == offset + i =>
                {
                    count += 1;
                }
                _ => break,
            }
        }
        Ok(count.max(1))
    }

    /// Tries to satisfy an owed fetch content-addressed from a replica
    /// page home (see `docs/REPLICATION.md`) instead of the primary
    /// backing site. The fabric decides whether a replica may answer —
    /// always when the primary is down (the failover path, rung 0 of the
    /// recovery ladder), and under [`cor_net::ReplicationMode::Quorum`]
    /// also when a live replica is nearer on the topology. Returns
    /// `Ok(None)` when no replica can or should serve the read; the
    /// caller then proceeds exactly as without replication.
    #[allow(clippy::too_many_arguments)]
    fn try_replica_read(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        seg: SegmentId,
        offset: u64,
        count: u64,
        fault_start: SimTime,
    ) -> Result<Option<u64>, KernelError> {
        // A broken chain here is not ours to diagnose: fall through and
        // let the ordinary fetch surface the seed-identical error.
        let Ok((backer, bseg, boff)) =
            self.fabric
                .resolve_owed(&self.ports, &self.segs, seg, offset)
        else {
            return Ok(None);
        };
        if backer == node {
            return Ok(None);
        }
        // Clip the prefetch run to the prefix resolving contiguously to
        // the same terminal home (mirrors the disk-salvage rung).
        let mut run = 1u64;
        while run < count {
            match self
                .fabric
                .resolve_owed(&self.ports, &self.segs, seg, offset + run)
            {
                Ok((n2, s2, o2)) if n2 == backer && s2 == bseg && o2 == boff + run => run += 1,
                _ => break,
            }
        }
        let Some((replica, frames, failover)) =
            self.fabric
                .replica_read(&mut self.clock, node, backer, bseg, boff, run)
        else {
            return Ok(None);
        };
        let mapin_span = self.span_enter("map-in", Some(node));
        self.clock.advance(
            self.costs.map_in
                + self
                    .costs
                    .map_in_extra
                    .saturating_mul(frames.len().saturating_sub(1) as u64),
        );
        let mut installed = 0u64;
        {
            let n = self.node_mut(node)?;
            let process = n
                .processes
                .get_mut(&pid)
                .ok_or(KernelError::UnknownProcess(pid))?;
            for (i, frame) in frames.into_iter().enumerate() {
                let target = page.offset(i as u64);
                if matches!(
                    process.space.page_state(target),
                    Some(PageState::Imaginary { .. })
                ) {
                    process
                        .space
                        .satisfy_imaginary_frame(target, frame, &mut n.disk)?;
                    installed += 1;
                    if i > 0 {
                        process.stats.prefetched_pages += 1;
                        process.stats.prefetch_pending.insert(target);
                    }
                }
            }
            process.stats.imag_faults += 1;
        }
        self.span_exit(mapin_span);
        if installed > 0 {
            self.fabric.release_refs(
                &mut self.clock,
                &mut self.ports,
                &mut self.segs,
                node,
                seg,
                installed,
            )?;
            self.settle()?;
        }
        let service_time = self.clock.now().since(fault_start);
        self.process_mut(node, pid)?
            .stats
            .record_fault_time(service_time);
        self.note(|| TraceEvent::Imaginary {
            pid: pid.0,
            node,
            page: page.0,
            seg: seg.0,
            prefetched: installed.saturating_sub(1),
            service: service_time,
        });
        if failover {
            self.note(|| TraceEvent::Failover {
                pid: pid.0,
                node,
                dead: backer,
                replica,
                pages: installed,
                seg: bseg.0,
            });
        }
        Ok(Some(installed))
    }

    fn note_touch(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
    ) -> Result<(), KernelError> {
        let process = self.process_mut(node, pid)?;
        if process.stats.touched.insert(page) && process.stats.prefetch_pending.remove(&page) {
            process.stats.prefetch_hits += 1;
        }
        Ok(())
    }

    // ----- crash tolerance: residual deps, draining, recovery --------------

    /// The residual dependencies of `pid`: for every still-owed
    /// (imaginary) page, the node whose *volatile* state the process
    /// depends on — resolved through the full stand-in forwarding chain,
    /// multi-hop included. Pages whose bytes already sit in the backer's
    /// crash-survivable disk backer are crash-recoverable and therefore
    /// not counted, which is what makes flush-draining monotonically
    /// shrink this map. Local dependencies (pages the node owes itself)
    /// are omitted: a node cannot outlive its own crash.
    ///
    /// # Errors
    ///
    /// Unknown node/process, or a broken backing chain.
    pub fn residual_dependencies(
        &self,
        node: NodeId,
        pid: ProcessId,
    ) -> Result<BTreeMap<NodeId, u64>, KernelError> {
        let mut deps = BTreeMap::new();
        let process = self.process(node, pid)?;
        for (_, state) in process.space.materialized_pages() {
            if let PageState::Imaginary { seg, offset } = state {
                // A dead segment means the references were already
                // released (e.g. at termination): no dependency remains.
                if self.segs.get(*seg).is_none() {
                    continue;
                }
                let (backer, bseg, boff) =
                    self.fabric
                        .resolve_owed(&self.ports, &self.segs, *seg, *offset)?;
                if backer != node
                    && !self.fabric.disk_has(backer, bseg, boff)
                    && !self.fabric.replica_live_elsewhere(backer, bseg, boff)
                {
                    *deps.entry(backer).or_insert(0) += 1;
                }
            }
        }
        Ok(deps)
    }

    /// One round of background IOU draining under `policy`; returns the
    /// number of pages made crash-safe this round (zero means the
    /// dependency set is fully drained — or nothing more is drainable).
    /// Every drained page is counted in
    /// [`ReliabilityStats::drained_pages`](cor_sim::ReliabilityStats) and
    /// its traffic ledgered under [`cor_sim::LedgerCategory::Drain`], so paper
    /// tables built from the other categories are untouched.
    ///
    /// # Errors
    ///
    /// Unknown node/process, broken chains, or (for prefetch draining
    /// against a crashed backer) the recovery-ladder outcomes of
    /// [`World::touch`].
    pub fn drain_round(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        policy: DrainPolicy,
    ) -> Result<u64, KernelError> {
        if policy.pages_per_round == 0 {
            return Ok(0);
        }
        match policy.mode {
            DrainMode::Prefetch => self.drain_prefetch(node, pid, policy.pages_per_round),
            DrainMode::FlushToDisk => self.drain_flush(node, pid, policy.pages_per_round),
        }
    }

    /// The first still-owed page of `pid` whose resolved backer is remote
    /// and not yet crash-safe on that backer's disk.
    fn first_remote_owed(
        &self,
        node: NodeId,
        pid: ProcessId,
    ) -> Result<Option<(PageNum, SegmentId, u64)>, KernelError> {
        let process = self.process(node, pid)?;
        for (page, state) in process.space.materialized_pages() {
            if let PageState::Imaginary { seg, offset } = state {
                if self.segs.get(*seg).is_none() {
                    continue;
                }
                let (backer, bseg, boff) =
                    self.fabric
                        .resolve_owed(&self.ports, &self.segs, *seg, *offset)?;
                if backer != node
                    && !self.fabric.disk_has(backer, bseg, boff)
                    && !self.fabric.replica_live_elsewhere(backer, bseg, boff)
                {
                    return Ok(Some((page, *seg, *offset)));
                }
            }
        }
        Ok(None)
    }

    /// Prefetch-mode draining: pull up to `quota` owed pages across the
    /// wire during idle time, exactly as an imaginary fault would, so the
    /// dependency disappears outright.
    fn drain_prefetch(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        quota: u64,
    ) -> Result<u64, KernelError> {
        let Some((page, seg, offset)) = self.first_remote_owed(node, pid)? else {
            return Ok(0);
        };
        let saved = self.prefetch;
        self.prefetch = quota - 1;
        self.fabric.set_drain_accounting(true);
        let fetched = self.handle_imaginary_fault(node, pid, page, seg, offset);
        self.fabric.set_drain_accounting(false);
        self.prefetch = saved;
        let installed = fetched?;
        self.fabric.reliability.drained_pages.add(installed);
        self.note(|| TraceEvent::DrainPrefetch {
            pid: pid.0,
            node,
            pages: installed,
            seg: seg.0,
            offset,
        });
        Ok(installed)
    }

    /// Flush-mode draining ("flush to Sesame"): copy up to `quota` owed
    /// pages from the backing site's volatile NMS cache (or user-level
    /// backer) onto that site's crash-survivable disk backer. The pages
    /// stay owed — no wire transfer happens — but a crash can no longer
    /// lose them, so they leave [`World::residual_dependencies`].
    fn drain_flush(&mut self, node: NodeId, pid: ProcessId, quota: u64) -> Result<u64, KernelError> {
        let targets: Vec<(NodeId, SegmentId, u64)> = {
            let process = self.process(node, pid)?;
            let mut t = Vec::new();
            for (_, state) in process.space.materialized_pages() {
                if let PageState::Imaginary { seg, offset } = state {
                    if self.segs.get(*seg).is_none() {
                        continue;
                    }
                    let (backer, bseg, boff) =
                        self.fabric
                            .resolve_owed(&self.ports, &self.segs, *seg, *offset)?;
                    if backer != node
                        && !self.fabric.disk_has(backer, bseg, boff)
                        && !self.fabric.replica_live_elsewhere(backer, bseg, boff)
                    {
                        t.push((backer, bseg, boff));
                    }
                }
            }
            t
        };
        let mut flushed = 0u64;
        for (backer, bseg, boff) in targets {
            if flushed >= quota {
                break;
            }
            // A dead backer's volatile copy is already gone; there is
            // nothing left to flush (prefetch-mode draining would instead
            // climb the recovery ladder here).
            if self.fabric.is_crashed(backer) {
                continue;
            }
            let written = self.fabric.flush_cached_page_to_disk(backer, bseg, boff)
                || self.flush_user_backed_page(backer, bseg, boff);
            if !written {
                continue;
            }
            // The flush is the *backer's* disk writing out its own cache —
            // background work at another node that overlaps the foreground
            // process's execution, so it costs ledger bytes but no global
            // wall time (the destination never blocks on it).
            let now = self.clock.now();
            self.fabric
                .ledger
                .record(now, cor_mem::PAGE_SIZE, cor_sim::LedgerCategory::Drain);
            self.fabric.reliability.drained_pages.incr();
            flushed += 1;
            self.note(|| TraceEvent::DrainFlush {
                pid: pid.0,
                node,
                seg: bseg.0,
                offset: boff,
                backer,
            });
        }
        Ok(flushed)
    }

    /// Flushes one page of a *user-level*-backed segment to the backing
    /// node's disk backer. Returns `true` if a page was written.
    fn flush_user_backed_page(&mut self, backer: NodeId, seg: SegmentId, offset: u64) -> bool {
        let Ok(port) = self.segs.backing_port(seg) else {
            return false;
        };
        let Some(mut frames) = self
            .backers
            .get_mut(&port)
            .and_then(|e| e.store.fetch(seg, offset, 1))
        else {
            return false;
        };
        if frames.is_empty() {
            return false;
        }
        self.fabric
            .disk_install_page(backer, seg, offset, frames.remove(0));
        true
    }

    /// The crash-recovery ladder, entered when an imaginary fetch failed.
    /// Rung 1: if the failure traces to a *crashed* backing site, read the
    /// owed pages back from that site's crash-survivable disk backer and
    /// install them as the reply would have. Rung 2: if the faulting page
    /// is not on disk either, the data is gone — count the losses,
    /// terminate the orphan cleanly (releasing its remaining references),
    /// and surface [`KernelError::OrphanedProcess`]. Failures unrelated to
    /// a crash propagate unchanged.
    #[allow(clippy::too_many_arguments)]
    fn crash_recover_or_orphan(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        page: PageNum,
        seg: SegmentId,
        offset: u64,
        count: u64,
        err: KernelError,
    ) -> Result<u64, KernelError> {
        let dead = match &err {
            KernelError::SourceUnreachable { to, .. } if self.fabric.is_crashed(*to) => *to,
            // A missing reply (the backer died after the request left) or
            // a transport error: recoverable only if the resolved backing
            // site is in fact down.
            KernelError::NoReply { .. } | KernelError::Net(_) => {
                let (backer, _, _) =
                    self.fabric
                        .resolve_owed(&self.ports, &self.segs, seg, offset)?;
                // An amnesiac reboot answers the wire again but its cache
                // and forward tables are gone — for owed pages that is the
                // same loss as staying down, so it climbs the same ladder.
                if self.fabric.lost_volatile_state(backer) {
                    backer
                } else {
                    return Err(err);
                }
            }
            _ => return Err(err),
        };
        // Rung 0: with replicated page homes, a surviving replica serves
        // the read content-addressed — no data loss, no drain, and the
        // fetch is charged like a wire round trip (the measured failover
        // latency). Reached when the primary died *mid-flight*: a fetch
        // that found it already down failed over before sending.
        if self.fabric.params.replication.is_some() {
            let now = self.clock.now();
            if let Some(installed) =
                self.try_replica_read(node, pid, page, seg, offset, count, now)?
            {
                return Ok(installed);
            }
        }
        // Rung 1: the crashed node's disk backer, page by page; prefetch
        // pages beyond the faulting one are best-effort.
        let mut recovered = Vec::new();
        for i in 0..count {
            let (bnode, bseg, boff) =
                self.fabric
                    .resolve_owed(&self.ports, &self.segs, seg, offset + i)?;
            if bnode != dead {
                break;
            }
            match self.fabric.disk_recover(bnode, bseg, boff, 1) {
                Some(mut f) => recovered.push(f.remove(0)),
                None => break,
            }
        }
        if !recovered.is_empty() {
            let n = recovered.len() as u64;
            self.clock.advance(
                self.costs.disk_service
                    + self.costs.map_in
                    + self.costs.map_in_extra.saturating_mul(n - 1),
            );
            let now = self.clock.now();
            self.fabric.ledger.record(
                now,
                cor_mem::PAGE_SIZE * n,
                cor_sim::LedgerCategory::Drain,
            );
            let mut installed = 0u64;
            {
                let nd = self.node_mut(node)?;
                let process = nd
                    .processes
                    .get_mut(&pid)
                    .ok_or(KernelError::UnknownProcess(pid))?;
                for (i, frame) in recovered.into_iter().enumerate() {
                    let target = page.offset(i as u64);
                    if matches!(
                        process.space.page_state(target),
                        Some(PageState::Imaginary { .. })
                    ) {
                        process
                            .space
                            .satisfy_imaginary_frame(target, frame, &mut nd.disk)?;
                        installed += 1;
                    }
                }
                process.stats.imag_faults += 1;
            }
            self.fabric.reliability.pages_recovered.add(installed);
            if installed > 0 {
                self.fabric.release_refs(
                    &mut self.clock,
                    &mut self.ports,
                    &mut self.segs,
                    node,
                    seg,
                    installed,
                )?;
                self.settle()?;
            }
            self.note(|| TraceEvent::Recover {
                pid: pid.0,
                node,
                pages: installed,
                seg: seg.0,
                dead,
            });
            return Ok(installed);
        }
        // Rung 2: the faulting page is unrecoverable. Tally every owed
        // page this process will never see, then terminate it cleanly.
        let lost = self.count_lost_pages(node, pid, dead)?;
        self.fabric.reliability.pages_lost.add(lost);
        self.note(|| TraceEvent::Orphan {
            pid: pid.0,
            node,
            dead,
            lost,
        });
        self.terminate(node, pid)?;
        Err(KernelError::OrphanedProcess {
            pid,
            node: dead,
            lost_pages: lost,
        })
    }

    /// Owed pages of `pid` that resolve to `dead` and are not on its disk
    /// backer: data that no rung of the recovery ladder can produce.
    fn count_lost_pages(
        &self,
        node: NodeId,
        pid: ProcessId,
        dead: NodeId,
    ) -> Result<u64, KernelError> {
        let process = self.process(node, pid)?;
        let mut lost = 0;
        for (_, state) in process.space.materialized_pages() {
            if let PageState::Imaginary { seg, offset } = state {
                if self.segs.get(*seg).is_none() {
                    continue;
                }
                let (bnode, bseg, boff) =
                    self.fabric
                        .resolve_owed(&self.ports, &self.segs, *seg, *offset)?;
                if bnode == dead
                    && !self.fabric.disk_has(bnode, bseg, boff)
                    && !self.fabric.replica_live_elsewhere(bnode, bseg, boff)
                {
                    lost += 1;
                }
            }
        }
        Ok(lost)
    }

    /// A *kernel-context* read of process memory (paper §2.3): the caller
    /// holds the system critical section, so touching a port-backed
    /// (imaginary) page would deadlock — the backer could never execute
    /// the `Receive` needed to answer the fault. The accessibility map is
    /// consulted first and the read is refused, not deadlocked, when the
    /// range is distantly accessible. FillZero and disk faults are safe
    /// and serviced inline.
    ///
    /// # Errors
    ///
    /// [`KernelError::WouldDeadlock`] for ImagMem ranges;
    /// [`KernelError::AddressingViolation`] for BadMem; otherwise the
    /// usual failures.
    pub fn kernel_peek(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        addr: VAddr,
        len: u64,
    ) -> Result<Vec<u8>, KernelError> {
        let range = PageRange::covering(addr, len);
        let access = {
            let process = self.process(node, pid)?;
            process.space.amap().max_access_in(range)
        };
        match access {
            cor_mem::amap::Access::Imag => return Err(KernelError::WouldDeadlock { pid, addr }),
            cor_mem::amap::Access::Bad => {
                return Err(KernelError::AddressingViolation { pid, addr })
            }
            _ => {}
        }
        for page in range.iter() {
            self.ensure_ready(node, pid, page, false)?;
        }
        let process = self.process(node, pid)?;
        let mut buf = vec![0u8; len as usize];
        process.space.read(addr, &mut buf)?;
        Ok(buf)
    }

    // ----- the executor ----------------------------------------------------

    /// Runs `pid` until it terminates.
    ///
    /// # Errors
    ///
    /// Execution failures, or [`KernelError::TraceUnderrun`] if the trace
    /// ends without `Terminate`.
    pub fn run(&mut self, node: NodeId, pid: ProcessId) -> Result<ExecReport, KernelError> {
        self.run_for(node, pid, usize::MAX)
    }

    /// Runs `pid` for at most `max_ops` trace ops (or to termination).
    /// Execution resumes from the PCB's trace position, so a process can be
    /// run partially, migrated, and resumed elsewhere.
    ///
    /// # Errors
    ///
    /// Execution failures, or [`KernelError::TraceUnderrun`] if the trace
    /// ends without `Terminate`.
    pub fn run_for(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        max_ops: usize,
    ) -> Result<ExecReport, KernelError> {
        // A milestone span per scheduling slice: at Summary level a trace
        // still shows when each process ran and for how long.
        let span = self.span_enter_milestone("exec", Some(node));
        let result = self.run_for_inner(node, pid, max_ops);
        self.span_exit(span);
        result
    }

    fn run_for_inner(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        max_ops: usize,
    ) -> Result<ExecReport, KernelError> {
        let started_at = self.clock.now();
        {
            let process = self.process_mut(node, pid)?;
            process.pcb.status = RunStatus::Running;
        }
        let mut ops_executed = 0usize;
        let mut finished = false;
        while ops_executed < max_ops {
            let (op, op_index) = {
                let process = self.process_mut(node, pid)?;
                let idx = process.pcb.trace_pos;
                match process.trace.ops().get(idx) {
                    Some(op) => {
                        process.pcb.trace_pos += 1;
                        (op.clone(), idx)
                    }
                    None => return Err(KernelError::TraceUnderrun(pid)),
                }
            };
            ops_executed += 1;
            match op {
                Op::Touch { addr, len, write } => {
                    self.touch(node, pid, addr, len, write, op_index)?;
                }
                Op::Compute(d) => {
                    self.clock.advance(d);
                    self.process_mut(node, pid)?.stats.compute += d;
                }
                Op::ScreenUpdate => {
                    self.clock.advance(self.costs.screen_update);
                    self.process_mut(node, pid)?.stats.screen_updates += 1;
                }
                Op::Terminate => {
                    self.terminate(node, pid)?;
                    finished = true;
                    break;
                }
            }
        }
        if !finished {
            self.process_mut(node, pid)?.pcb.status = RunStatus::Ready;
        }
        self.note(|| TraceEvent::Exec {
            pid: pid.0,
            node,
            ops: ops_executed as u64,
            finished,
        });
        Ok(ExecReport {
            started_at,
            elapsed: self.clock.now().since(started_at),
            ops_executed,
            finished,
        })
    }

    /// Runs every ready process on `node` to completion, round-robin in
    /// slices of `slice_ops` trace ops — a minimal time-sharing scheduler
    /// for multi-process studies. Returns `(pid, total execution time)` in
    /// completion order, where the total sums that process's own slices.
    ///
    /// # Errors
    ///
    /// Any execution failure.
    ///
    /// # Panics
    ///
    /// Panics if `slice_ops` is zero (no slice could make progress).
    pub fn run_round_robin(
        &mut self,
        node: NodeId,
        slice_ops: usize,
    ) -> Result<Vec<(ProcessId, SimDuration)>, KernelError> {
        assert!(slice_ops > 0, "slices must make progress");
        let mut spent: HashMap<ProcessId, SimDuration> = HashMap::new();
        let mut finished = Vec::new();
        loop {
            let ready: Vec<ProcessId> = self
                .node(node)?
                .processes
                .values()
                .filter(|p| p.pcb.status != RunStatus::Terminated)
                .map(|p| p.id)
                .collect();
            if ready.is_empty() {
                return Ok(finished);
            }
            for pid in ready {
                let report = self.run_for(node, pid, slice_ops)?;
                let total = spent.entry(pid).or_insert(SimDuration::ZERO);
                *total += report.elapsed;
                if report.finished {
                    finished.push((pid, *total));
                }
            }
        }
    }

    /// Terminates `pid`: releases the references its address space holds on
    /// imaginary segments (never-touched owed pages), triggering segment
    /// deaths, and marks the PCB terminated. The address space itself is
    /// preserved for post-mortem inspection.
    ///
    /// # Errors
    ///
    /// Network failures during reference release.
    pub fn terminate(&mut self, node: NodeId, pid: ProcessId) -> Result<(), KernelError> {
        let mut owed: HashMap<SegmentId, u64> = HashMap::new();
        {
            let process = self.process_mut(node, pid)?;
            for (_, state) in process.space.materialized_pages() {
                if let PageState::Imaginary { seg, .. } = state {
                    *owed.entry(*seg).or_insert(0) += 1;
                }
            }
            process.pcb.status = RunStatus::Terminated;
        }
        let mut owed: Vec<(SegmentId, u64)> = owed.into_iter().collect();
        owed.sort_unstable_by_key(|&(s, _)| s);
        for (seg, pages) in owed {
            self.fabric.release_refs(
                &mut self.clock,
                &mut self.ports,
                &mut self.segs,
                node,
                seg,
                pages,
            )?;
        }
        self.settle()?;
        Ok(())
    }

    /// Clears `pid`'s touch and prefetch tracking. Experiments call this at
    /// a phase boundary (e.g. the moment of migration) so that
    /// [`ExecStats::touched`](crate::process::ExecStats) afterwards reports
    /// exactly the pages referenced *at the remote site* — the quantity
    /// Table 4-3 of the paper tabulates.
    ///
    /// # Errors
    ///
    /// Unknown node or process.
    pub fn reset_touch_tracking(
        &mut self,
        node: NodeId,
        pid: ProcessId,
    ) -> Result<(), KernelError> {
        let process = self.process_mut(node, pid)?;
        process.stats.touched.clear();
        process.stats.prefetch_pending.clear();
        Ok(())
    }

    /// A deterministic digest of the contents of every page `pid` has
    /// touched (in page order). Two runs of the same program — migrated or
    /// not, under any strategy — must agree.
    ///
    /// # Errors
    ///
    /// Unknown node/process, or internal state errors for touched pages
    /// that have no data.
    pub fn touched_checksum(&mut self, node: NodeId, pid: ProcessId) -> Result<u64, KernelError> {
        let mut pages: Vec<PageNum> = {
            let process = self.process(node, pid)?;
            process.stats.touched.iter().copied().collect()
        };
        pages.sort_unstable();
        let mut digest: u64 = 0xcbf29ce484222325;
        for page in pages {
            let n = self.node_mut(node)?;
            let process = n
                .processes
                .get_mut(&pid)
                .ok_or(KernelError::UnknownProcess(pid))?;
            let frame = process
                .space
                .peek_frame(page, &mut n.disk)
                .ok_or(KernelError::Mem(cor_mem::MemError::NotResident(page)))?;
            digest ^= page.0;
            digest = digest.wrapping_mul(0x100000001b3);
            frame.with(|data| {
                for &b in data.iter() {
                    digest ^= b as u64;
                    digest = digest.wrapping_mul(0x100000001b3);
                }
            });
        }
        Ok(digest)
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Resident-process count on `node` — the load signal the placement
    /// policies consume.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn node_load(&self, node: NodeId) -> Result<u64, KernelError> {
        Ok(self.node(node)?.processes.len() as u64)
    }

    /// Resident-process counts for every node, in node order.
    pub fn loads(&self) -> BTreeMap<NodeId, u64> {
        self.nodes
            .iter()
            .map(|(&id, n)| (id, n.processes.len() as u64))
            .collect()
    }

    /// The process ids resident on `node`, ascending.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn resident_pids(&self, node: NodeId) -> Result<Vec<ProcessId>, KernelError> {
        Ok(self.node(node)?.processes.keys().copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backer::VecStore;
    use cor_mem::page::{page_from_bytes, Frame, PAGE_SIZE};

    /// Builds a world where node `b` hosts a process whose pages
    /// `[0, pages)` are owed by a segment cached at node `a`'s NMS.
    fn owed_process(pages: u64) -> (World, NodeId, NodeId, ProcessId, SegmentId) {
        let (mut w, a, b) = World::testbed();
        let nms_a = w.fabric.nms_port(a).unwrap();
        let seg = w.segs.create(nms_a, pages);
        w.segs.add_refs(seg, pages).unwrap();
        let frames: Vec<Frame> = (0..pages)
            .map(|i| Frame::new(page_from_bytes(&[i as u8 + 1])))
            .collect();
        w.fabric.install_cache(a, seg, frames).unwrap();
        let mut space = AddressSpace::new();
        space.map_imaginary(PageRange::new(PageNum(0), PageNum(pages)), seg, 0);
        let mut tb = Trace::builder();
        tb.read(VAddr(0), PAGE_SIZE * pages);
        let trace = tb.terminate();
        let pid = w.create_process(b, "owed", space, trace).unwrap();
        (w, a, b, pid, seg)
    }

    #[test]
    fn zero_fill_and_write_readback() {
        let (mut w, a, _) = World::testbed();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), 4 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        tb.write(VAddr(100), 1000)
            .compute(SimDuration::from_millis(3));
        let trace = tb.terminate();
        let pid = w.create_process(a, "w", space, trace).unwrap();
        let report = w.run(a, pid).unwrap();
        assert!(report.finished);
        let process = w.process(a, pid).unwrap();
        assert_eq!(process.stats.zero_faults, 3, "pages 0..3 zero-filled");
        assert_eq!(process.stats.compute, SimDuration::from_millis(3));
        // The deterministic pattern landed in memory.
        let mut buf = [0u8; 4];
        process.space.read(VAddr(100), &mut buf).unwrap();
        let expect: Vec<u8> = (0..4).map(|i| write_pattern(VAddr(100 + i), 0)).collect();
        assert_eq!(&buf[..], &expect[..]);
    }

    #[test]
    fn remote_imaginary_fetch_delivers_correct_bytes() {
        let (mut w, _, b, pid, _) = owed_process(3);
        let report = w.run(b, pid).unwrap();
        assert!(report.finished);
        let process = w.process(b, pid).unwrap();
        assert_eq!(process.stats.imag_faults, 3);
        for i in 0..3u64 {
            let mut buf = [0u8; 1];
            process.space.read(PageNum(i).base(), &mut buf).unwrap();
            assert_eq!(buf[0], i as u8 + 1, "page {i} content");
        }
    }

    #[test]
    fn fault_time_histogram_tracks_service_times() {
        let (mut w, _, b, pid, _) = owed_process(5);
        w.run(b, pid).unwrap();
        let stats = &w.process(b, pid).unwrap().stats;
        let mean = stats.mean_fault_time().expect("faults were taken");
        let secs = mean.as_secs_f64();
        assert!((0.100..0.130).contains(&secs), "mean {secs}");
        assert_eq!(stats.fault_times.as_ref().unwrap().count(), 5);
    }

    #[test]
    fn imaginary_fault_cost_is_near_paper_value() {
        let (mut w, _, b, pid, _) = owed_process(1);
        let t0 = w.clock.now();
        w.run(b, pid).unwrap();
        let per_fault = w.clock.now().since(t0).as_secs_f64();
        // Paper §4.3.3: 115 ms (vs 40.8 ms local). Allow modeling slack.
        assert!((0.100..0.130).contains(&per_fault), "got {per_fault}");
        // And the ratio to a disk fault is "roughly 2.8".
        let ratio = per_fault / w.costs.disk_fault().as_secs_f64();
        assert!((2.4..3.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prefetch_batches_fetches_and_counts_hits() {
        let (mut w, _, b, pid, _) = owed_process(8);
        w.prefetch = 3;
        let report = w.run(b, pid).unwrap();
        assert!(report.finished);
        let process = w.process(b, pid).unwrap();
        assert_eq!(process.stats.imag_faults, 2, "8 pages / 4 per fetch");
        assert_eq!(process.stats.prefetched_pages, 6);
        assert_eq!(process.stats.prefetch_hits, 6, "sequential scan hits all");
        assert_eq!(process.stats.prefetch_hit_ratio(), Some(1.0));
    }

    #[test]
    fn prefetch_never_crosses_segment_end() {
        let (mut w, _, b, pid, _) = owed_process(5);
        w.prefetch = 15;
        w.run(b, pid).unwrap();
        let process = w.process(b, pid).unwrap();
        assert_eq!(process.stats.imag_faults, 1);
        assert_eq!(process.stats.prefetched_pages, 4, "clipped at segment end");
    }

    #[test]
    fn segments_die_after_full_consumption() {
        let (mut w, a, b, pid, _) = owed_process(4);
        w.run(b, pid).unwrap();
        assert_eq!(w.segs.live(), 0, "stand-in and origin both dead");
        assert_eq!(w.fabric.cached_pages_live(a), 0);
        assert_eq!(w.fabric.standins_live(b), 0);
    }

    #[test]
    fn unconsumed_owed_pages_die_at_termination() {
        let (mut w, a, b, _, seg) = owed_process(6);
        // A second process variant: touch only page 0, then terminate.
        let mut space = AddressSpace::new();
        space.map_imaginary(PageRange::new(PageNum(0), PageNum(6)), seg, 0);
        // Transfer the refs: the original mapping in owed_process also holds
        // refs, so add for this second mapping.
        w.segs.add_refs(seg, 6).unwrap();
        let mut tb = Trace::builder();
        tb.read(VAddr(0), 10);
        let pid2 = w
            .create_process(b, "partial", space, tb.terminate())
            .unwrap();
        w.run(b, pid2).unwrap();
        // pid2's 5 untouched pages were released at termination; the
        // original mapping from owed_process still holds 6 refs, so the
        // segment survives.
        assert!(w.segs.get(seg).is_some());
        assert_eq!(w.segs.get(seg).unwrap().outstanding, 6);
        assert!(w.fabric.cached_pages_live(a) > 0);
    }

    #[test]
    fn user_level_backer_serves_faults() {
        let (mut w, a, b) = World::testbed();
        let backing_port = w.ports.allocate(a);
        let mut store = VecStore::new();
        let seg = w.segs.create(backing_port, 2);
        w.segs.add_refs(seg, 2).unwrap();
        store.insert(
            seg,
            vec![
                Frame::new(page_from_bytes(b"alpha")),
                Frame::new(page_from_bytes(b"beta")),
            ],
        );
        w.register_backer(backing_port, a, Box::new(store));
        let mut space = AddressSpace::new();
        space.map_imaginary(PageRange::new(PageNum(0), PageNum(2)), seg, 0);
        let mut tb = Trace::builder();
        tb.read(VAddr(0), 2 * PAGE_SIZE);
        let pid = w
            .create_process(b, "userback", space, tb.terminate())
            .unwrap();
        w.run(b, pid).unwrap();
        let process = w.process(b, pid).unwrap();
        let mut buf = [0u8; 5];
        process.space.read(VAddr(0), &mut buf).unwrap();
        assert_eq!(&buf, b"alpha");
        process
            .space
            .read(PageNum(1).base(), &mut buf[..4])
            .unwrap();
        assert_eq!(&buf[..4], b"beta");
        // Death reached the store.
        assert_eq!(w.backer_pages_held(), 0);
    }

    #[test]
    fn addressing_violation_is_fatal() {
        let (mut w, a, _) = World::testbed();
        let mut tb = Trace::builder();
        tb.read(VAddr(0x5000), 1);
        let pid = w
            .create_process(a, "bad", AddressSpace::new(), tb.terminate())
            .unwrap();
        match w.run(a, pid) {
            Err(KernelError::AddressingViolation { pid: p, .. }) => assert_eq!(p, pid),
            other => panic!("expected AddressingViolation, got {other:?}"),
        }
    }

    #[test]
    fn partial_run_resumes_where_it_stopped() {
        let (mut w, a, _) = World::testbed();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), 10 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        for i in 0..10u64 {
            tb.write(PageNum(i).base(), 8);
        }
        let trace = tb.terminate();
        let pid = w.create_process(a, "partial", space, trace).unwrap();
        let r1 = w.run_for(a, pid, 4).unwrap();
        assert!(!r1.finished);
        assert_eq!(r1.ops_executed, 4);
        assert_eq!(w.process(a, pid).unwrap().pcb.status, RunStatus::Ready);
        let r2 = w.run(a, pid).unwrap();
        assert!(r2.finished);
        assert_eq!(r2.ops_executed, 7, "6 writes + terminate");
        assert_eq!(w.process(a, pid).unwrap().stats.touched.len(), 10);
    }

    #[test]
    fn checksum_is_deterministic_and_content_sensitive() {
        let run_once = |tweak: bool| {
            let (mut w, a, _) = World::testbed();
            let mut space = AddressSpace::new();
            space.validate(VAddr(0), 2 * PAGE_SIZE).unwrap();
            let mut tb = Trace::builder();
            tb.write(VAddr(0), 64);
            if tweak {
                tb.write(VAddr(64), 1);
            }
            let pid = w.create_process(a, "ck", space, tb.terminate()).unwrap();
            w.run(a, pid).unwrap();
            w.touched_checksum(a, pid).unwrap()
        };
        assert_eq!(run_once(false), run_once(false));
        assert_ne!(run_once(false), run_once(true));
    }

    #[test]
    fn round_robin_interleaves_and_finishes_everything() {
        let (mut w, a, _) = World::testbed();
        let mut pids = Vec::new();
        for j in 0..3u64 {
            let mut space = AddressSpace::new();
            space.validate(VAddr(0), 8 * PAGE_SIZE).unwrap();
            let mut tb = Trace::builder();
            for i in 0..(2 + j) {
                tb.write(PageNum(i).base(), 16);
                tb.compute(SimDuration::from_millis(10));
            }
            let pid = w
                .create_process(a, format!("rr{j}"), space, tb.terminate())
                .unwrap();
            pids.push(pid);
        }
        let finished = w.run_round_robin(a, 2).unwrap();
        assert_eq!(finished.len(), 3);
        // Shorter traces finish first under equal slices.
        assert_eq!(finished[0].0, pids[0]);
        assert_eq!(finished[2].0, pids[2]);
        for &(pid, total) in &finished {
            assert!(w.process(a, pid).unwrap().finished());
            assert!(total > SimDuration::ZERO);
        }
    }

    #[test]
    fn kernel_peek_refuses_imag_mem_instead_of_deadlocking() {
        let (mut w, _, b, pid, _) = owed_process(3);
        // Kernel-context read of an owed page: refused via the AMap check.
        match w.kernel_peek(b, pid, VAddr(0), 16) {
            Err(KernelError::WouldDeadlock { pid: p, .. }) => assert_eq!(p, pid),
            other => panic!("expected WouldDeadlock, got {other:?}"),
        }
        // After the process itself fetches the page, the peek is safe.
        w.run_for(b, pid, 1).unwrap();
        let bytes = w.kernel_peek(b, pid, VAddr(0), 16).unwrap();
        assert_eq!(bytes[0], 1, "cache content for page 0");
        // Unvalidated memory is an addressing error, not a deadlock.
        match w.kernel_peek(b, pid, VAddr(0x100000), 4) {
            Err(KernelError::AddressingViolation { .. }) => {}
            other => panic!("expected AddressingViolation, got {other:?}"),
        }
    }

    #[test]
    fn kernel_peek_services_safe_faults_inline() {
        let (mut w, a, _) = World::testbed();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), 2 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        tb.write(VAddr(0), 8);
        let pid = w.create_process(a, "peek", space, tb.terminate()).unwrap();
        // RealZero: peek zero-fills and reads zeros.
        let bytes = w.kernel_peek(a, pid, PageNum(1).base(), 8).unwrap();
        assert_eq!(bytes, vec![0u8; 8]);
    }

    #[test]
    fn fetched_imaginary_pages_page_out_to_the_local_disk() {
        // Paper §2.2: "page-outs for imaginary data are performed to the
        // local disk at the site that touched the page" — a fetched page
        // that gets evicted re-faults from the *local* disk, not the
        // network.
        let (mut w, _a, b, pid, _) = owed_process(4);
        w.process_mut(b, pid)
            .unwrap()
            .space
            .set_frame_budget(Some(2));
        let r = w.run(b, pid).unwrap();
        assert!(r.finished);
        let remote_before = w.fabric.stats().msgs_remote;
        // Re-touch page 0: it was fetched, then evicted by the budget.
        // Re-run a fresh read over the same pages via a second process
        // sharing nothing — instead, directly check the fault kind.
        let process = w.process_mut(b, pid).unwrap();
        match process.space.check_read(PageNum(0)) {
            Err(Fault::DiskIn { .. }) => {}
            other => panic!("expected DiskIn from local disk, got {other:?}"),
        }
        // Servicing it needs no network traffic.
        w.ensure_ready(b, pid, PageNum(0), false).unwrap();
        assert_eq!(w.fabric.stats().msgs_remote, remote_before);
        assert_eq!(w.process(b, pid).unwrap().stats.disk_faults, 1);
    }

    #[test]
    fn fault_support_traffic_lands_in_the_right_category() {
        let (mut w, _, b, pid, _) = owed_process(2);
        w.run(b, pid).unwrap();
        use cor_sim::LedgerCategory;
        let fs = w.fabric.ledger.total_for(LedgerCategory::FaultSupport);
        let bulk = w.fabric.ledger.total_for(LedgerCategory::Bulk);
        assert!(fs > 2 * PAGE_SIZE, "replies carry pages: {fs}");
        assert_eq!(bulk, 0, "no bulk transfer in this scenario");
    }

    #[test]
    fn residual_dependencies_shrink_monotonically_under_prefetch_drain() {
        let (mut w, a, b, pid, _) = owed_process(6);
        let deps = w.residual_dependencies(b, pid).unwrap();
        assert_eq!(deps.get(&a), Some(&6), "all six pages owed by a");
        let drained = w.drain_round(b, pid, DrainPolicy::prefetch(2)).unwrap();
        assert_eq!(drained, 2);
        assert_eq!(w.residual_dependencies(b, pid).unwrap().get(&a), Some(&4));
        while w.drain_round(b, pid, DrainPolicy::prefetch(2)).unwrap() > 0 {}
        assert!(w.residual_dependencies(b, pid).unwrap().is_empty());
        assert_eq!(w.fabric.reliability.drained_pages.get(), 6);
        // Drain traffic is its own ledger category.
        use cor_sim::LedgerCategory;
        assert!(w.fabric.ledger.total_for(LedgerCategory::Drain) > 6 * PAGE_SIZE);
    }

    #[test]
    fn flush_drain_then_crash_recovers_exact_bytes_from_disk() {
        // Reference: the same program with no crash at all.
        let (mut w0, _, b0, pid0, _) = owed_process(4);
        w0.run(b0, pid0).unwrap();
        let clean = w0.touched_checksum(b0, pid0).unwrap();

        let (mut w, a, b, pid, _) = owed_process(4);
        while w.drain_round(b, pid, DrainPolicy::flush(2)).unwrap() > 0 {}
        assert!(
            w.residual_dependencies(b, pid).unwrap().is_empty(),
            "flushed pages are crash-safe, so no residual dependency remains"
        );
        assert_eq!(w.fabric.disk_pages(a), 4);
        let now = w.clock.now();
        w.fabric.crash_node(now, &mut w.ports, a, false);
        let r = w.run(b, pid).unwrap();
        assert!(r.finished);
        assert_eq!(w.touched_checksum(b, pid).unwrap(), clean, "byte-identical");
        assert_eq!(w.fabric.reliability.pages_recovered.get(), 4);
        assert_eq!(w.fabric.reliability.pages_lost.get(), 0);
    }

    #[test]
    fn crash_without_drain_orphans_the_process_cleanly() {
        let (mut w, a, b, pid, _) = owed_process(5);
        let now = w.clock.now();
        w.fabric.crash_node(now, &mut w.ports, a, false);
        match w.run(b, pid) {
            Err(KernelError::OrphanedProcess {
                pid: p,
                node,
                lost_pages,
            }) => {
                assert_eq!(p, pid);
                assert_eq!(node, a);
                assert_eq!(lost_pages, 5, "every owed page is gone");
            }
            other => panic!("expected OrphanedProcess, got {other:?}"),
        }
        // Clean termination: status updated, references released, and the
        // world still settles.
        assert_eq!(w.process(b, pid).unwrap().pcb.status, RunStatus::Terminated);
        assert_eq!(w.fabric.reliability.pages_lost.get(), 5);
        assert!(w.fabric.reliability.crash_fast_fails.get() >= 1);
        w.settle().unwrap();
    }

    #[test]
    fn partial_drain_recovers_the_flushed_prefix_then_orphans() {
        let (mut w, a, b, pid, _) = owed_process(5);
        // Flush only pages 0 and 1, then lose node a.
        assert_eq!(w.drain_round(b, pid, DrainPolicy::flush(2)).unwrap(), 2);
        let now = w.clock.now();
        w.fabric.crash_node(now, &mut w.ports, a, false);
        match w.run(b, pid) {
            Err(KernelError::OrphanedProcess { lost_pages, .. }) => {
                assert_eq!(lost_pages, 3, "unflushed tail is lost");
            }
            other => panic!("expected OrphanedProcess, got {other:?}"),
        }
        assert_eq!(w.fabric.reliability.pages_recovered.get(), 2);
        assert_eq!(w.fabric.reliability.pages_lost.get(), 3);
    }

    #[test]
    fn drain_round_is_a_noop_for_local_and_exhausted_dependencies() {
        let (mut w, a, _) = World::testbed();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), 2 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        tb.write(VAddr(0), 8);
        let pid = w.create_process(a, "local", space, tb.terminate()).unwrap();
        // Purely local process: nothing to drain in either mode.
        assert_eq!(w.drain_round(a, pid, DrainPolicy::prefetch(4)).unwrap(), 0);
        assert_eq!(w.drain_round(a, pid, DrainPolicy::flush(4)).unwrap(), 0);
        assert_eq!(w.drain_round(a, pid, DrainPolicy::flush(0)).unwrap(), 0);
        assert_eq!(w.fabric.reliability.drained_pages.get(), 0);
    }
}
