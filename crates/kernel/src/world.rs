//! The simulated testbed: nodes, the pager/scheduler, and the executor.

use std::collections::BTreeMap;

use cor_ipc::message::Message;
use cor_ipc::port::{PortId, PortRegistry};
use cor_ipc::protocol::{self, ProtocolMsg};
use cor_ipc::segment::SegmentRegistry;
use cor_ipc::NodeId;
use cor_mem::AddressSpace;
#[cfg(test)]
use cor_mem::{space::SegmentId, Fault, PageNum, PageRange, VAddr};
use cor_net::{Fabric, SendReport, WireParams};
use cor_sim::{Clock, JournalLevel, SimDuration, SimTime};
use cor_trace::{Journal, MetricsRegistry, SpanId, TraceEvent};

use crate::backer::PageStore;
use crate::costs::CostModel;
use crate::error::KernelError;
use crate::node::Node;
use crate::process::{Process, ProcessId};
#[cfg(test)]
use crate::process::RunStatus;
use crate::program::Trace;
#[cfg(test)]
use crate::program::write_pattern;

/// Span-id base of the fabric's journal: the world journal mints ids
/// from 1 and the fabric from `FABRIC_SPAN_BASE + 1`, so a merged export
/// of both journals never sees an id collision.
pub const FABRIC_SPAN_BASE: u64 = 1 << 32;

/// Outcome of running a process (or a slice of its trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecReport {
    /// When execution started.
    pub started_at: SimTime,
    /// Virtual time consumed.
    pub elapsed: SimDuration,
    /// Trace ops executed.
    pub ops_executed: usize,
    /// Whether the process terminated.
    pub finished: bool,
}

/// How a background drain round makes owed pages crash-safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainMode {
    /// Pull owed pages across the wire (an ordinary prefetch fetch),
    /// removing the dependency outright. Costs wire traffic.
    Prefetch,
    /// Copy owed pages from the backing site's volatile cache (or
    /// user-level backer) onto that site's crash-survivable disk backer
    /// ("flush to Sesame"). The pages stay owed, but a crash can no
    /// longer lose them. Costs only disk service at the backer.
    FlushToDisk,
}

/// An opt-in background IOU draining policy: each idle round makes up to
/// `pages_per_round` owed pages crash-safe in the chosen [`DrainMode`],
/// monotonically shrinking [`World::residual_dependencies`]. All drain
/// traffic is ledgered under [`cor_sim::LedgerCategory::Drain`] so the
/// paper's byte categories are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainPolicy {
    /// The draining mechanism.
    pub mode: DrainMode,
    /// Page budget per round (zero disables draining).
    pub pages_per_round: u64,
}

impl DrainPolicy {
    /// A prefetch-mode policy.
    pub fn prefetch(pages_per_round: u64) -> Self {
        DrainPolicy {
            mode: DrainMode::Prefetch,
            pages_per_round,
        }
    }

    /// A flush-to-disk policy.
    pub fn flush(pages_per_round: u64) -> Self {
        DrainPolicy {
            mode: DrainMode::FlushToDisk,
            pages_per_round,
        }
    }
}

pub(crate) struct BackerEntry {
    pub(crate) node: NodeId,
    pub(crate) store: Box<dyn PageStore>,
}

/// The simulated distributed system.
///
/// Owns the clock, the global port/segment name services, the network
/// [`Fabric`], every [`Node`], and the registered user-level backers. All
/// experiment drivers and the migration machinery operate through this
/// type.
pub struct World {
    /// The virtual clock.
    pub clock: Clock,
    /// The port name service and queues.
    pub ports: PortRegistry,
    /// The imaginary segment table.
    pub segs: SegmentRegistry,
    /// The network.
    pub fabric: Fabric,
    /// Kernel service times.
    pub costs: CostModel,
    /// Pages to prefetch per imaginary fault (the paper studies
    /// 0, 1, 3, 7, 15).
    pub prefetch: u64,
    /// Optional structured event log with causal spans. Install with
    /// [`World::enable_journal`]; recording is skipped entirely when
    /// absent.
    pub journal: Option<Journal>,
    pub(crate) nodes: BTreeMap<NodeId, Node>,
    pub(crate) backers: BTreeMap<PortId, BackerEntry>,
    pub(crate) next_pid: u64,
    pub(crate) next_node: u32,
    /// Monotonic sequence stamp for pager read requests; replies echo it
    /// so stale or duplicated responses can be recognised and dropped.
    pub(crate) next_seq: u64,
}

impl World {
    /// Creates an empty world with the given cost models.
    pub fn new(costs: CostModel, wire: WireParams) -> Self {
        World {
            clock: Clock::new(),
            ports: PortRegistry::new(),
            segs: SegmentRegistry::new(),
            fabric: Fabric::new(wire),
            costs,
            prefetch: 0,
            journal: None,
            nodes: BTreeMap::new(),
            backers: BTreeMap::new(),
            next_pid: 0,
            next_node: 0,
            next_seq: 0,
        }
    }

    /// A two-node world with default parameters — the shape of the paper's
    /// testbed.
    pub fn testbed() -> (World, NodeId, NodeId) {
        let mut w = World::new(CostModel::default(), WireParams::default());
        let a = w.add_node();
        let b = w.add_node();
        (w, a, b)
    }

    /// An `n`-node world: the fleet-scale sibling of [`World::testbed`].
    /// Node ids are sequential from zero, so they index a
    /// [`cor_net::Topology`] of the same size directly. Returns the world
    /// and its node ids in order.
    pub fn fleet(n: u32, costs: CostModel, wire: WireParams) -> (World, Vec<NodeId>) {
        let mut w = World::new(costs, wire);
        let nodes = (0..n).map(|_| w.add_node()).collect();
        (w, nodes)
    }

    /// Installs (or resets) the event journal; subsequent faults, sends
    /// and lifecycle transitions are recorded. The fabric gets its own
    /// journal for wire-level fault-injection events (`net-*` kinds) and
    /// wire spans; its span ids start at [`FABRIC_SPAN_BASE`] so merged
    /// exports of the two journals stay globally unique.
    pub fn enable_journal(&mut self) {
        self.enable_journal_at(JournalLevel::Full);
    }

    /// Installs (or resets) the event journal at a chosen recording level.
    /// At [`JournalLevel::Off`] the journals stay installed but mute:
    /// every `record_with` call returns before the event is even
    /// constructed, so instrumented hot paths cost one branch. At
    /// [`JournalLevel::Summary`] only lifecycle milestones are kept.
    pub fn enable_journal_at(&mut self, level: JournalLevel) {
        let mut world_j = Journal::with_level_and_base(level, 0);
        let mut fabric_j = Journal::with_level_and_base(level, FABRIC_SPAN_BASE);
        // One birth counter across both journals: spans carry a global
        // creation order, which the parallel fleet merge uses to decide
        // which spans a late-discovered queue wait pushes later in time.
        let births = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        world_j.set_birth_counter(births.clone());
        fabric_j.set_birth_counter(births);
        self.journal = Some(world_j);
        self.fabric.journal = Some(fabric_j);
    }

    /// The two journals as a named slice for the exporters in
    /// [`cor_trace::export`], world first; empty entries are omitted.
    pub fn journals(&self) -> Vec<(&'static str, &Journal)> {
        let mut js = Vec::new();
        if let Some(j) = &self.journal {
            js.push(("world", j));
        }
        if let Some(j) = &self.fabric.journal {
            js.push(("fabric", j));
        }
        js
    }

    /// Builds a per-node metrics snapshot as of the current instant:
    /// fault and prefetch counters per node, message-handling CPU, the
    /// wire ledger's byte categories and reliability counters on the
    /// global `wire` pseudo-node, and (when journals are installed)
    /// latency histograms for every closed span by name. Rebuildable at
    /// any time; deterministic rendering via
    /// [`MetricsRegistry::render`].
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let now = self.clock.now();
        let mut reg = MetricsRegistry::new();
        for (&id, n) in &self.nodes {
            for p in n.processes.values() {
                let s = &p.stats;
                let pairs = [
                    ("faults.imaginary", s.imag_faults),
                    ("faults.disk", s.disk_faults),
                    ("faults.zero", s.zero_faults),
                    ("prefetch.pages", s.prefetched_pages),
                    ("prefetch.hits", s.prefetch_hits),
                    ("pages.touched", s.touched.len() as u64),
                    ("exec.screen-updates", s.screen_updates),
                ];
                for (name, v) in pairs {
                    if v > 0 {
                        reg.counter_add(Some(id), name, v);
                    }
                }
            }
            let cpu = self.fabric.node_cpu(id);
            if cpu > SimDuration::ZERO {
                reg.counter_add(Some(id), "cpu.msg-handling-us", cpu.as_micros());
            }
        }
        reg.ingest_ledger(&self.fabric.ledger, now);
        reg.ingest_reliability(&self.fabric.reliability);
        if let Some(j) = &self.journal {
            reg.ingest_spans(j, now);
        }
        if let Some(j) = &self.fabric.journal {
            reg.ingest_spans(j, now);
        }
        reg
    }

    /// The next pager request sequence number (monotonic, never zero).
    pub(crate) fn next_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Records a journal event if a journal is installed. The event is
    /// built lazily so disabled journals cost one branch.
    pub fn note(&mut self, event: impl FnOnce() -> TraceEvent) {
        if let Some(j) = &mut self.journal {
            let at = self.clock.now();
            j.record_with(at, event);
        }
    }

    /// Opens a fine-grained causal span at the current instant (recorded
    /// only at [`JournalLevel::Full`]). Close with [`World::span_exit`];
    /// the returned id is [`SpanId::NONE`] (a no-op to close) when muted.
    pub fn span_enter(&mut self, name: &'static str, node: Option<NodeId>) -> SpanId {
        let id = match &mut self.journal {
            Some(j) => j.span_start(self.clock.now(), name, node),
            None => SpanId::NONE,
        };
        self.sync_trace_parent();
        id
    }

    /// Opens a milestone span (recorded at [`JournalLevel::Summary`] and
    /// above): migration phases and scheduling slices.
    pub fn span_enter_milestone(&mut self, name: &'static str, node: Option<NodeId>) -> SpanId {
        let id = match &mut self.journal {
            Some(j) => j.milestone_span_start(self.clock.now(), name, node),
            None => SpanId::NONE,
        };
        self.sync_trace_parent();
        id
    }

    /// Closes a span opened by [`World::span_enter`] at the current
    /// instant; still-open children close with it.
    pub fn span_exit(&mut self, id: SpanId) {
        if let Some(j) = &mut self.journal {
            j.span_end(self.clock.now(), id);
        }
        self.sync_trace_parent();
    }

    /// Keeps the fabric's cross-journal parent hook pointing at the
    /// world journal's innermost open span: wire spans the fabric opens
    /// while (say) a `core-transfer` or `cor-roundtrip` phase is active
    /// nest under that phase — not under some outer milestone they
    /// time-overlap with siblings of — so child durations never exceed
    /// their parent's and blame decompositions stay exact.
    fn sync_trace_parent(&mut self) {
        let top = self.journal.as_ref().map_or(SpanId::NONE, |j| j.open_top());
        self.fabric.set_trace_parent(top);
    }

    /// Adds a machine (starting its NetMsgServer and pager).
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.fabric.add_node(id, &mut self.ports);
        let pager_port = self.ports.allocate(id);
        self.nodes.insert(id, Node::new(id, pager_port));
        id
    }

    /// Borrows a node.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn node(&self, id: NodeId) -> Result<&Node, KernelError> {
        self.nodes.get(&id).ok_or(KernelError::UnknownNode(id))
    }

    /// Borrows a node mutably.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, KernelError> {
        self.nodes.get_mut(&id).ok_or(KernelError::UnknownNode(id))
    }

    /// Creates a process on `node` from a prepared space and trace.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn create_process(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        space: AddressSpace,
        trace: Trace,
    ) -> Result<ProcessId, KernelError> {
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        let process = Process::new(pid, name, space, trace);
        self.node_mut(node)?.processes.insert(pid, process);
        Ok(pid)
    }

    /// Borrows a process.
    ///
    /// # Errors
    ///
    /// Unknown node or process.
    pub fn process(&self, node: NodeId, pid: ProcessId) -> Result<&Process, KernelError> {
        self.node(node)?
            .process(pid)
            .ok_or(KernelError::UnknownProcess(pid))
    }

    /// Borrows a process mutably.
    ///
    /// # Errors
    ///
    /// Unknown node or process.
    pub fn process_mut(
        &mut self,
        node: NodeId,
        pid: ProcessId,
    ) -> Result<&mut Process, KernelError> {
        self.node_mut(node)?
            .process_mut(pid)
            .ok_or(KernelError::UnknownProcess(pid))
    }

    /// Removes a process from its node (excision uses this).
    ///
    /// # Errors
    ///
    /// Unknown node or process.
    pub fn remove_process(&mut self, node: NodeId, pid: ProcessId) -> Result<Process, KernelError> {
        self.node_mut(node)?
            .processes
            .remove(&pid)
            .ok_or(KernelError::UnknownProcess(pid))
    }

    /// Installs an existing process structure on `node` (insertion uses
    /// this).
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn install_process(&mut self, node: NodeId, process: Process) -> Result<(), KernelError> {
        self.node_mut(node)?.processes.insert(process.id, process);
        Ok(())
    }

    /// Registers a user-level backer: messages arriving on `port` are
    /// served from `store` by [`World::settle`].
    pub fn register_backer(&mut self, port: PortId, node: NodeId, store: Box<dyn PageStore>) {
        self.backers.insert(port, BackerEntry { node, store });
    }

    /// Unregisters a backer and returns its store.
    pub fn take_backer(&mut self, port: PortId) -> Option<Box<dyn PageStore>> {
        self.backers.remove(&port).map(|e| e.store)
    }

    /// Pages currently held by registered user-level backers.
    pub fn backer_pages_held(&self) -> u64 {
        self.backers.values().map(|e| e.store.pages_held()).sum()
    }

    /// Sends a message on behalf of `node`.
    ///
    /// # Errors
    ///
    /// Network failures.
    pub fn send_from(&mut self, node: NodeId, msg: Message) -> Result<SendReport, KernelError> {
        let kind = msg.kind;
        let report =
            self.fabric
                .send(&mut self.clock, &mut self.ports, &mut self.segs, node, msg)?;
        if report.remote {
            self.note(|| TraceEvent::Send {
                kind,
                from: node,
                wire_bytes: report.wire_bytes,
            });
        }
        Ok(report)
    }

    /// Drives the system to quiescence: pumps every NetMsgServer and
    /// services every registered user-level backer until no queued work
    /// remains. Returns the number of messages processed.
    ///
    /// # Errors
    ///
    /// Network failures or unexpected messages on backing ports.
    pub fn settle(&mut self) -> Result<usize, KernelError> {
        let mut processed = 0;
        loop {
            let pumped = self
                .fabric
                .pump(&mut self.clock, &mut self.ports, &mut self.segs)?;
            let served = self.service_backers()?;
            processed += pumped + served;
            if pumped + served == 0 {
                return Ok(processed);
            }
        }
    }

    pub(crate) fn service_backers(&mut self) -> Result<usize, KernelError> {
        let ports_list: Vec<PortId> = self.backers.keys().copied().collect();
        let mut served = 0;
        for port in ports_list {
            while let Some(msg) = self.ports.dequeue(port)? {
                served += 1;
                // Temporarily take the entry so `self` can be re-borrowed
                // for sending the reply.
                let mut entry = self
                    .backers
                    .remove(&port)
                    .expect("backer disappeared while being served");
                let result = self.serve_backer_msg(port, &mut entry, &msg);
                self.backers.insert(port, entry);
                result?;
            }
        }
        Ok(served)
    }

    fn serve_backer_msg(
        &mut self,
        port: PortId,
        entry: &mut BackerEntry,
        msg: &Message,
    ) -> Result<(), KernelError> {
        match protocol::parse(msg) {
            Some(ProtocolMsg::ImagReadRequest {
                seg,
                offset,
                count,
                reply,
                seq,
            }) => {
                self.clock.advance(self.costs.backer_service);
                let frames = entry
                    .store
                    .fetch(seg, offset, count)
                    .ok_or(KernelError::Net(cor_net::NetError::MissingData {
                        seg,
                        offset,
                    }))?;
                // Echo the request's sequence number so the faulter can
                // pair the reply with its request.
                let reply_msg = protocol::imag_read_reply(reply, seg, offset, frames)
                    .with_seq(seq)
                    .with_no_ious(true);
                self.send_from(entry.node, reply_msg)?;
                Ok(())
            }
            Some(ProtocolMsg::ImagSegmentDeath { seg }) => {
                entry.store.death(seg);
                Ok(())
            }
            _ => Err(KernelError::UnexpectedMessage { port }),
        }
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Resident-process count on `node` — the load signal the placement
    /// policies consume.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn node_load(&self, node: NodeId) -> Result<u64, KernelError> {
        Ok(self.node(node)?.processes.len() as u64)
    }

    /// Resident-process counts for every node, in node order.
    pub fn loads(&self) -> BTreeMap<NodeId, u64> {
        self.nodes
            .iter()
            .map(|(&id, n)| (id, n.processes.len() as u64))
            .collect()
    }

    /// The process ids resident on `node`, ascending.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`].
    pub fn resident_pids(&self, node: NodeId) -> Result<Vec<ProcessId>, KernelError> {
        Ok(self.node(node)?.processes.keys().copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backer::VecStore;
    use cor_mem::page::{page_from_bytes, Frame, PAGE_SIZE};

    /// Builds a world where node `b` hosts a process whose pages
    /// `[0, pages)` are owed by a segment cached at node `a`'s NMS.
    fn owed_process(pages: u64) -> (World, NodeId, NodeId, ProcessId, SegmentId) {
        let (mut w, a, b) = World::testbed();
        let nms_a = w.fabric.nms_port(a).unwrap();
        let seg = w.segs.create(nms_a, pages);
        w.segs.add_refs(seg, pages).unwrap();
        let frames: Vec<Frame> = (0..pages)
            .map(|i| Frame::new(page_from_bytes(&[i as u8 + 1])))
            .collect();
        w.fabric.install_cache(a, seg, frames).unwrap();
        let mut space = AddressSpace::new();
        space.map_imaginary(PageRange::new(PageNum(0), PageNum(pages)), seg, 0);
        let mut tb = Trace::builder();
        tb.read(VAddr(0), PAGE_SIZE * pages);
        let trace = tb.terminate();
        let pid = w.create_process(b, "owed", space, trace).unwrap();
        (w, a, b, pid, seg)
    }

    #[test]
    fn zero_fill_and_write_readback() {
        let (mut w, a, _) = World::testbed();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), 4 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        tb.write(VAddr(100), 1000)
            .compute(SimDuration::from_millis(3));
        let trace = tb.terminate();
        let pid = w.create_process(a, "w", space, trace).unwrap();
        let report = w.run(a, pid).unwrap();
        assert!(report.finished);
        let process = w.process(a, pid).unwrap();
        assert_eq!(process.stats.zero_faults, 3, "pages 0..3 zero-filled");
        assert_eq!(process.stats.compute, SimDuration::from_millis(3));
        // The deterministic pattern landed in memory.
        let mut buf = [0u8; 4];
        process.space.read(VAddr(100), &mut buf).unwrap();
        let expect: Vec<u8> = (0..4).map(|i| write_pattern(VAddr(100 + i), 0)).collect();
        assert_eq!(&buf[..], &expect[..]);
    }

    #[test]
    fn remote_imaginary_fetch_delivers_correct_bytes() {
        let (mut w, _, b, pid, _) = owed_process(3);
        let report = w.run(b, pid).unwrap();
        assert!(report.finished);
        let process = w.process(b, pid).unwrap();
        assert_eq!(process.stats.imag_faults, 3);
        for i in 0..3u64 {
            let mut buf = [0u8; 1];
            process.space.read(PageNum(i).base(), &mut buf).unwrap();
            assert_eq!(buf[0], i as u8 + 1, "page {i} content");
        }
    }

    #[test]
    fn fault_time_histogram_tracks_service_times() {
        let (mut w, _, b, pid, _) = owed_process(5);
        w.run(b, pid).unwrap();
        let stats = &w.process(b, pid).unwrap().stats;
        let mean = stats.mean_fault_time().expect("faults were taken");
        let secs = mean.as_secs_f64();
        assert!((0.100..0.130).contains(&secs), "mean {secs}");
        assert_eq!(stats.fault_times.as_ref().unwrap().count(), 5);
    }

    #[test]
    fn imaginary_fault_cost_is_near_paper_value() {
        let (mut w, _, b, pid, _) = owed_process(1);
        let t0 = w.clock.now();
        w.run(b, pid).unwrap();
        let per_fault = w.clock.now().since(t0).as_secs_f64();
        // Paper §4.3.3: 115 ms (vs 40.8 ms local). Allow modeling slack.
        assert!((0.100..0.130).contains(&per_fault), "got {per_fault}");
        // And the ratio to a disk fault is "roughly 2.8".
        let ratio = per_fault / w.costs.disk_fault().as_secs_f64();
        assert!((2.4..3.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prefetch_batches_fetches_and_counts_hits() {
        let (mut w, _, b, pid, _) = owed_process(8);
        w.prefetch = 3;
        let report = w.run(b, pid).unwrap();
        assert!(report.finished);
        let process = w.process(b, pid).unwrap();
        assert_eq!(process.stats.imag_faults, 2, "8 pages / 4 per fetch");
        assert_eq!(process.stats.prefetched_pages, 6);
        assert_eq!(process.stats.prefetch_hits, 6, "sequential scan hits all");
        assert_eq!(process.stats.prefetch_hit_ratio(), Some(1.0));
    }

    #[test]
    fn prefetch_never_crosses_segment_end() {
        let (mut w, _, b, pid, _) = owed_process(5);
        w.prefetch = 15;
        w.run(b, pid).unwrap();
        let process = w.process(b, pid).unwrap();
        assert_eq!(process.stats.imag_faults, 1);
        assert_eq!(process.stats.prefetched_pages, 4, "clipped at segment end");
    }

    #[test]
    fn segments_die_after_full_consumption() {
        let (mut w, a, b, pid, _) = owed_process(4);
        w.run(b, pid).unwrap();
        assert_eq!(w.segs.live(), 0, "stand-in and origin both dead");
        assert_eq!(w.fabric.cached_pages_live(a), 0);
        assert_eq!(w.fabric.standins_live(b), 0);
    }

    #[test]
    fn unconsumed_owed_pages_die_at_termination() {
        let (mut w, a, b, _, seg) = owed_process(6);
        // A second process variant: touch only page 0, then terminate.
        let mut space = AddressSpace::new();
        space.map_imaginary(PageRange::new(PageNum(0), PageNum(6)), seg, 0);
        // Transfer the refs: the original mapping in owed_process also holds
        // refs, so add for this second mapping.
        w.segs.add_refs(seg, 6).unwrap();
        let mut tb = Trace::builder();
        tb.read(VAddr(0), 10);
        let pid2 = w
            .create_process(b, "partial", space, tb.terminate())
            .unwrap();
        w.run(b, pid2).unwrap();
        // pid2's 5 untouched pages were released at termination; the
        // original mapping from owed_process still holds 6 refs, so the
        // segment survives.
        assert!(w.segs.get(seg).is_some());
        assert_eq!(w.segs.get(seg).unwrap().outstanding, 6);
        assert!(w.fabric.cached_pages_live(a) > 0);
    }

    #[test]
    fn user_level_backer_serves_faults() {
        let (mut w, a, b) = World::testbed();
        let backing_port = w.ports.allocate(a);
        let mut store = VecStore::new();
        let seg = w.segs.create(backing_port, 2);
        w.segs.add_refs(seg, 2).unwrap();
        store.insert(
            seg,
            vec![
                Frame::new(page_from_bytes(b"alpha")),
                Frame::new(page_from_bytes(b"beta")),
            ],
        );
        w.register_backer(backing_port, a, Box::new(store));
        let mut space = AddressSpace::new();
        space.map_imaginary(PageRange::new(PageNum(0), PageNum(2)), seg, 0);
        let mut tb = Trace::builder();
        tb.read(VAddr(0), 2 * PAGE_SIZE);
        let pid = w
            .create_process(b, "userback", space, tb.terminate())
            .unwrap();
        w.run(b, pid).unwrap();
        let process = w.process(b, pid).unwrap();
        let mut buf = [0u8; 5];
        process.space.read(VAddr(0), &mut buf).unwrap();
        assert_eq!(&buf, b"alpha");
        process
            .space
            .read(PageNum(1).base(), &mut buf[..4])
            .unwrap();
        assert_eq!(&buf[..4], b"beta");
        // Death reached the store.
        assert_eq!(w.backer_pages_held(), 0);
    }

    #[test]
    fn addressing_violation_is_fatal() {
        let (mut w, a, _) = World::testbed();
        let mut tb = Trace::builder();
        tb.read(VAddr(0x5000), 1);
        let pid = w
            .create_process(a, "bad", AddressSpace::new(), tb.terminate())
            .unwrap();
        match w.run(a, pid) {
            Err(KernelError::AddressingViolation { pid: p, .. }) => assert_eq!(p, pid),
            other => panic!("expected AddressingViolation, got {other:?}"),
        }
    }

    #[test]
    fn partial_run_resumes_where_it_stopped() {
        let (mut w, a, _) = World::testbed();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), 10 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        for i in 0..10u64 {
            tb.write(PageNum(i).base(), 8);
        }
        let trace = tb.terminate();
        let pid = w.create_process(a, "partial", space, trace).unwrap();
        let r1 = w.run_for(a, pid, 4).unwrap();
        assert!(!r1.finished);
        assert_eq!(r1.ops_executed, 4);
        assert_eq!(w.process(a, pid).unwrap().pcb.status, RunStatus::Ready);
        let r2 = w.run(a, pid).unwrap();
        assert!(r2.finished);
        assert_eq!(r2.ops_executed, 7, "6 writes + terminate");
        assert_eq!(w.process(a, pid).unwrap().stats.touched.len(), 10);
    }

    #[test]
    fn checksum_is_deterministic_and_content_sensitive() {
        let run_once = |tweak: bool| {
            let (mut w, a, _) = World::testbed();
            let mut space = AddressSpace::new();
            space.validate(VAddr(0), 2 * PAGE_SIZE).unwrap();
            let mut tb = Trace::builder();
            tb.write(VAddr(0), 64);
            if tweak {
                tb.write(VAddr(64), 1);
            }
            let pid = w.create_process(a, "ck", space, tb.terminate()).unwrap();
            w.run(a, pid).unwrap();
            w.touched_checksum(a, pid).unwrap()
        };
        assert_eq!(run_once(false), run_once(false));
        assert_ne!(run_once(false), run_once(true));
    }

    #[test]
    fn round_robin_interleaves_and_finishes_everything() {
        let (mut w, a, _) = World::testbed();
        let mut pids = Vec::new();
        for j in 0..3u64 {
            let mut space = AddressSpace::new();
            space.validate(VAddr(0), 8 * PAGE_SIZE).unwrap();
            let mut tb = Trace::builder();
            for i in 0..(2 + j) {
                tb.write(PageNum(i).base(), 16);
                tb.compute(SimDuration::from_millis(10));
            }
            let pid = w
                .create_process(a, format!("rr{j}"), space, tb.terminate())
                .unwrap();
            pids.push(pid);
        }
        let finished = w.run_round_robin(a, 2).unwrap();
        assert_eq!(finished.len(), 3);
        // Shorter traces finish first under equal slices.
        assert_eq!(finished[0].0, pids[0]);
        assert_eq!(finished[2].0, pids[2]);
        for &(pid, total) in &finished {
            assert!(w.process(a, pid).unwrap().finished());
            assert!(total > SimDuration::ZERO);
        }
    }

    #[test]
    fn kernel_peek_refuses_imag_mem_instead_of_deadlocking() {
        let (mut w, _, b, pid, _) = owed_process(3);
        // Kernel-context read of an owed page: refused via the AMap check.
        match w.kernel_peek(b, pid, VAddr(0), 16) {
            Err(KernelError::WouldDeadlock { pid: p, .. }) => assert_eq!(p, pid),
            other => panic!("expected WouldDeadlock, got {other:?}"),
        }
        // After the process itself fetches the page, the peek is safe.
        w.run_for(b, pid, 1).unwrap();
        let bytes = w.kernel_peek(b, pid, VAddr(0), 16).unwrap();
        assert_eq!(bytes[0], 1, "cache content for page 0");
        // Unvalidated memory is an addressing error, not a deadlock.
        match w.kernel_peek(b, pid, VAddr(0x100000), 4) {
            Err(KernelError::AddressingViolation { .. }) => {}
            other => panic!("expected AddressingViolation, got {other:?}"),
        }
    }

    #[test]
    fn kernel_peek_services_safe_faults_inline() {
        let (mut w, a, _) = World::testbed();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), 2 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        tb.write(VAddr(0), 8);
        let pid = w.create_process(a, "peek", space, tb.terminate()).unwrap();
        // RealZero: peek zero-fills and reads zeros.
        let bytes = w.kernel_peek(a, pid, PageNum(1).base(), 8).unwrap();
        assert_eq!(bytes, vec![0u8; 8]);
    }

    #[test]
    fn fetched_imaginary_pages_page_out_to_the_local_disk() {
        // Paper §2.2: "page-outs for imaginary data are performed to the
        // local disk at the site that touched the page" — a fetched page
        // that gets evicted re-faults from the *local* disk, not the
        // network.
        let (mut w, _a, b, pid, _) = owed_process(4);
        w.process_mut(b, pid)
            .unwrap()
            .space
            .set_frame_budget(Some(2));
        let r = w.run(b, pid).unwrap();
        assert!(r.finished);
        let remote_before = w.fabric.stats().msgs_remote;
        // Re-touch page 0: it was fetched, then evicted by the budget.
        // Re-run a fresh read over the same pages via a second process
        // sharing nothing — instead, directly check the fault kind.
        let process = w.process_mut(b, pid).unwrap();
        match process.space.check_read(PageNum(0)) {
            Err(Fault::DiskIn { .. }) => {}
            other => panic!("expected DiskIn from local disk, got {other:?}"),
        }
        // Servicing it needs no network traffic.
        w.ensure_ready(b, pid, PageNum(0), false).unwrap();
        assert_eq!(w.fabric.stats().msgs_remote, remote_before);
        assert_eq!(w.process(b, pid).unwrap().stats.disk_faults, 1);
    }

    #[test]
    fn fault_support_traffic_lands_in_the_right_category() {
        let (mut w, _, b, pid, _) = owed_process(2);
        w.run(b, pid).unwrap();
        use cor_sim::LedgerCategory;
        let fs = w.fabric.ledger.total_for(LedgerCategory::FaultSupport);
        let bulk = w.fabric.ledger.total_for(LedgerCategory::Bulk);
        assert!(fs > 2 * PAGE_SIZE, "replies carry pages: {fs}");
        assert_eq!(bulk, 0, "no bulk transfer in this scenario");
    }

    #[test]
    fn residual_dependencies_shrink_monotonically_under_prefetch_drain() {
        let (mut w, a, b, pid, _) = owed_process(6);
        let deps = w.residual_dependencies(b, pid).unwrap();
        assert_eq!(deps.get(&a), Some(&6), "all six pages owed by a");
        let drained = w.drain_round(b, pid, DrainPolicy::prefetch(2)).unwrap();
        assert_eq!(drained, 2);
        assert_eq!(w.residual_dependencies(b, pid).unwrap().get(&a), Some(&4));
        while w.drain_round(b, pid, DrainPolicy::prefetch(2)).unwrap() > 0 {}
        assert!(w.residual_dependencies(b, pid).unwrap().is_empty());
        assert_eq!(w.fabric.reliability.drained_pages.get(), 6);
        // Drain traffic is its own ledger category.
        use cor_sim::LedgerCategory;
        assert!(w.fabric.ledger.total_for(LedgerCategory::Drain) > 6 * PAGE_SIZE);
    }

    #[test]
    fn flush_drain_then_crash_recovers_exact_bytes_from_disk() {
        // Reference: the same program with no crash at all.
        let (mut w0, _, b0, pid0, _) = owed_process(4);
        w0.run(b0, pid0).unwrap();
        let clean = w0.touched_checksum(b0, pid0).unwrap();

        let (mut w, a, b, pid, _) = owed_process(4);
        while w.drain_round(b, pid, DrainPolicy::flush(2)).unwrap() > 0 {}
        assert!(
            w.residual_dependencies(b, pid).unwrap().is_empty(),
            "flushed pages are crash-safe, so no residual dependency remains"
        );
        assert_eq!(w.fabric.disk_pages(a), 4);
        let now = w.clock.now();
        w.fabric.crash_node(now, &mut w.ports, a, false);
        let r = w.run(b, pid).unwrap();
        assert!(r.finished);
        assert_eq!(w.touched_checksum(b, pid).unwrap(), clean, "byte-identical");
        assert_eq!(w.fabric.reliability.pages_recovered.get(), 4);
        assert_eq!(w.fabric.reliability.pages_lost.get(), 0);
    }

    #[test]
    fn crash_without_drain_orphans_the_process_cleanly() {
        let (mut w, a, b, pid, _) = owed_process(5);
        let now = w.clock.now();
        w.fabric.crash_node(now, &mut w.ports, a, false);
        match w.run(b, pid) {
            Err(KernelError::OrphanedProcess {
                pid: p,
                node,
                lost_pages,
            }) => {
                assert_eq!(p, pid);
                assert_eq!(node, a);
                assert_eq!(lost_pages, 5, "every owed page is gone");
            }
            other => panic!("expected OrphanedProcess, got {other:?}"),
        }
        // Clean termination: status updated, references released, and the
        // world still settles.
        assert_eq!(w.process(b, pid).unwrap().pcb.status, RunStatus::Terminated);
        assert_eq!(w.fabric.reliability.pages_lost.get(), 5);
        assert!(w.fabric.reliability.crash_fast_fails.get() >= 1);
        w.settle().unwrap();
    }

    #[test]
    fn partial_drain_recovers_the_flushed_prefix_then_orphans() {
        let (mut w, a, b, pid, _) = owed_process(5);
        // Flush only pages 0 and 1, then lose node a.
        assert_eq!(w.drain_round(b, pid, DrainPolicy::flush(2)).unwrap(), 2);
        let now = w.clock.now();
        w.fabric.crash_node(now, &mut w.ports, a, false);
        match w.run(b, pid) {
            Err(KernelError::OrphanedProcess { lost_pages, .. }) => {
                assert_eq!(lost_pages, 3, "unflushed tail is lost");
            }
            other => panic!("expected OrphanedProcess, got {other:?}"),
        }
        assert_eq!(w.fabric.reliability.pages_recovered.get(), 2);
        assert_eq!(w.fabric.reliability.pages_lost.get(), 3);
    }

    #[test]
    fn drain_round_is_a_noop_for_local_and_exhausted_dependencies() {
        let (mut w, a, _) = World::testbed();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), 2 * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        tb.write(VAddr(0), 8);
        let pid = w.create_process(a, "local", space, tb.terminate()).unwrap();
        // Purely local process: nothing to drain in either mode.
        assert_eq!(w.drain_round(a, pid, DrainPolicy::prefetch(4)).unwrap(), 0);
        assert_eq!(w.drain_round(a, pid, DrainPolicy::flush(4)).unwrap(), 0);
        assert_eq!(w.drain_round(a, pid, DrainPolicy::flush(0)).unwrap(), 0);
        assert_eq!(w.fabric.reliability.drained_pages.get(), 0);
    }
}
