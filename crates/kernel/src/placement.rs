//! Fleet placement policies: where does an evicted process go?
//!
//! A migration storm (a draining node evicting every resident process
//! at once) needs a per-process destination decision. The [`Placement`]
//! trait captures that decision as a pure function of a [`PlacementCtx`]
//! snapshot — the candidate nodes, their current loads, and (when the
//! fabric is routed) the [`cor_net::Topology`] — so every policy is
//! deterministic and byte-identically replayable.
//!
//! Three policies ship with the kernel:
//!
//! * [`RoundRobin`] — rotate through the candidates, ignoring load and
//!   distance. The baseline.
//! * [`LeastLoaded`] — pick the candidate with the fewest resident
//!   processes; break ties with a seeded coin so no node is
//!   structurally favoured.
//! * [`LocalityAware`] — pick the candidate with the fewest topology
//!   hops from the source (falling back to [`LeastLoaded`] behaviour
//!   when the fabric has no topology), then fewest residents, then the
//!   seeded coin. Under a storm this concentrates post-migration fault
//!   traffic on short routes, which is exactly what the fleet sweep
//!   measures.

use std::collections::{BTreeMap, BTreeSet};

use cor_ipc::NodeId;
use cor_net::Topology;
use cor_sim::rng::Pcg32;

/// RNG stream id for placement tie-breaking (disjoint from the wire
/// fault stream and the topology route stream).
pub const PLACEMENT_STREAM: u64 = 0x97ACE;

/// Everything a policy may consult when choosing a destination.
///
/// Candidates never include the source (a storm is an *eviction*), and
/// arrive sorted by `NodeId` so iteration order is deterministic.
pub struct PlacementCtx<'a> {
    /// The draining node the process is leaving.
    pub source: NodeId,
    /// Possible destinations, sorted ascending, never containing
    /// `source`.
    pub candidates: &'a [NodeId],
    /// Resident-process counts per node (candidates may be absent,
    /// meaning zero).
    pub loads: &'a BTreeMap<NodeId, u64>,
    /// The routed interconnect, when the fabric has one.
    pub topology: Option<&'a Topology>,
    /// Nodes currently down under the fabric's crash plan. The
    /// load/locality policies never place a process on one of these;
    /// the storm driver journals each exclusion as a
    /// [`cor_trace::TraceEvent::PlacementSkip`].
    pub down: &'a BTreeSet<NodeId>,
    /// World seed for deterministic tie-breaking.
    pub seed: u64,
}

impl PlacementCtx<'_> {
    fn load_of(&self, node: NodeId) -> u64 {
        self.loads.get(&node).copied().unwrap_or(0)
    }

    fn hops_to(&self, node: NodeId) -> u32 {
        match self.topology {
            Some(t) => t.distance(self.source, node).unwrap_or(u32::MAX),
            None => 1,
        }
    }

    /// A per-decision coin keyed on (seed, source, pid-like salt, pair):
    /// stateless, so two runs of the same storm flip identical coins.
    fn coin(&self, salt: u64, a: NodeId, b: NodeId) -> bool {
        let key = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(((self.source.0 as u64) << 40) ^ ((a.0 as u64) << 20) ^ b.0 as u64)
            .wrapping_add(salt);
        let mut rng = Pcg32::with_stream(key, PLACEMENT_STREAM);
        rng.chance(0.5)
    }
}

/// A deterministic destination-selection policy.
///
/// `salt` is a per-decision discriminator (the storm passes the evicted
/// process id) so consecutive decisions within one storm do not all
/// break ties the same way.
pub trait Placement {
    /// Short name used in sweep tables and CSV.
    fn name(&self) -> &'static str;

    /// Chooses a destination; `None` only when `candidates` is empty.
    fn choose(&mut self, ctx: &PlacementCtx<'_>, salt: u64) -> Option<NodeId>;
}

/// Rotates through the candidate list, ignoring load and distance.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh rotor starting at the first candidate.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Placement for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn choose(&mut self, ctx: &PlacementCtx<'_>, _salt: u64) -> Option<NodeId> {
        if ctx.candidates.is_empty() {
            return None;
        }
        let pick = ctx.candidates[self.next % ctx.candidates.len()];
        self.next += 1;
        Some(pick)
    }
}

/// Picks the candidate with the fewest resident processes; seeded coin
/// on ties.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// The stateless least-loaded policy.
    pub fn new() -> Self {
        LeastLoaded
    }
}

impl Placement for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn choose(&mut self, ctx: &PlacementCtx<'_>, salt: u64) -> Option<NodeId> {
        pick_min(ctx, salt, |ctx, n| (ctx.load_of(n), 0))
    }
}

/// Picks the topologically nearest candidate, then the least loaded,
/// then the seeded coin. Without a topology every candidate is one hop
/// away and this degrades to [`LeastLoaded`].
#[derive(Debug, Default)]
pub struct LocalityAware;

impl LocalityAware {
    /// The stateless locality-aware policy.
    pub fn new() -> Self {
        LocalityAware
    }
}

impl Placement for LocalityAware {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn choose(&mut self, ctx: &PlacementCtx<'_>, salt: u64) -> Option<NodeId> {
        pick_min(ctx, salt, |ctx, n| (ctx.hops_to(n) as u64, ctx.load_of(n)))
    }
}

/// Shared argmin over a two-level key with the seeded coin as the final
/// tie-break. Candidates are scanned in sorted order, so the set of
/// coin flips is identical run to run. Candidates in `ctx.down` are
/// skipped outright — a crashed node is never a destination.
fn pick_min(
    ctx: &PlacementCtx<'_>,
    salt: u64,
    key: impl Fn(&PlacementCtx<'_>, NodeId) -> (u64, u64),
) -> Option<NodeId> {
    let mut best: Option<(NodeId, (u64, u64))> = None;
    for &cand in ctx.candidates {
        if ctx.down.contains(&cand) {
            continue;
        }
        let k = key(ctx, cand);
        best = Some(match best {
            None => (cand, k),
            Some((_, bk)) if k < bk => (cand, k),
            Some((b, bk)) if k == bk && ctx.coin(salt, b, cand) => (cand, k),
            Some(kept) => kept,
        });
    }
    best.map(|(n, _)| n)
}

#[cfg(test)]
mod tests {
    use super::*;

    static NO_DOWN: BTreeSet<NodeId> = BTreeSet::new();

    fn ctx<'a>(
        source: NodeId,
        candidates: &'a [NodeId],
        loads: &'a BTreeMap<NodeId, u64>,
        topology: Option<&'a Topology>,
    ) -> PlacementCtx<'a> {
        PlacementCtx {
            source,
            candidates,
            loads,
            topology,
            down: &NO_DOWN,
            seed: 7,
        }
    }

    #[test]
    fn round_robin_rotates() {
        let cands = [NodeId(1), NodeId(2), NodeId(3)];
        let loads = BTreeMap::new();
        let mut rr = RoundRobin::new();
        let picks: Vec<_> = (0..5)
            .map(|i| rr.choose(&ctx(NodeId(0), &cands, &loads, None), i).unwrap())
            .collect();
        assert_eq!(
            picks,
            [NodeId(1), NodeId(2), NodeId(3), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn least_loaded_prefers_empty_nodes() {
        let cands = [NodeId(1), NodeId(2), NodeId(3)];
        let loads: BTreeMap<NodeId, u64> =
            [(NodeId(1), 5), (NodeId(2), 0), (NodeId(3), 2)].into();
        let mut ll = LeastLoaded::new();
        assert_eq!(
            ll.choose(&ctx(NodeId(0), &cands, &loads, None), 0),
            Some(NodeId(2))
        );
    }

    #[test]
    fn locality_prefers_ring_neighbours() {
        // On an 8-ring, node 0's nearest candidates are 1 and 7.
        let topo = Topology::ring(8);
        let cands: Vec<NodeId> = (1..8).map(NodeId).collect();
        let loads = BTreeMap::new();
        let mut la = LocalityAware::new();
        let pick = la
            .choose(&ctx(NodeId(0), &cands, &loads, Some(&topo)), 0)
            .unwrap();
        assert!(pick == NodeId(1) || pick == NodeId(7), "picked {pick:?}");
    }

    #[test]
    fn locality_without_topology_matches_least_loaded() {
        let cands = [NodeId(1), NodeId(2), NodeId(3)];
        let loads: BTreeMap<NodeId, u64> =
            [(NodeId(1), 4), (NodeId(2), 1), (NodeId(3), 9)].into();
        let mut la = LocalityAware::new();
        let mut ll = LeastLoaded::new();
        for salt in 0..8 {
            assert_eq!(
                la.choose(&ctx(NodeId(0), &cands, &loads, None), salt),
                ll.choose(&ctx(NodeId(0), &cands, &loads, None), salt),
            );
        }
    }

    #[test]
    fn down_nodes_are_never_picked() {
        let cands = [NodeId(1), NodeId(2), NodeId(3)];
        // Node 2 is both the least loaded *and* down: every policy must
        // look past it.
        let loads: BTreeMap<NodeId, u64> =
            [(NodeId(1), 5), (NodeId(2), 0), (NodeId(3), 2)].into();
        let down: BTreeSet<NodeId> = [NodeId(2)].into();
        let topo = Topology::ring(4);
        for salt in 0..8 {
            let c = PlacementCtx {
                source: NodeId(0),
                candidates: &cands,
                loads: &loads,
                topology: None,
                down: &down,
                seed: 7,
            };
            assert_eq!(LeastLoaded::new().choose(&c, salt), Some(NodeId(3)));
            let c = PlacementCtx {
                topology: Some(&topo),
                ..c
            };
            let pick = LocalityAware::new().choose(&c, salt).unwrap();
            assert_ne!(pick, NodeId(2), "locality placed onto a down node");
        }
        // All candidates down: no destination at all.
        let all_down: BTreeSet<NodeId> = cands.iter().copied().collect();
        let c = PlacementCtx {
            source: NodeId(0),
            candidates: &cands,
            loads: &loads,
            topology: None,
            down: &all_down,
            seed: 7,
        };
        assert_eq!(LeastLoaded::new().choose(&c, 0), None);
    }

    #[test]
    fn tie_breaks_are_stable_across_runs() {
        let cands = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let loads = BTreeMap::new();
        let run = || {
            let mut ll = LeastLoaded::new();
            (0..16)
                .map(|salt| {
                    ll.choose(&ctx(NodeId(0), &cands, &loads, None), salt)
                        .unwrap()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
