//! Processes: the five Accent context components.
//!
//! Paper §3.1: "Accent contexts are divided into five components: the
//! state of the Perq microengine, the kernel stack if the process is
//! executing in supervisor mode, the PCB, the set of port rights owned by
//! the process and the virtual address space contents. While the first
//! four parts combined only account for roughly 1 Kbyte, the address space
//! contributes up to 4 gigabytes."

use std::collections::HashSet;

use cor_ipc::PortRight;
use cor_mem::{AddressSpace, PageNum};
use cor_sim::SimDuration;

use crate::program::Trace;

/// A process identifier, unique within a [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u64);

/// Scheduling status recorded in the PCB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Eligible to run.
    Ready,
    /// Currently executing.
    Running,
    /// Waiting on a fault or message.
    Blocked,
    /// Finished.
    Terminated,
}

/// The process control block.
#[derive(Debug, Clone)]
pub struct Pcb {
    /// Human-readable name ("Minprog", "Lisp-Del", ...).
    pub name: String,
    /// Scheduling status.
    pub status: RunStatus,
    /// Scheduling priority (carried but not used by the single-process
    /// trials).
    pub priority: u8,
    /// Next op index in the trace (the "program counter").
    pub trace_pos: usize,
}

/// Per-process execution measurements.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// FillZero faults serviced.
    pub zero_faults: u64,
    /// Local disk faults serviced.
    pub disk_faults: u64,
    /// Imaginary faults serviced.
    pub imag_faults: u64,
    /// Pages that arrived as prefetch (beyond the faulting page).
    pub prefetched_pages: u64,
    /// Prefetched pages later touched by the program.
    pub prefetch_hits: u64,
    /// Distinct pages the program has touched.
    pub touched: HashSet<PageNum>,
    /// Pages currently installed by prefetch and not yet touched.
    pub prefetch_pending: HashSet<PageNum>,
    /// Total modeled computation time executed.
    pub compute: SimDuration,
    /// Screen updates drawn.
    pub screen_updates: u64,
    /// Imaginary fault service-time distribution (1 ms buckets up to
    /// 1 s): the latency observability a pager operator actually wants.
    pub fault_times: Option<cor_sim::Histogram>,
}

impl ExecStats {
    /// Records one imaginary-fault service time.
    pub fn record_fault_time(&mut self, d: SimDuration) {
        self.fault_times
            .get_or_insert_with(|| cor_sim::Histogram::new(1_000, 1_000))
            .record_duration(d);
    }

    /// Mean imaginary-fault service time, if any were taken.
    pub fn mean_fault_time(&self) -> Option<SimDuration> {
        self.fault_times
            .as_ref()
            .filter(|h| h.count() > 0)
            .map(|h| SimDuration::from_micros(h.mean() as u64))
    }

    /// Prefetch hit ratio in `[0, 1]`, or `None` if nothing was prefetched.
    pub fn prefetch_hit_ratio(&self) -> Option<f64> {
        if self.prefetched_pages == 0 {
            None
        } else {
            Some(self.prefetch_hits as f64 / self.prefetched_pages as f64)
        }
    }

    /// Bytes of distinct pages touched.
    pub fn touched_bytes(&self) -> u64 {
        self.touched.len() as u64 * cor_mem::PAGE_SIZE
    }
}

/// A process: context plus its driving trace and measurements.
#[derive(Debug)]
pub struct Process {
    /// Identifier.
    pub id: ProcessId,
    /// Control block.
    pub pcb: Pcb,
    /// Microengine register state (opaque; carried verbatim by migration).
    pub microstate: Vec<u8>,
    /// Kernel stack contents, when in supervisor mode.
    pub kernel_stack: Vec<u8>,
    /// Port rights owned.
    pub rights: Vec<PortRight>,
    /// The virtual address space.
    pub space: AddressSpace,
    /// The driving trace.
    pub trace: Trace,
    /// Execution measurements.
    pub stats: ExecStats,
}

impl Process {
    /// Creates a ready process with the given name, space and trace.
    pub fn new(id: ProcessId, name: impl Into<String>, space: AddressSpace, trace: Trace) -> Self {
        // The microstate is deterministic, non-zero content so context
        // transfer fidelity is observable.
        let microstate: Vec<u8> = (0..512u32).map(|i| (i as u8) ^ (id.0 as u8)).collect();
        Process {
            id,
            pcb: Pcb {
                name: name.into(),
                status: RunStatus::Ready,
                priority: 10,
                trace_pos: 0,
            },
            microstate,
            kernel_stack: Vec::new(),
            rights: Vec::new(),
            space,
            trace,
            stats: ExecStats::default(),
        }
    }

    /// Whether execution has consumed the whole trace.
    pub fn finished(&self) -> bool {
        self.pcb.status == RunStatus::Terminated
    }

    /// Size in bytes of the non-address-space context (microstate, kernel
    /// stack, PCB, rights) — the "roughly 1 Kbyte" of paper §3.1.
    pub fn core_context_bytes(&self) -> u64 {
        self.microstate.len() as u64
            + self.kernel_stack.len() as u64
            + 128 // PCB encoding
            + 16 * self.rights.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Op;

    #[test]
    fn new_process_is_ready_at_trace_start() {
        let p = Process::new(
            ProcessId(1),
            "test",
            AddressSpace::new(),
            Trace::new(vec![Op::Terminate]),
        );
        assert_eq!(p.pcb.status, RunStatus::Ready);
        assert_eq!(p.pcb.trace_pos, 0);
        assert!(!p.finished());
        assert_eq!(p.microstate.len(), 512);
    }

    #[test]
    fn microstate_differs_by_pid() {
        let a = Process::new(ProcessId(1), "a", AddressSpace::new(), Trace::default());
        let b = Process::new(ProcessId(2), "b", AddressSpace::new(), Trace::default());
        assert_ne!(a.microstate, b.microstate);
    }

    #[test]
    fn core_context_is_about_a_kilobyte() {
        let mut p = Process::new(ProcessId(1), "x", AddressSpace::new(), Trace::default());
        p.rights = (0..30)
            .map(|i| PortRight {
                port: cor_ipc::PortId(i),
                right: cor_ipc::Right::Send,
            })
            .collect();
        let bytes = p.core_context_bytes();
        assert!((1000..2000).contains(&bytes), "got {bytes}");
    }

    #[test]
    fn prefetch_hit_ratio() {
        let mut s = ExecStats::default();
        assert!(s.prefetch_hit_ratio().is_none());
        s.prefetched_pages = 10;
        s.prefetch_hits = 4;
        assert_eq!(s.prefetch_hit_ratio(), Some(0.4));
    }
}
