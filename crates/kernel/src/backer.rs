//! User-level imaginary segment backers.
//!
//! "Any process may create an imaginary segment based on one of its ports
//! ... In effect, it transmits an IOU for the region's data, promising to
//! deliver it as needed" (paper §2.2). The NetMsgServer's automatic IOU
//! cache (in `cor-net`) is one backer; this trait lets *user-level*
//! processes — the MigrationManager actively managing an excised address
//! space, or any application lazily shipping data — serve their own
//! segments. The world routes `ImaginaryReadRequest`s arriving on a
//! registered backing port to the store and sends the replies.

use cor_mem::page::Frame;
use cor_mem::space::SegmentId;

/// A supplier of imaginary segment pages.
pub trait PageStore {
    /// Returns `count` frames starting `offset` pages into `seg`, or
    /// `None` if the store does not hold them (a protocol error surfaced
    /// by the world).
    fn fetch(&mut self, seg: SegmentId, offset: u64, count: u64) -> Option<Vec<Frame>>;

    /// The last reference to `seg` died; the store may release its data.
    fn death(&mut self, seg: SegmentId);

    /// Pages currently held across all live segments (for leak checks).
    fn pages_held(&self) -> u64;
}

/// A simple in-memory [`PageStore`]: one frame vector per segment.
#[derive(Debug, Default)]
pub struct VecStore {
    segments: std::collections::HashMap<SegmentId, Vec<Frame>>,
}

impl VecStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        VecStore::default()
    }

    /// Installs the data for a segment.
    pub fn insert(&mut self, seg: SegmentId, frames: Vec<Frame>) {
        self.segments.insert(seg, frames);
    }

    /// Whether the store still holds `seg`.
    pub fn holds(&self, seg: SegmentId) -> bool {
        self.segments.contains_key(&seg)
    }
}

impl PageStore for VecStore {
    fn fetch(&mut self, seg: SegmentId, offset: u64, count: u64) -> Option<Vec<Frame>> {
        let frames = self.segments.get(&seg)?;
        let end = offset.checked_add(count)? as usize;
        if end > frames.len() {
            return None;
        }
        Some(frames[offset as usize..end].to_vec())
    }

    fn death(&mut self, seg: SegmentId) {
        self.segments.remove(&seg);
    }

    fn pages_held(&self) -> u64 {
        self.segments.values().map(|v| v.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_mem::page::page_from_bytes;

    #[test]
    fn vec_store_serves_ranges() {
        let mut s = VecStore::new();
        let seg = SegmentId(1);
        s.insert(
            seg,
            (0..5)
                .map(|i| Frame::new(page_from_bytes(&[i as u8])))
                .collect(),
        );
        let got = s.fetch(seg, 2, 2).unwrap();
        assert_eq!(got.len(), 2);
        got[0].with(|d| assert_eq!(d[0], 2));
        got[1].with(|d| assert_eq!(d[0], 3));
        assert!(s.fetch(seg, 4, 2).is_none(), "out of range");
        assert!(s.fetch(SegmentId(9), 0, 1).is_none(), "unknown segment");
        assert_eq!(s.pages_held(), 5);
    }

    #[test]
    fn death_releases_data() {
        let mut s = VecStore::new();
        let seg = SegmentId(1);
        s.insert(seg, vec![Frame::zeroed()]);
        assert!(s.holds(seg));
        s.death(seg);
        assert!(!s.holds(seg));
        assert_eq!(s.pages_held(), 0);
    }
}
