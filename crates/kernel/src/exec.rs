//! The executor: trace-driven process execution on the virtual clock.
//!
//! Split out of `world.rs` by the actor-runtime refactor: this module
//! owns [`World::run`] and friends — the per-node instruction loop that
//! consumes [`crate::program::Op`]s, charges compute time, and feeds
//! memory touches to the pager.

use std::collections::HashMap;

use cor_ipc::NodeId;
use cor_mem::space::SegmentId;
use cor_mem::{PageNum, PageState};
use cor_sim::SimDuration;
use cor_trace::TraceEvent;

use crate::error::KernelError;
use crate::process::{ProcessId, RunStatus};
use crate::program::Op;
use crate::world::{ExecReport, World};

impl World {
    // ----- the executor ----------------------------------------------------

    /// Runs `pid` until it terminates.
    ///
    /// # Errors
    ///
    /// Execution failures, or [`KernelError::TraceUnderrun`] if the trace
    /// ends without `Terminate`.
    pub fn run(&mut self, node: NodeId, pid: ProcessId) -> Result<ExecReport, KernelError> {
        self.run_for(node, pid, usize::MAX)
    }

    /// Runs `pid` for at most `max_ops` trace ops (or to termination).
    /// Execution resumes from the PCB's trace position, so a process can be
    /// run partially, migrated, and resumed elsewhere.
    ///
    /// # Errors
    ///
    /// Execution failures, or [`KernelError::TraceUnderrun`] if the trace
    /// ends without `Terminate`.
    pub fn run_for(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        max_ops: usize,
    ) -> Result<ExecReport, KernelError> {
        // A milestone span per scheduling slice: at Summary level a trace
        // still shows when each process ran and for how long.
        let span = self.span_enter_milestone("exec", Some(node));
        let result = self.run_for_inner(node, pid, max_ops);
        self.span_exit(span);
        result
    }

    pub(crate) fn run_for_inner(
        &mut self,
        node: NodeId,
        pid: ProcessId,
        max_ops: usize,
    ) -> Result<ExecReport, KernelError> {
        let started_at = self.clock.now();
        {
            let process = self.process_mut(node, pid)?;
            process.pcb.status = RunStatus::Running;
        }
        let mut ops_executed = 0usize;
        let mut finished = false;
        while ops_executed < max_ops {
            let (op, op_index) = {
                let process = self.process_mut(node, pid)?;
                let idx = process.pcb.trace_pos;
                match process.trace.ops().get(idx) {
                    Some(op) => {
                        process.pcb.trace_pos += 1;
                        (op.clone(), idx)
                    }
                    None => return Err(KernelError::TraceUnderrun(pid)),
                }
            };
            ops_executed += 1;
            match op {
                Op::Touch { addr, len, write } => {
                    self.touch(node, pid, addr, len, write, op_index)?;
                }
                Op::Compute(d) => {
                    self.clock.advance(d);
                    self.process_mut(node, pid)?.stats.compute += d;
                }
                Op::ScreenUpdate => {
                    self.clock.advance(self.costs.screen_update);
                    self.process_mut(node, pid)?.stats.screen_updates += 1;
                }
                Op::Terminate => {
                    self.terminate(node, pid)?;
                    finished = true;
                    break;
                }
            }
        }
        if !finished {
            self.process_mut(node, pid)?.pcb.status = RunStatus::Ready;
        }
        self.note(|| TraceEvent::Exec {
            pid: pid.0,
            node,
            ops: ops_executed as u64,
            finished,
        });
        Ok(ExecReport {
            started_at,
            elapsed: self.clock.now().since(started_at),
            ops_executed,
            finished,
        })
    }

    /// Runs every ready process on `node` to completion, round-robin in
    /// slices of `slice_ops` trace ops — a minimal time-sharing scheduler
    /// for multi-process studies. Returns `(pid, total execution time)` in
    /// completion order, where the total sums that process's own slices.
    ///
    /// # Errors
    ///
    /// Any execution failure.
    ///
    /// # Panics
    ///
    /// Panics if `slice_ops` is zero (no slice could make progress).
    pub fn run_round_robin(
        &mut self,
        node: NodeId,
        slice_ops: usize,
    ) -> Result<Vec<(ProcessId, SimDuration)>, KernelError> {
        assert!(slice_ops > 0, "slices must make progress");
        let mut spent: HashMap<ProcessId, SimDuration> = HashMap::new();
        let mut finished = Vec::new();
        loop {
            let ready: Vec<ProcessId> = self
                .node(node)?
                .processes
                .values()
                .filter(|p| p.pcb.status != RunStatus::Terminated)
                .map(|p| p.id)
                .collect();
            if ready.is_empty() {
                return Ok(finished);
            }
            for pid in ready {
                let report = self.run_for(node, pid, slice_ops)?;
                let total = spent.entry(pid).or_insert(SimDuration::ZERO);
                *total += report.elapsed;
                if report.finished {
                    finished.push((pid, *total));
                }
            }
        }
    }

    /// Terminates `pid`: releases the references its address space holds on
    /// imaginary segments (never-touched owed pages), triggering segment
    /// deaths, and marks the PCB terminated. The address space itself is
    /// preserved for post-mortem inspection.
    ///
    /// # Errors
    ///
    /// Network failures during reference release.
    pub fn terminate(&mut self, node: NodeId, pid: ProcessId) -> Result<(), KernelError> {
        let mut owed: HashMap<SegmentId, u64> = HashMap::new();
        {
            let process = self.process_mut(node, pid)?;
            for (_, state) in process.space.materialized_pages() {
                if let PageState::Imaginary { seg, .. } = state {
                    *owed.entry(*seg).or_insert(0) += 1;
                }
            }
            process.pcb.status = RunStatus::Terminated;
        }
        let mut owed: Vec<(SegmentId, u64)> = owed.into_iter().collect();
        owed.sort_unstable_by_key(|&(s, _)| s);
        for (seg, pages) in owed {
            self.fabric.release_refs(
                &mut self.clock,
                &mut self.ports,
                &mut self.segs,
                node,
                seg,
                pages,
            )?;
        }
        self.settle()?;
        Ok(())
    }

    /// Clears `pid`'s touch and prefetch tracking. Experiments call this at
    /// a phase boundary (e.g. the moment of migration) so that
    /// [`ExecStats::touched`](crate::process::ExecStats) afterwards reports
    /// exactly the pages referenced *at the remote site* — the quantity
    /// Table 4-3 of the paper tabulates.
    ///
    /// # Errors
    ///
    /// Unknown node or process.
    pub fn reset_touch_tracking(
        &mut self,
        node: NodeId,
        pid: ProcessId,
    ) -> Result<(), KernelError> {
        let process = self.process_mut(node, pid)?;
        process.stats.touched.clear();
        process.stats.prefetch_pending.clear();
        Ok(())
    }

    /// A deterministic digest of the contents of every page `pid` has
    /// touched (in page order). Two runs of the same program — migrated or
    /// not, under any strategy — must agree.
    ///
    /// # Errors
    ///
    /// Unknown node/process, or internal state errors for touched pages
    /// that have no data.
    pub fn touched_checksum(&mut self, node: NodeId, pid: ProcessId) -> Result<u64, KernelError> {
        let mut pages: Vec<PageNum> = {
            let process = self.process(node, pid)?;
            process.stats.touched.iter().copied().collect()
        };
        pages.sort_unstable();
        let mut digest: u64 = 0xcbf29ce484222325;
        for page in pages {
            let n = self.node_mut(node)?;
            let process = n
                .processes
                .get_mut(&pid)
                .ok_or(KernelError::UnknownProcess(pid))?;
            let frame = process
                .space
                .peek_frame(page, &mut n.disk)
                .ok_or(KernelError::Mem(cor_mem::MemError::NotResident(page)))?;
            digest ^= page.0;
            digest = digest.wrapping_mul(0x100000001b3);
            frame.with(|data| {
                for &b in data.iter() {
                    digest ^= b as u64;
                    digest = digest.wrapping_mul(0x100000001b3);
                }
            });
        }
        Ok(digest)
    }

}
