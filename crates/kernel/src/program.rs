//! Trace-driven programs.
//!
//! Each representative process in the paper's evaluation is modeled as a
//! deterministic trace of operations. The executor replays the trace
//! against the real virtual memory system, so faults, copies and network
//! fetches happen mechanically — the trace encodes *what the program does*,
//! and the simulation derives *what that costs*.

use cor_mem::VAddr;
use cor_sim::SimDuration;

/// One step of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Touch `[addr, addr+len)`, reading or writing. Write-touches store
    /// deterministic bytes derived from the address and the trace position,
    /// so memory contents witness execution history (migration correctness
    /// tests rely on this).
    Touch {
        /// First byte touched.
        addr: VAddr,
        /// Number of bytes touched.
        len: u64,
        /// Whether the touch mutates memory.
        write: bool,
    },
    /// Pure computation for the given virtual time.
    Compute(SimDuration),
    /// One display update (Chess's ticking game clock, Lisp-Del's
    /// incremental triangulation graphics).
    ScreenUpdate,
    /// Normal termination. Must be the final op of every trace.
    Terminate,
}

/// A complete program trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// Creates a trace from ops.
    ///
    /// # Panics
    ///
    /// Panics if the trace is non-empty and `Terminate` appears anywhere
    /// but last, or if a non-empty trace lacks a final `Terminate`.
    pub fn new(ops: Vec<Op>) -> Self {
        if !ops.is_empty() {
            assert!(
                matches!(ops.last(), Some(Op::Terminate)),
                "a trace must end with Terminate"
            );
            assert!(
                !ops[..ops.len() - 1]
                    .iter()
                    .any(|o| matches!(o, Op::Terminate)),
                "Terminate must be the final op"
            );
        }
        Trace { ops }
    }

    /// Builder for growing traces.
    pub fn builder() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` for the empty trace.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total `Compute` time in the trace.
    pub fn compute_total(&self) -> SimDuration {
        self.ops
            .iter()
            .filter_map(|o| match o {
                Op::Compute(d) => Some(*d),
                _ => None,
            })
            .sum()
    }

    /// Total bytes named by `Touch` ops (with multiplicity).
    pub fn touched_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter_map(|o| match o {
                Op::Touch { len, .. } => Some(*len),
                _ => None,
            })
            .sum()
    }
}

/// Incremental [`Trace`] construction.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    ops: Vec<Op>,
}

impl TraceBuilder {
    /// Appends a read touch.
    pub fn read(&mut self, addr: VAddr, len: u64) -> &mut Self {
        self.ops.push(Op::Touch {
            addr,
            len,
            write: false,
        });
        self
    }

    /// Appends a write touch.
    pub fn write(&mut self, addr: VAddr, len: u64) -> &mut Self {
        self.ops.push(Op::Touch {
            addr,
            len,
            write: true,
        });
        self
    }

    /// Appends computation.
    pub fn compute(&mut self, d: SimDuration) -> &mut Self {
        self.ops.push(Op::Compute(d));
        self
    }

    /// Appends a screen update.
    pub fn screen(&mut self) -> &mut Self {
        self.ops.push(Op::ScreenUpdate);
        self
    }

    /// Appends `Terminate` and finishes the trace.
    pub fn terminate(&mut self) -> Trace {
        self.ops.push(Op::Terminate);
        Trace::new(std::mem::take(&mut self.ops))
    }
}

/// The deterministic byte pattern a write-touch stores: a function of the
/// byte's address and the index of the op that wrote it. Any divergence in
/// replayed history produces different memory contents.
pub fn write_pattern(addr: VAddr, op_index: usize) -> u8 {
    let x = addr
        .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(op_index as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x >> 56) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_terminated_trace() {
        let mut b = Trace::builder();
        b.read(VAddr(0), 100)
            .compute(SimDuration::from_millis(5))
            .write(VAddr(512), 8)
            .screen();
        let t = b.terminate();
        assert_eq!(t.len(), 5);
        assert!(matches!(t.ops().last(), Some(Op::Terminate)));
        assert_eq!(t.compute_total(), SimDuration::from_millis(5));
        assert_eq!(t.touched_bytes(), 108);
    }

    #[test]
    #[should_panic(expected = "end with Terminate")]
    fn unterminated_trace_rejected() {
        Trace::new(vec![Op::Compute(SimDuration::ZERO)]);
    }

    #[test]
    #[should_panic(expected = "final op")]
    fn early_terminate_rejected() {
        Trace::new(vec![Op::Terminate, Op::Terminate]);
    }

    #[test]
    fn write_pattern_is_deterministic_and_varied() {
        assert_eq!(write_pattern(VAddr(1000), 3), write_pattern(VAddr(1000), 3));
        let distinct: std::collections::HashSet<u8> = (0..64u64)
            .map(|i| write_pattern(VAddr(i * 7), i as usize))
            .collect();
        assert!(distinct.len() > 16, "pattern should vary");
    }
}
