//! Error type for kernel operations.

use std::fmt;

use cor_ipc::NodeId;
use cor_mem::{Fault, MemError, VAddr};
use cor_net::NetError;

use crate::process::ProcessId;

/// Errors from world/kernel operations.
#[derive(Debug)]
pub enum KernelError {
    /// A memory operation failed (a logic error, not a serviceable fault).
    Mem(MemError),
    /// A network/IPC operation failed.
    Net(NetError),
    /// The named node does not exist.
    UnknownNode(NodeId),
    /// The named process does not exist on the node.
    UnknownProcess(ProcessId),
    /// The process touched unvalidated memory — a true addressing error
    /// (*BadMem*). Accent would invoke the debugger; we surface it.
    AddressingViolation {
        /// The offending process.
        pid: ProcessId,
        /// The bad address.
        addr: VAddr,
    },
    /// An imaginary fault's reply never arrived (backing chain broken).
    NoReply {
        /// The fault that went unanswered.
        fault: Fault,
    },
    /// The wire gave up: every transmission attempt within the retry
    /// budget was lost. For a migrated process this usually means the
    /// residual source node — the site still backing its untouched pages —
    /// is unreachable, so copy-on-reference cannot make progress.
    SourceUnreachable {
        /// The node that was sending.
        from: NodeId,
        /// The node that never acknowledged.
        to: NodeId,
        /// Transmission attempts made before giving up.
        attempts: u32,
    },
    /// The process's trace is exhausted but it never executed
    /// [`crate::program::Op::Terminate`].
    TraceUnderrun(ProcessId),
    /// A message of an unexpected kind arrived on a registered backing
    /// port.
    UnexpectedMessage {
        /// The port it arrived on.
        port: cor_ipc::PortId,
    },
    /// An operation (e.g. `ExciseProcess`) required an active process but
    /// the target has terminated.
    ProcessNotActive(ProcessId),
    /// A kernel-context access targeted ImagMem: servicing the fault would
    /// require the backing process to run, which cannot happen while the
    /// caller holds the system critical section (paper §2.3). The
    /// accessibility map caught it before the deadlock.
    WouldDeadlock {
        /// The process whose memory was targeted.
        pid: ProcessId,
        /// The distantly-accessible address.
        addr: VAddr,
    },
    /// A node this process residually depended on crashed, and at least one
    /// owed page could not be recovered from the crashed node's
    /// crash-survivable disk backer. The process has been terminated
    /// cleanly (its remaining references released); the error reports the
    /// damage rather than panicking or hanging.
    OrphanedProcess {
        /// The orphaned (now terminated) process.
        pid: ProcessId,
        /// The crashed node that still owed pages.
        node: NodeId,
        /// Owed pages that are gone for good.
        lost_pages: u64,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Mem(e) => write!(f, "memory error: {e}"),
            KernelError::Net(e) => write!(f, "network error: {e}"),
            KernelError::UnknownNode(n) => write!(f, "unknown node {n}"),
            KernelError::UnknownProcess(p) => write!(f, "unknown process {}", p.0),
            KernelError::AddressingViolation { pid, addr } => {
                write!(f, "process {} referenced BadMem at {addr}", pid.0)
            }
            KernelError::NoReply { fault } => {
                write!(f, "no reply for imaginary fault {fault:?}")
            }
            KernelError::SourceUnreachable { from, to, attempts } => {
                write!(
                    f,
                    "node {to} unreachable from {from} after {attempts} attempts"
                )
            }
            KernelError::TraceUnderrun(p) => {
                write!(f, "process {} ran out of trace without terminating", p.0)
            }
            KernelError::UnexpectedMessage { port } => {
                write!(f, "unexpected message kind on backing {port}")
            }
            KernelError::ProcessNotActive(p) => {
                write!(f, "process {} has terminated", p.0)
            }
            KernelError::WouldDeadlock { pid, addr } => {
                write!(
                    f,
                    "kernel-context access to ImagMem at {addr} of process {} would deadlock",
                    pid.0
                )
            }
            KernelError::OrphanedProcess {
                pid,
                node,
                lost_pages,
            } => {
                write!(
                    f,
                    "process {} orphaned: {node} crashed holding {lost_pages} unrecoverable pages",
                    pid.0
                )
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl From<MemError> for KernelError {
    fn from(e: MemError) -> Self {
        KernelError::Mem(e)
    }
}

impl From<NetError> for KernelError {
    fn from(e: NetError) -> Self {
        match e {
            // Promote exhausted-retry failures to their own kernel-level
            // variant so migration drivers can degrade gracefully without
            // digging through the network layer.
            NetError::SourceUnreachable { from, to, attempts } => {
                KernelError::SourceUnreachable { from, to, attempts }
            }
            // A known-dead peer is the same condition reached without
            // burning a retry budget; `attempts: 0` marks the fast-fail.
            NetError::NodeDown { from, to } => KernelError::SourceUnreachable {
                from,
                to,
                attempts: 0,
            },
            e => KernelError::Net(e),
        }
    }
}

impl From<cor_ipc::port::PortError> for KernelError {
    fn from(e: cor_ipc::port::PortError) -> Self {
        KernelError::Net(NetError::Port(e))
    }
}

impl From<cor_ipc::segment::SegmentError> for KernelError {
    fn from(e: cor_ipc::segment::SegmentError) -> Self {
        KernelError::Net(NetError::Segment(e))
    }
}
