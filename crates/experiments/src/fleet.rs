//! Fleet sweep (ours): cluster size × topology × placement × storm.
//!
//! The paper measures one migration between two machines. This study
//! asks what happens at fleet scale: an N-node routed fabric
//! ([`cor_net::Topology`]) where a *migration storm* — draining nodes
//! evicting every resident process at once — stresses the interconnect
//! and the destination pagers simultaneously. Each cell reports
//! storm throughput, the p50/p99 of post-migration copy-on-reference
//! fault service (from `imag-fault` journal spans), total wire bytes,
//! the hottest link, and the mean hop count — the quantities that
//! separate a placement policy that respects the topology from one
//! that does not.
//!
//! Everything is deterministic: seeded topologies, seeded placement
//! tie-breaks, cells fanned across a [`Pool`] and rendered serially in
//! cell order, so output is byte-identical at any thread count.

use std::collections::BTreeSet;

use cor_ipc::NodeId;
use cor_kernel::placement::{LeastLoaded, LocalityAware, Placement, PlacementCtx, RoundRobin};
use cor_kernel::{CostModel, World};
use cor_mem::page::PAGE_SIZE;
use cor_mem::{AddressSpace, PageNum, VAddr};
use cor_migrate::{MigrationManager, Strategy};
use cor_net::{Topology, WireParams};
use cor_pool::Pool;
use cor_sim::{JournalLevel, SimDuration};
use cor_trace::LogHistogram;

use crate::render::{commas, secs, TextTable};

/// Seed for topology routing and placement tie-breaks; fixed for
/// reproducibility.
pub const FLEET_SEED: u64 = 0xF1EE7;

/// Pages per synthetic fleet process (written at the source, half read
/// back after migration — the manager-test workload shape).
const PROC_PAGES: u64 = 8;

/// How hard the storm blows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormIntensity {
    /// Table label.
    pub name: &'static str,
    /// One in `drain_every` nodes drains (2 = half the fleet).
    pub drain_every: u32,
    /// Processes resident on each draining node when the storm starts.
    pub procs_per_node: u32,
}

/// A moderate storm: a quarter of the fleet drains, lightly loaded.
pub const STORM_LOW: StormIntensity = StormIntensity {
    name: "low",
    drain_every: 4,
    procs_per_node: 4,
};

/// A heavy storm: half the fleet drains, heavily loaded. On 64 nodes
/// this is 32 × 16 = 512 concurrent migrations.
pub const STORM_HIGH: StormIntensity = StormIntensity {
    name: "high",
    drain_every: 2,
    procs_per_node: 16,
};

/// One cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct FleetSpec {
    /// Cluster size.
    pub nodes: u32,
    /// Topology name: `full-mesh`, `ring`, or `torus`.
    pub topology: &'static str,
    /// Placement name: `round-robin`, `least-loaded`, or `locality`.
    pub placement: &'static str,
    /// Storm intensity.
    pub storm: StormIntensity,
}

/// One cell's outcome.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The cell that produced it.
    pub spec: FleetSpec,
    /// Migrations the storm performed.
    pub migrations: u64,
    /// Migrated processes that ran to termination afterwards.
    pub survived: u64,
    /// Processes still resident on draining nodes after the storm
    /// (must be zero: a drain evicts everything).
    pub drain_residents_after: u64,
    /// Virtual time the storm itself took.
    pub storm_elapsed: SimDuration,
    /// Storm throughput (migrations per virtual second).
    pub throughput: f64,
    /// p50 of post-migration imaginary-fault service, in µs.
    pub fault_p50_us: u64,
    /// p99 of post-migration imaginary-fault service, in µs.
    pub fault_p99_us: u64,
    /// Faults observed.
    pub faults: u64,
    /// Total bytes ledgered to the wire.
    pub wire_bytes: u64,
    /// Per-link bytes summed over every traversed link (≥ `wire_bytes`
    /// on multi-hop topologies: every hop bills the full message).
    pub link_bytes: u64,
    /// Bytes over the hottest single link.
    pub max_link_bytes: u64,
    /// Mean hops per remote message.
    pub mean_hops: f64,
}

/// The sweep's cells: every topology × placement at 16 nodes under the
/// low storm, plus the 64-node heavy-storm showcase (512 concurrent
/// migrations) contrasting the topology-blind and topology-aware
/// policies on a torus.
pub fn cells() -> Vec<FleetSpec> {
    let mut v = Vec::new();
    for topology in ["full-mesh", "ring", "torus"] {
        for placement in ["round-robin", "least-loaded", "locality"] {
            v.push(FleetSpec {
                nodes: 16,
                topology,
                placement,
                storm: STORM_LOW,
            });
        }
    }
    for placement in ["round-robin", "locality"] {
        v.push(FleetSpec {
            nodes: 64,
            topology: "torus",
            placement,
            storm: STORM_HIGH,
        });
    }
    v
}

/// The 16-node slice of [`cells`] — what the reproduction gate and the
/// determinism tests run (the 64-node cells are the `fleet` command's
/// showcase).
pub fn gate_cells() -> Vec<FleetSpec> {
    cells().into_iter().filter(|c| c.nodes == 16).collect()
}

pub(crate) fn topology_for(name: &str, n: u32) -> Topology {
    let t = match name {
        "full-mesh" => Topology::full_mesh(n),
        "ring" => Topology::ring(n),
        "torus" => {
            let mut cols = 1;
            while (cols + 1) * (cols + 1) <= n {
                cols += 1;
            }
            assert_eq!(cols * cols, n, "torus cells use square clusters");
            Topology::torus(cols, cols)
        }
        other => panic!("unknown topology {other}"),
    };
    t.with_seed(FLEET_SEED)
}

pub(crate) fn placement_for(name: &str) -> Box<dyn Placement> {
    match name {
        "round-robin" => Box::new(RoundRobin::new()),
        "least-loaded" => Box::new(LeastLoaded::new()),
        "locality" => Box::new(LocalityAware::new()),
        other => panic!("unknown placement {other}"),
    }
}

/// Builds one synthetic fleet process on `node` and runs its write
/// phase there, leaving the read-back phase for after migration.
pub(crate) fn spawn_proc(world: &mut World, node: NodeId) -> cor_kernel::ProcessId {
    let mut space = AddressSpace::new();
    space.validate(VAddr(0), 4 * PROC_PAGES * PAGE_SIZE).unwrap();
    let mut tb = cor_kernel::Trace::builder();
    for i in 0..PROC_PAGES {
        tb.write(PageNum(i).base(), 64);
    }
    for i in 0..PROC_PAGES / 2 {
        tb.read(PageNum(i * 2).base(), 64);
    }
    let pid = world
        .create_process(node, "fleet", space, tb.terminate())
        .unwrap();
    world.run_for(node, pid, PROC_PAGES as usize).unwrap();
    pid
}

/// Runs one fleet cell: build the N-node routed world, load the
/// draining nodes, blow the storm (placement-chosen destinations,
/// pure-IOU with one page of prefetch), then run every migrant to
/// termination and harvest the metrics.
///
/// # Panics
///
/// Panics on internal simulation errors — a storm cell has no expected
/// failure mode.
pub fn run_cell(spec: FleetSpec) -> FleetOutcome {
    run_cell_inner(spec).0
}

/// Like [`run_cell`], but also returns the cell's critical-path
/// [`Profile`](cor_trace::Profile) (built from the world and fabric
/// journals) and the per-directed-link queue waits in microseconds —
/// the inputs of [`cor_trace::Profile::blame_csv`]. The actor runtime's
/// merge reconstructs all three byte-identically.
/// The fixed cell profiled by `experiments profile fleet` and the
/// latency baseline: 16-node ring under the low storm with least-loaded
/// placement — small enough to profile quickly, multi-hop enough that
/// every blame bucket (queue wait, wire transit, retransmit backoff)
/// is exercised.
pub fn blame_cell_spec() -> FleetSpec {
    FleetSpec {
        nodes: 16,
        topology: "ring",
        placement: "least-loaded",
        storm: STORM_LOW,
    }
}

/// Measured queue wait per link, keyed by `(src, dst)` — the shape
/// [`cor_trace::Profile::blame_csv`] takes for its per-link rows.
pub type LinkWaits = Vec<((NodeId, NodeId), u64)>;

pub fn run_cell_profiled(spec: FleetSpec) -> (FleetOutcome, cor_trace::Profile, LinkWaits) {
    let (outcome, world) = run_cell_inner(spec);
    let profile = cor_trace::Profile::from_journals(&world.journals());
    let links = world
        .fabric
        .link_stats()
        .iter()
        .map(|(&l, s)| (l, s.queue_wait.as_micros()))
        .collect();
    (outcome, profile, links)
}

fn run_cell_inner(spec: FleetSpec) -> (FleetOutcome, World) {
    let topo = topology_for(spec.topology, spec.nodes);
    let wire = WireParams {
        topology: Some(topo),
        ..WireParams::default()
    };
    let (mut world, nodes) = World::fleet(spec.nodes, CostModel::default(), wire);
    world.fabric.validate_plans().expect("a well-wired fleet");
    // Full journal: the p99 comes from `imag-fault` span durations.
    world.enable_journal_at(JournalLevel::Full);
    let managers: Vec<MigrationManager> = nodes
        .iter()
        .map(|&n| MigrationManager::new(&mut world, n))
        .collect();

    let drain_set: BTreeSet<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| n.0 % spec.storm.drain_every == 0)
        .collect();
    for &node in &drain_set {
        for _ in 0..spec.storm.procs_per_node {
            spawn_proc(&mut world, node);
        }
    }

    // The storm: every draining node evicts everything it hosts, one
    // placement decision per process against live load counts.
    let candidates: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| !drain_set.contains(n))
        .collect();
    let mut policy = placement_for(spec.placement);
    let storm_start = world.clock.now();
    let bytes_before = world.fabric.ledger.total();
    let mut migrations = 0u64;
    for &source in &drain_set {
        for pid in world.resident_pids(source).unwrap() {
            let loads = world.loads();
            let down = world.fabric.crashed_nodes();
            for &cand in &candidates {
                if down.contains(&cand) {
                    world.note(|| cor_trace::TraceEvent::PlacementSkip { node: cand, source });
                }
            }
            let ctx = PlacementCtx {
                source,
                candidates: &candidates,
                loads: &loads,
                topology: world.fabric.params.topology.as_ref(),
                down: &down,
                seed: FLEET_SEED,
            };
            let dest = policy.choose(&ctx, pid.0).expect("candidates exist");
            managers[source.0 as usize]
                .migrate_to(
                    &mut world,
                    &managers[dest.0 as usize],
                    pid,
                    Strategy::PureIou { prefetch: 1 },
                )
                .expect("storm migration");
            migrations += 1;
        }
    }
    let storm_elapsed = world.clock.now().since(storm_start);

    // Post-storm: every migrant resumes at its destination; the read
    // phase drives copy-on-reference faults back across the fabric.
    let mut survived = 0u64;
    for &node in &candidates {
        for pid in world.resident_pids(node).unwrap() {
            let report = world.run(node, pid).expect("post-storm run");
            if report.finished {
                survived += 1;
            }
        }
    }
    let drain_residents_after: u64 = drain_set
        .iter()
        .map(|&n| world.node_load(n).unwrap())
        .sum();

    let mut faults = LogHistogram::new();
    if let Some(journal) = &world.journal {
        for span in journal.spans() {
            if span.name == "imag-fault" {
                if let Some(d) = span.duration() {
                    faults.record_duration(d);
                }
            }
        }
    }
    let links = world.fabric.link_stats();
    let link_bytes: u64 = links.values().map(|s| s.bytes).sum();
    let max_link_bytes = links.values().map(|s| s.bytes).max().unwrap_or(0);
    let link_msgs: u64 = links.values().map(|s| s.msgs).sum();
    let remote_msgs = world.fabric.stats().msgs_remote;
    let outcome = FleetOutcome {
        spec,
        migrations,
        survived,
        drain_residents_after,
        storm_elapsed,
        throughput: migrations as f64 / storm_elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        fault_p50_us: faults.p50(),
        fault_p99_us: faults.p99(),
        faults: faults.count(),
        wire_bytes: world.fabric.ledger.total() - bytes_before,
        link_bytes,
        max_link_bytes,
        mean_hops: link_msgs as f64 / remote_msgs.max(1) as f64,
    };
    (outcome, world)
}

/// Computes the given cells in deterministic order, fanning across
/// `pool`.
pub fn fleet_outcomes_for(specs: Vec<FleetSpec>, pool: &Pool) -> Vec<FleetOutcome> {
    let jobs: Vec<_> = specs.into_iter().map(|spec| move || run_cell(spec)).collect();
    pool.run(jobs)
}

/// Computes every cell of [`cells`].
pub fn fleet_outcomes(pool: &Pool) -> Vec<FleetOutcome> {
    fleet_outcomes_for(cells(), pool)
}

/// Runs the sweep and renders the table (serial, cell-order rendering:
/// byte-identical at any thread count).
pub fn fleet(pool: &Pool) -> String {
    render_table(&fleet_outcomes(pool))
}

/// Renders outcomes as the human-readable fleet table (shared by the
/// lock-step and actor runtimes, so the two are diffable byte for
/// byte).
pub fn render_table(outcomes: &[FleetOutcome]) -> String {
    let mut t = TextTable::new(&[
        "nodes",
        "topology",
        "placement",
        "storm",
        "migs",
        "ok",
        "storm s",
        "migs/s",
        "p50 ms",
        "p99 ms",
        "wire bytes",
        "max link",
        "hops",
    ]);
    for o in outcomes {
        t.row(vec![
            o.spec.nodes.to_string(),
            o.spec.topology.to_string(),
            o.spec.placement.to_string(),
            o.spec.storm.name.to_string(),
            o.migrations.to_string(),
            o.survived.to_string(),
            secs(o.storm_elapsed.as_secs_f64()),
            format!("{:.2}", o.throughput),
            format!("{:.1}", o.fault_p50_us as f64 / 1_000.0),
            format!("{:.1}", o.fault_p99_us as f64 / 1_000.0),
            commas(o.wire_bytes),
            commas(o.max_link_bytes),
            format!("{:.2}", o.mean_hops),
        ]);
    }
    format!(
        "Fleet sweep (ours): migration storms on routed N-node fabrics\n\
         (draining nodes evict every resident process at once; pure-IOU with\n\
         one page of prefetch; destinations chosen per process by the named\n\
         placement policy; p50/p99 are post-migration imaginary-fault service\n\
         times from journal spans)\n\n{}",
        t.render()
    )
}

/// The sweep as CSV for downstream analysis.
pub fn fleet_csv(pool: &Pool) -> String {
    csv_for(&fleet_outcomes(pool))
}

/// Renders outcomes as CSV (split out so tests can diff slices).
pub fn csv_for(outcomes: &[FleetOutcome]) -> String {
    let mut out = String::from(
        "nodes,topology,placement,storm,migrations,survived,storm_s,\
         throughput,fault_p50_us,fault_p99_us,faults,wire_bytes,\
         link_bytes,max_link_bytes,mean_hops\n",
    );
    for o in outcomes {
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.6},{:.3},{},{},{},{},{},{},{:.4}\n",
            o.spec.nodes,
            o.spec.topology,
            o.spec.placement,
            o.spec.storm.name,
            o.migrations,
            o.survived,
            o.storm_elapsed.as_secs_f64(),
            o.throughput,
            o.fault_p50_us,
            o.fault_p99_us,
            o.faults,
            o.wire_bytes,
            o.link_bytes,
            o.max_link_bytes,
            o.mean_hops,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_drains_cleanly_with_no_orphans() {
        let o = run_cell(FleetSpec {
            nodes: 16,
            topology: "torus",
            placement: "locality",
            storm: STORM_LOW,
        });
        assert_eq!(o.migrations, 4 * 4, "a quarter of 16 nodes × 4 procs");
        assert_eq!(o.survived, o.migrations, "no migrant was orphaned");
        assert_eq!(o.drain_residents_after, 0, "drains evict everything");
        assert!(o.faults > 0, "the read phase faulted remotely");
        assert!(o.fault_p99_us >= o.fault_p50_us);
    }

    #[test]
    fn multi_hop_topologies_bill_every_link() {
        let torus = run_cell(FleetSpec {
            nodes: 16,
            topology: "torus",
            placement: "round-robin",
            storm: STORM_LOW,
        });
        assert!(
            torus.link_bytes > torus.wire_bytes,
            "some route took >1 hop: {} vs {}",
            torus.link_bytes,
            torus.wire_bytes
        );
        assert!(torus.mean_hops > 1.0);
        let mesh = run_cell(FleetSpec {
            nodes: 16,
            topology: "full-mesh",
            placement: "round-robin",
            storm: STORM_LOW,
        });
        assert_eq!(mesh.link_bytes, mesh.wire_bytes);
        assert!((mesh.mean_hops - 1.0).abs() < 1e-9);
    }

    #[test]
    fn locality_shortens_routes_on_a_torus() {
        let run = |placement| {
            run_cell(FleetSpec {
                nodes: 16,
                topology: "torus",
                placement,
                storm: STORM_LOW,
            })
        };
        let rr = run("round-robin");
        let local = run("locality");
        assert!(
            local.mean_hops <= rr.mean_hops,
            "locality {} vs round-robin {}",
            local.mean_hops,
            rr.mean_hops
        );
    }

    #[test]
    fn sweep_is_deterministic_across_threads_and_runs() {
        let slice = || fleet_outcomes_for(gate_cells(), &Pool::serial());
        let a = csv_for(&slice());
        let b = csv_for(&slice());
        assert_eq!(a, b, "two seeded runs are byte-identical");
        let pooled = csv_for(&fleet_outcomes_for(gate_cells(), &Pool::new(4)));
        assert_eq!(a, pooled, "thread count does not change the bytes");
        assert_eq!(a.lines().count(), 1 + gate_cells().len());
    }
}
