//! Aggregate claims (§4.3.3, §4.4) and the pre-copy ablation.

use cor_kernel::World;
use cor_mem::{AddressSpace, PageNum, PageRange, VAddr, PAGE_SIZE};
use cor_migrate::Strategy;
use cor_pool::Pool;
use cor_workloads::Workload;

use crate::render::{secs, TextTable};
use crate::runner::Matrix;

/// Measures the two fault-service constants of §4.3.3 with
/// microbenchmarks: a local disk fault and a remote imaginary fault.
pub fn constants() -> String {
    // Disk fault: a process with one paged-out page touches it.
    let disk_fault = {
        let (mut world, a, _) = World::testbed();
        let mut space = AddressSpace::new();
        space.validate(VAddr(0), PAGE_SIZE).unwrap();
        let mut tb = cor_kernel::program::Trace::builder();
        tb.read(VAddr(0), 8);
        let pid = world
            .create_process(a, "disk", space, tb.terminate())
            .unwrap();
        // Materialize and page out.
        {
            let n = world.node_mut(a).unwrap();
            let p = n.processes.get_mut(&pid).unwrap();
            p.space.fill_zero(PageNum(0), &mut n.disk).unwrap();
            p.space.page_out(PageNum(0), &mut n.disk);
        }
        let t0 = world.clock.now();
        world.run(a, pid).unwrap();
        world.clock.now().since(t0).as_secs_f64()
    };
    // Imaginary fault: one page owed by the remote NMS cache.
    let imag_fault = {
        let (mut world, a, b) = World::testbed();
        let nms_a = world.fabric.nms_port(a).unwrap();
        let seg = world.segs.create(nms_a, 1);
        world.segs.add_refs(seg, 1).unwrap();
        world
            .fabric
            .install_cache(a, seg, vec![cor_mem::page::Frame::zeroed()])
            .unwrap();
        let mut space = AddressSpace::new();
        space.map_imaginary(PageRange::new(PageNum(0), PageNum(1)), seg, 0);
        let mut tb = cor_kernel::program::Trace::builder();
        tb.read(VAddr(0), 8);
        let pid = world
            .create_process(b, "imag", space, tb.terminate())
            .unwrap();
        let t0 = world.clock.now();
        world.run(b, pid).unwrap();
        world.clock.now().since(t0).as_secs_f64()
    };
    format!(
        "Fault service constants (paper §4.3.3)\n\n\
         local disk fault:        {:.1} ms   (paper: 40.8 ms)\n\
         remote imaginary fault:  {:.1} ms   (paper: 115 ms)\n\
         ratio:                   {:.1}x     (paper: ~2.8x)\n",
        disk_fault * 1e3,
        imag_fault * 1e3,
        imag_fault / disk_fault
    )
}

/// The §4.4 aggregates: average byte-traffic and message-handling savings
/// of pure-IOU (no prefetch) over pure-copy across the representatives.
pub fn aggregates(matrix: &mut Matrix, workloads: &[Workload]) -> String {
    matrix.prefill(
        workloads,
        &[Strategy::PureCopy, Strategy::PureIou { prefetch: 0 }],
    );
    let mut byte_savings = Vec::new();
    let mut msg_savings = Vec::new();
    let mut t = TextTable::new(&[
        "process",
        "bytes IOU/copy",
        "saved%",
        "msgCPU IOU/copy",
        "saved%",
    ]);
    for w in workloads {
        let copy = matrix.trial(w, Strategy::PureCopy).clone();
        let iou = matrix.trial(w, Strategy::PureIou { prefetch: 0 }).clone();
        let bsave = 100.0 * (1.0 - iou.total_bytes as f64 / copy.total_bytes as f64);
        let msave = 100.0 * (1.0 - iou.msg_cpu.as_secs_f64() / copy.msg_cpu.as_secs_f64());
        byte_savings.push(bsave);
        msg_savings.push(msave);
        t.row(vec![
            w.name().into(),
            format!("{}K/{}K", iou.total_bytes / 1024, copy.total_bytes / 1024),
            format!("{bsave:.0}"),
            format!(
                "{}/{}",
                secs(iou.msg_cpu.as_secs_f64()),
                secs(copy.msg_cpu.as_secs_f64())
            ),
            format!("{msave:.0}"),
        ]);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    format!(
        "Aggregate savings of pure-IOU (no prefetch) over pure-copy (§4.4)\n\n{}\n\
         average byte savings:    {:.1}%   (paper: 58.2%)\n\
         average message savings: {:.1}%   (paper: 47.8%)\n",
        t.render(),
        avg(&byte_savings),
        avg(&msg_savings)
    )
}

/// Our ablation: V-system-style pre-copy against the paper's strategies,
/// by downtime, end-to-end time, and wire traffic.
pub fn ablation(workloads: &[Workload], pool: &Pool) -> String {
    const STRATEGIES: [Strategy; 3] = [
        Strategy::PureCopy,
        Strategy::PureIou { prefetch: 1 },
        Strategy::PreCopy {
            max_rounds: 5,
            stop_pages: 8,
        },
    ];
    let jobs: Vec<_> = workloads
        .iter()
        .flat_map(|w| STRATEGIES.map(|s| move || crate::runner::run_trial(w, s)))
        .collect();
    let trials = pool.run(jobs);
    let mut t = TextTable::new(&[
        "process",
        "copy down",
        "iou1 down",
        "precopy down",
        "copy bytes",
        "precopy bytes",
        "rounds",
    ]);
    for (i, w) in workloads.iter().enumerate() {
        let [copy, iou, pre] = &trials[3 * i..3 * i + 3] else {
            unreachable!("three trials per workload");
        };
        t.row(vec![
            w.name().into(),
            secs(copy.migration.downtime().as_secs_f64()),
            secs(iou.migration.downtime().as_secs_f64()),
            secs(pre.migration.downtime().as_secs_f64()),
            format!("{}K", copy.total_bytes / 1024),
            format!("{}K", pre.total_bytes / 1024),
            format!("{}", pre.migration.precopy_rounds.len()),
        ]);
    }
    format!(
        "Ablation: iterative pre-copy (V system, paper §5) vs the paper's strategies\n\
         (downtime = time the process is stopped; pre-copy shrinks downtime by\n\
         overlapping transfer rounds with execution, but pays the full copy\n\
         plus dirty retransmissions — copy-on-reference avoids the bulk\n\
         transfer entirely)\n\n{}",
        t.render()
    )
}

/// Fitzgerald's copy-on-write observation (paper §2.1): "up to 99.98% of
/// data passed between processes in a system-building application did not
/// have to be physically copied." We replay a system-building exchange —
/// a producer passes large out-of-line messages to a consumer on the same
/// node, who reads everything and modifies only a sliver — and measure
/// the physically copied fraction under increasing write rates.
pub fn cow_study() -> String {
    use cor_kernel::program::Trace;
    use cor_mem::page::{page_from_bytes, Frame};
    let mut t = TextTable::new(&["write rate", "bytes passed", "bytes copied", "uncopied%"]);
    for &write_pct in &[0.0f64, 0.02, 0.1, 1.0, 10.0] {
        let (mut world, a, _) = World::testbed();
        // The "compiler" emits 10,000 pages of object code across 50
        // messages; the "linker" maps each message COW and reads it all.
        let pages_per_msg = 200u64;
        let msgs = 50u64;
        let total_pages = pages_per_msg * msgs;
        let mut space = AddressSpace::new();
        let mut tb = Trace::builder();
        let mut writes = 0u64;
        let write_every = if write_pct > 0.0 {
            (100.0 / write_pct).round() as u64
        } else {
            u64::MAX
        };
        // The sender keeps its own mapping of every frame for the whole
        // exchange, so the receiver's writes must trigger deferred copies.
        let mut sender_mappings: Vec<Frame> = Vec::new();
        {
            let node = world.node_mut(a).unwrap();
            for m in 0..msgs {
                for i in 0..pages_per_msg {
                    let page = PageNum(m * pages_per_msg + i);
                    // Message transfer: the receiver maps the sender's
                    // frame copy-on-write (what Accent IPC does for
                    // over-threshold data).
                    let frame = Frame::new(page_from_bytes(&page.0.to_le_bytes()));
                    sender_mappings.push(frame.clone());
                    space.install_page(page, frame, &mut node.disk);
                    if (page.0 + 1).is_multiple_of(write_every) {
                        tb.write(page.base(), 16); // relocation patch
                        writes += 1;
                    } else {
                        tb.read(page.base(), PAGE_SIZE);
                    }
                }
            }
        }
        let _ = writes;
        let pid = world
            .create_process(a, "linker", space, tb.terminate())
            .unwrap();
        world.run(a, pid).unwrap();
        let copied = world.process(a, pid).unwrap().space.cow_copies() * PAGE_SIZE;
        let passed = total_pages * PAGE_SIZE;
        t.row(vec![
            format!("{write_pct}%"),
            format!("{}K", passed / 1024),
            format!("{}K", copied / 1024),
            format!("{:.2}", 100.0 * (1.0 - copied as f64 / passed as f64)),
        ]);
    }
    format!(
        "Copy-on-write study (paper §2.1, after Fitzgerald):\n\
         data passed by IPC message vs. bytes physically copied\n\n{}\n\
         paper: up to 99.98% of passed data never physically copied\n",
        t.render()
    )
}

/// Per-representative migration speedup headline (§4.3.2): how many times
/// faster the pure-IOU address-space transfer is than pure-copy.
pub fn transfer_speedups(matrix: &mut Matrix, workloads: &[Workload]) -> String {
    matrix.prefill(
        workloads,
        &[Strategy::PureIou { prefetch: 0 }, Strategy::PureCopy],
    );
    let mut t = TextTable::new(&["process", "copy/iou transfer ratio", "paper ratio"]);
    for w in workloads {
        let iou = matrix
            .trial(w, Strategy::PureIou { prefetch: 0 })
            .migration
            .timings
            .rimas_transfer
            .as_secs_f64();
        let copy = matrix
            .trial(w, Strategy::PureCopy)
            .migration
            .timings
            .rimas_transfer
            .as_secs_f64();
        t.row(vec![
            w.name().into(),
            format!("{:.0}x", copy / iou),
            format!("{:.0}x", w.paper.xfer_copy_s / w.paper.xfer_iou_s),
        ]);
    }
    format!(
        "Address-space transfer speedups, pure-IOU over pure-copy (§4.3.2)\n\n{}",
        t.render()
    )
}

/// Sensitivity sweep over the synthetic workload space: where exactly is
/// the paper's breakeven? §4.3.4 puts it "around one-quarter of the
/// process RealMem" for the 1987 cost ratios; this sweep derives the
/// whole surface — end-to-end speedup of pure-IOU (pf=1) over pure-copy
/// as a function of touched fraction and access locality.
pub fn sensitivity(pool: &Pool) -> String {
    use cor_workloads::synth::SynthSpec;
    const TOUCHED: [f64; 7] = [0.05, 0.15, 0.25, 0.35, 0.5, 0.7, 0.9];
    // One job per (touched, locality) point; each builds its own synthetic
    // workload and compares pure-copy vs IOU end-to-end on its own worlds.
    let jobs: Vec<_> = TOUCHED
        .iter()
        .flat_map(|&touched| {
            [0.95, 0.1].map(|locality| {
                move || -> f64 {
                    let w = SynthSpec {
                        name: "sweep",
                        seed: 42,
                        real_pages: 600,
                        realzero_pages: 600,
                        runs: 12,
                        resident_pages: 150,
                        touched_fraction: touched,
                        locality,
                        compute_ms: 20_000,
                        write_fraction: 0.2,
                    }
                    .build();
                    let copy = crate::runner::run_trial(&w, Strategy::PureCopy);
                    let iou = crate::runner::run_trial(&w, Strategy::PureIou { prefetch: 1 });
                    let c = copy.end_to_end().as_secs_f64();
                    let i = iou.end_to_end().as_secs_f64();
                    100.0 * (c - i) / c
                }
            })
        })
        .collect();
    let speedups = pool.run(jobs);
    let mut t = TextTable::new(&["touched%", "seq speedup%", "random speedup%"]);
    let mut breakeven: Option<f64> = None;
    let mut prev_positive = true;
    for (i, &touched) in TOUCHED.iter().enumerate() {
        let (seq, rnd) = (speedups[2 * i], speedups[2 * i + 1]);
        if prev_positive && rnd < 0.0 && breakeven.is_none() {
            breakeven = Some(touched);
        }
        prev_positive = rnd >= 0.0;
        t.row(vec![
            format!("{:.0}", touched * 100.0),
            format!("{seq:+.0}"),
            format!("{rnd:+.0}"),
        ]);
    }
    let note = match breakeven {
        Some(b) => format!(
            "random-access workloads stop profiting near {:.0}% touched",
            b * 100.0
        ),
        None => "copy-on-reference won across the whole sweep".to_string(),
    };
    format!(
        "Sensitivity: IOU (pf=1) end-to-end speedup over pure-copy\n\
         across touched fraction x locality (600 real pages, 20 s compute)\n\n{}\n\
         {note}; the paper (§4.3.4) reports breakeven around 25% of RealMem\n\
         for its no-prefetch configuration.\n",
        t.render()
    )
}

/// Narrates one migration trial through the event journal: every fault,
/// wire crossing, and lifecycle transition of a copy-on-reference
/// migration, in virtual-time order.
pub fn trace_demo(workload_name: &str) -> String {
    use cor_migrate::MigrationManager;
    let Some(w) = cor_workloads::by_name(workload_name) else {
        return format!(
            "unknown workload {workload_name}; try one of {:?}",
            cor_workloads::all()
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
        );
    };
    let (mut world, a, b) = World::testbed();
    world.enable_journal();
    let src = MigrationManager::new(&mut world, a);
    let dst = MigrationManager::new(&mut world, b);
    let pid = w.build(&mut world, a).expect("build");
    src.migrate_to(&mut world, &dst, pid, Strategy::PureIou { prefetch: 1 })
        .expect("migrate");
    world.run(b, pid).expect("run");
    let journal = world.journal.as_ref().expect("journal");
    let total = journal.len();
    let head: String = journal
        .events()
        .iter()
        .take(12)
        .map(|e| format!("{:>12} {:<9} {}\n", e.at.to_string(), e.kind(), e.detail()))
        .collect();
    format!(
        "Event journal of a pure-IOU (pf=1) migration of {workload_name}\n\
         ({total} events; first 12 and last 12 shown)\n\n{head}    ...\n{}",
        journal.render_tail(12)
    )
}

/// Cost parameters resembling 2020s hardware: gigabit networking, NVMe
/// paging, microsecond kernel paths. Used by the what-if study.
pub fn modern_params() -> (cor_kernel::CostModel, cor_net::WireParams) {
    use cor_sim::SimDuration;
    let costs = cor_kernel::CostModel {
        fault_dispatch: SimDuration::from_micros(5),
        fill_zero_service: SimDuration::from_micros(2),
        disk_service: SimDuration::from_micros(80),
        map_in: SimDuration::from_micros(2),
        map_in_extra: SimDuration::from_micros(1),
        backer_service: SimDuration::from_micros(5),
        screen_update: SimDuration::from_micros(500),
        amap_base: SimDuration::from_micros(500),
        amap_per_entry: SimDuration::from_micros(1),
        rimas_base: SimDuration::from_micros(400),
        rimas_per_resident_page: SimDuration::from_micros(2),
        rimas_per_real_page: SimDuration::from_micros(1),
        excise_fixed: SimDuration::from_micros(100),
        insert_base: SimDuration::from_micros(500),
        insert_per_run: SimDuration::from_micros(2),
        insert_per_page: SimDuration::from_micros(1),
    };
    let wire = cor_net::WireParams {
        per_byte_ns: 8, // ~1 Gbps effective
        per_message: SimDuration::from_micros(50),
        per_run: SimDuration::from_micros(10),
        nms_service: SimDuration::from_micros(5),
        iou_cache_per_page_ns: 200,
        per_right: SimDuration::from_micros(10),
        frag_payload: 8960, // jumbo frames
        frag_header: 80,
        msg_cpu_fixed: SimDuration::from_micros(2),
        msg_cpu_per_byte_ns: 1,
        local_delivery: SimDuration::from_micros(5),
        ..cor_net::WireParams::default()
    };
    (costs, wire)
}

/// What-if study: the paper's tradeoff under 2020s constants. The
/// network/disk cost *ratio* collapsed (a remote page fetch is no longer
/// 2.8x a local disk fault — with NVMe vs gigabit it is roughly parity),
/// which is exactly why post-copy/lazy migration (CRIU lazy-pages, QEMU
/// post-copy) remains standard today: the transfer-time savings survive
/// and the remote-execution penalty shrank.
pub fn modern_study(workloads: &[Workload], pool: &Pool) -> String {
    let (costs, wire) = modern_params();
    let jobs: Vec<_> = workloads
        .iter()
        .flat_map(|w| {
            [Strategy::PureIou { prefetch: 1 }, Strategy::PureCopy].map(|s| {
                let costs = costs.clone();
                let wire = wire.clone();
                move || crate::runner::run_trial_with(w, s, costs, wire)
            })
        })
        .collect();
    let trials = pool.run(jobs);
    let mut t = TextTable::new(&[
        "process",
        "IOU xfer",
        "copy xfer",
        "IOU exec",
        "copy exec",
        "IOU e2e gain%",
    ]);
    for (i, w) in workloads.iter().enumerate() {
        let (iou, copy) = (&trials[2 * i], &trials[2 * i + 1]);
        let iou_e2e = iou.end_to_end().as_secs_f64();
        let copy_e2e = copy.end_to_end().as_secs_f64();
        t.row(vec![
            w.name().into(),
            format!(
                "{:.1}ms",
                iou.migration.timings.rimas_transfer.as_millis_f64()
            ),
            format!(
                "{:.1}ms",
                copy.migration.timings.rimas_transfer.as_millis_f64()
            ),
            secs(iou.exec_elapsed.as_secs_f64()),
            secs(copy.exec_elapsed.as_secs_f64()),
            format!("{:+.1}", 100.0 * (copy_e2e - iou_e2e) / copy_e2e),
        ]);
    }
    format!(
        "What-if: the same workloads under 2020s constants\n\
         (gigabit wire, NVMe paging, microsecond kernel paths; the 1987\n\
         compute budgets are kept, so exec columns are compute-dominated)\n\n{}\n\
         The lazy strategy still wins the transfer phase outright, and with\n\
         the fault/disk cost ratio near parity the remote-execution penalty\n\
         that produced the paper's Pasmac slowdowns has largely vanished —\n\
         the 2026 reading of why post-copy migration survived.\n",
        t.render()
    )
}

/// Demonstrates the §6 automatic-migration policy: a three-node system
/// with every job started on node 0, rebalanced by the dispersion-aware
/// greedy balancer.
pub fn policy_demo() -> String {
    use cor_kernel::program::Trace;
    use cor_migrate::policy::{node_loads, Balancer};
    use cor_migrate::MigrationManager;
    use cor_sim::SimDuration;
    use std::collections::HashMap;

    let mut world = World::new(Default::default(), Default::default());
    let nodes: Vec<_> = (0..3).map(|_| world.add_node()).collect();
    let managers: HashMap<_, _> = nodes
        .iter()
        .map(|&n| (n, MigrationManager::new(&mut world, n)))
        .collect();
    let mut jobs = Vec::new();
    for j in 0..6u64 {
        let pages = 50 + j * 8;
        let mut space = AddressSpace::with_frame_budget(24);
        space.validate(VAddr(0), 2 * pages * PAGE_SIZE).unwrap();
        let mut tb = Trace::builder();
        for i in 0..pages {
            tb.write(PageNum(i).base(), 128);
            tb.compute(SimDuration::from_millis(300));
        }
        let pid = world
            .create_process(nodes[0], "job", space, tb.terminate())
            .unwrap();
        world.run_for(nodes[0], pid, pages as usize).unwrap();
        jobs.push((nodes[0], pid));
    }
    let render_loads = |world: &World| -> String {
        node_loads(world)
            .expect("loads")
            .iter()
            .map(|l| {
                format!(
                    "  {}: {} runnable (score {:.2})\n",
                    l.node,
                    l.runnable,
                    l.score()
                )
            })
            .collect()
    };
    let before = render_loads(&world);
    let balancer = Balancer::default();
    let mut log = String::new();
    let mut moves = 0;
    while let Some((mv, report)) = balancer
        .rebalance_step(&mut world, &managers)
        .expect("step")
    {
        moves += 1;
        log.push_str(&format!(
            "  move {moves}: pid{} {} -> {} ({} transfer, {} pages owed)\n",
            mv.pid.0, mv.from, mv.to, report.timings.rimas_transfer, report.owed_pages
        ));
        for job in &mut jobs {
            if job.1 == mv.pid {
                job.0 = mv.to;
            }
        }
        if moves >= 10 {
            break;
        }
    }
    let after = render_loads(&world);
    let mut busy: HashMap<_, f64> = HashMap::new();
    for &(node, pid) in &jobs {
        let r = world.run(node, pid).expect("run");
        *busy.entry(node).or_insert(0.0) += r.elapsed.as_secs_f64();
    }
    let makespan = busy.values().cloned().fold(0.0f64, f64::max);
    let serial: f64 = busy.values().sum();
    format!(
        "Automatic migration policy (paper §6 future work)\n\n\
         before:\n{before}\nmoves:\n{log}\nafter:\n{after}\n\
         per-node busy time sums to {serial:.1}s; as-if-parallel makespan {makespan:.1}s\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_land_near_the_paper() {
        let out = constants();
        // Parse back the ratio line loosely: it must be between 2 and 4.
        let ratio_line = out.lines().find(|l| l.contains("ratio")).unwrap();
        let ratio: f64 = ratio_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!((2.0..4.0).contains(&ratio), "{out}");
        assert!(out.contains("40.8 ms"), "{out}");
    }
}
