//! Regeneration of Tables 4-1 through 4-5.

use cor_kernel::World;
use cor_migrate::Strategy;
use cor_workloads::Workload;

use crate::render::{commas, secs, TextTable};
use crate::runner::Matrix;

fn pct(n: f64, d: f64) -> String {
    if d == 0.0 {
        "-".into()
    } else {
        format!("{:.1}", 100.0 * n / d)
    }
}

fn opt_pct(v: Option<f64>) -> String {
    v.map(|x| {
        if x < 0.01 {
            format!("{x:.3}")
        } else {
            format!("{x:.1}")
        }
    })
    .unwrap_or_else(|| "n/a".into())
}

/// Table 4-1: representative address-space sizes in bytes.
pub fn table4_1(workloads: &[Workload]) -> String {
    let mut t = TextTable::new(&["process", "Real", "RealZ", "Total", "%RealZ", "paper%RealZ"]);
    for w in workloads {
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).expect("build");
        let st = world.process(a, pid).expect("process").space.stats();
        t.row(vec![
            w.name().into(),
            commas(st.real_bytes),
            commas(st.realzero_bytes),
            commas(st.total_bytes()),
            format!("{:.1}", st.realzero_pct()),
            format!("{:.1}", 100.0 * w.paper.realz as f64 / w.paper.total as f64),
        ]);
    }
    format!(
        "Table 4-1: Representative Address Space Sizes in Bytes\n\n{}",
        t.render()
    )
}

/// Table 4-2: resident sets at migration time.
pub fn table4_2(workloads: &[Workload]) -> String {
    let mut t = TextTable::new(&["process", "RS bytes", "%of Real", "%of Total", "paper RS"]);
    for w in workloads {
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).expect("build");
        let st = world.process(a, pid).expect("process").space.stats();
        t.row(vec![
            w.name().into(),
            commas(st.resident_bytes),
            pct(st.resident_bytes as f64, st.real_bytes as f64),
            pct(st.resident_bytes as f64, st.total_bytes() as f64),
            commas(w.paper.rs),
        ]);
    }
    format!("Table 4-2: Representative Resident Sets\n\n{}", t.render())
}

/// Table 4-3: percent of address space accessed at the new site, for
/// pure-IOU and resident-set (no prefetch).
pub fn table4_3(matrix: &mut Matrix, workloads: &[Workload]) -> String {
    matrix.prefill(
        workloads,
        &[
            Strategy::PureIou { prefetch: 0 },
            Strategy::ResidentSet { prefetch: 0 },
        ],
    );
    let mut t = TextTable::new(&[
        "process",
        "IOU %Real",
        "[%Total]",
        "paper",
        "RS %Real",
        "[%Total]",
        "paper",
    ]);
    for w in workloads {
        let iou = matrix.trial(w, Strategy::PureIou { prefetch: 0 }).clone();
        let rs = matrix
            .trial(w, Strategy::ResidentSet { prefetch: 0 })
            .clone();
        t.row(vec![
            w.name().into(),
            pct(iou.touched_real_pages as f64, iou.real_pages as f64),
            format!(
                "[{}]",
                opt_pct(Some(
                    100.0 * iou.touched_real_pages as f64 / iou.total_pages as f64
                ))
            ),
            opt_pct(w.paper.iou_pct_real),
            pct(rs.rs_union_pages as f64, rs.real_pages as f64),
            format!(
                "[{}]",
                opt_pct(Some(
                    100.0 * rs.rs_union_pages as f64 / rs.total_pages as f64
                ))
            ),
            opt_pct(w.paper.rs_pct_real),
        ]);
    }
    format!(
        "Table 4-3: Percent of Address Space Accessed\n\
         (pure-copy ships 100% of RealMem by definition)\n\n{}",
        t.render()
    )
}

/// Table 4-4: process excision times (AMap construction, RIMAS creation,
/// overall), plus the insertion-time range of §4.3.1.
pub fn table4_4(matrix: &mut Matrix, workloads: &[Workload]) -> String {
    matrix.prefill(workloads, &[Strategy::PureIou { prefetch: 0 }]);
    let mut t = TextTable::new(&[
        "process",
        "AMap",
        "RIMAS",
        "Overall",
        "paper(A/R/O)",
        "Insert",
    ]);
    let mut inserts: Vec<(String, f64)> = Vec::new();
    for w in workloads {
        let trial = matrix.trial(w, Strategy::PureIou { prefetch: 0 }).clone();
        let tm = trial.migration.timings;
        inserts.push((w.name().into(), tm.insert_total.as_secs_f64()));
        t.row(vec![
            w.name().into(),
            secs(tm.excise_amap.as_secs_f64()),
            secs(tm.excise_rimas.as_secs_f64()),
            secs(tm.excise_total.as_secs_f64()),
            format!(
                "{}/{}/{}",
                secs(w.paper.excise_amap_s),
                secs(w.paper.excise_rimas_s),
                secs(w.paper.excise_total_s)
            ),
            format!("{:.0}ms", tm.insert_total.as_secs_f64() * 1e3),
        ]);
    }
    let min = inserts
        .iter()
        .cloned()
        .reduce(|a, b| if b.1 < a.1 { b } else { a })
        .unwrap();
    let max = inserts
        .iter()
        .cloned()
        .reduce(|a, b| if b.1 > a.1 { b } else { a })
        .unwrap();
    format!(
        "Table 4-4: Process Excision Times in Seconds\n\n{}\n\
         Insertion range: {:.0} ms ({}) to {:.0} ms ({}); paper: 263 ms (Minprog) to 853 ms (Lisp-Del)\n",
        t.render(),
        min.1 * 1e3,
        min.0,
        max.1 * 1e3,
        max.0
    )
}

/// Table 4-5: RIMAS (address space) transfer times under the three
/// strategies.
pub fn table4_5(matrix: &mut Matrix, workloads: &[Workload]) -> String {
    matrix.prefill(
        workloads,
        &[
            Strategy::PureIou { prefetch: 0 },
            Strategy::ResidentSet { prefetch: 0 },
            Strategy::PureCopy,
        ],
    );
    let mut t = TextTable::new(&["process", "Pure-IOU", "RS", "Copy", "paper(IOU/RS/Copy)"]);
    for w in workloads {
        let iou = matrix
            .trial(w, Strategy::PureIou { prefetch: 0 })
            .migration
            .timings
            .rimas_transfer
            .as_secs_f64();
        let rs = matrix
            .trial(w, Strategy::ResidentSet { prefetch: 0 })
            .migration
            .timings
            .rimas_transfer
            .as_secs_f64();
        let copy = matrix
            .trial(w, Strategy::PureCopy)
            .migration
            .timings
            .rimas_transfer
            .as_secs_f64();
        t.row(vec![
            w.name().into(),
            secs(iou),
            secs(rs),
            secs(copy),
            format!(
                "{}/{}/{}",
                secs(w.paper.xfer_iou_s),
                secs(w.paper.xfer_rs_s),
                secs(w.paper.xfer_copy_s)
            ),
        ]);
    }
    format!(
        "Table 4-5: Address Space Transfer Times in Seconds\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_1_matches_paper_exactly() {
        let workloads = cor_workloads::all();
        let out = table4_1(&workloads);
        // Spot checks against the published bytes.
        assert!(out.contains("4,228,129,280"), "{out}");
        assert!(out.contains("142,336"), "{out}");
        assert!(out.contains("99.9"), "{out}");
    }

    #[test]
    fn table4_2_matches_paper_exactly() {
        let workloads = cor_workloads::all();
        let out = table4_2(&workloads);
        assert!(out.contains("190,464"), "{out}");
        assert!(out.contains("71,680"), "{out}");
    }

    #[test]
    fn table4_5_preserves_orderings() {
        // Run only Minprog to keep the test quick: IOU < RS < Copy.
        let w = cor_workloads::minprog::workload();
        let mut m = Matrix::new();
        let iou = m
            .trial(&w, Strategy::PureIou { prefetch: 0 })
            .migration
            .timings
            .rimas_transfer;
        let rs = m
            .trial(&w, Strategy::ResidentSet { prefetch: 0 })
            .migration
            .timings
            .rimas_transfer;
        let copy = m
            .trial(&w, Strategy::PureCopy)
            .migration
            .timings
            .rimas_transfer;
        assert!(iou < rs && rs < copy, "iou {iou} rs {rs} copy {copy}");
    }
}
