//! Plain-text table and chart rendering.

/// Formats a byte count with thousands separators, as the paper prints
/// them (e.g. `4,228,129,280`).
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats seconds to a sensible precision.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 10.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.2}")
    }
}

/// A simple fixed-width text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns: first column left, rest right.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                width[i] = width[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}", w = width[0]));
                } else {
                    line.push_str(&format!("  {cell:>w$}", w = width[i]));
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders a horizontal bar of `value` scaled against `max` into `width`
/// characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().max(0.0) as usize;
    "#".repeat(n.min(width))
}

/// Renders a signed bar: `+` glyphs rightward for positive values, `-`
/// glyphs for negative, scaled against `max_abs`.
pub fn signed_bar(value: f64, max_abs: f64, width: usize) -> String {
    if max_abs <= 0.0 {
        return String::new();
    }
    let n = ((value.abs() / max_abs) * width as f64).round() as usize;
    let n = n.min(width);
    if value >= 0.0 {
        format!("+{}", "#".repeat(n))
    } else {
        format!("-{}", "=".repeat(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comma_formatting() {
        assert_eq!(commas(0), "0");
        assert_eq!(commas(999), "999");
        assert_eq!(commas(1_000), "1,000");
        assert_eq!(commas(4_228_129_280), "4,228,129,280");
    }

    #[test]
    fn secs_precision() {
        assert_eq!(secs(0.163), "0.16");
        assert_eq!(secs(25.8), "25.8");
        assert_eq!(secs(157.2), "157");
    }

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].starts_with("long-name"));
        assert!(lines[2].ends_with('1'));
    }

    #[test]
    fn bars() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(signed_bar(5.0, 10.0, 10), "+#####");
        assert_eq!(signed_bar(-5.0, 10.0, 10), "-=====");
        assert_eq!(bar(100.0, 10.0, 10), "##########", "clamped");
    }
}
