//! Replication sweep (ours): replication factor × crash delay × strategy.
//!
//! The survivability sweep shows the §4.4 residual-dependency hazard and
//! how *draining* races it. This study attacks the same hazard from the
//! other side: replicated page homes (`docs/REPLICATION.md`). Migration
//! page-out write-throughs every owed page to `f` deterministic replica
//! nodes; a copy-on-reference fault whose primary home is dead fails
//! over to a surviving replica content-addressed, so the process never
//! drains, never orphans, and never even notices the crash beyond the
//! failover fetch latency. Each cell migrates a workload, kills the
//! source at a swept delay, and reports survival, byte-identity against
//! a crash-free twin, the failover fetch count/pages/latency, and the
//! wire-byte overhead the replication write-through cost (ledgered under
//! its own category, so the paper tables are untouched).

use cor_kernel::{CostModel, KernelError, World};
use cor_migrate::{MigrationManager, Strategy};
use cor_net::{CrashPlan, ReplicationParams, WireParams};
use cor_pool::Pool;
use cor_sim::{LedgerCategory, SimDuration};
use cor_workloads::Workload;

use crate::render::{commas, secs, TextTable};

/// Crash delays after migration completes, in milliseconds.
pub const CRASH_DELAYS_MS: [u64; 2] = [1_000, 10_000];

/// Seed for the sweep's crash and replica-placement RNG streams; fixed
/// for reproducibility.
const SWEEP_SEED: u64 = 0x9EB1;

/// The swept `(factor, mode)` combinations. `f = 0` is the unreplicated
/// baseline (mode is meaningless there and labeled "none").
pub const FACTOR_MODES: [(u64, &str); 5] = [
    (0, "none"),
    (1, "primary-backup"),
    (1, "quorum"),
    (2, "primary-backup"),
    (2, "quorum"),
];

/// The strategies compared; pure-copy owes nothing (immune baseline),
/// the two lazy strategies carry the residual-dependency hazard the
/// replicas must absorb.
fn strategies() -> [Strategy; 3] {
    [
        Strategy::PureCopy,
        Strategy::PureIou { prefetch: 0 },
        Strategy::ResidentSet { prefetch: 0 },
    ]
}

fn replication_for(factor: u64, mode: &str) -> Option<ReplicationParams> {
    match (factor, mode) {
        (0, _) => None,
        (f, "quorum") => Some(ReplicationParams::quorum(f, SWEEP_SEED)),
        (f, _) => Some(ReplicationParams::primary_backup(f, SWEEP_SEED)),
    }
}

/// One cell's outcome.
#[derive(Debug, Clone)]
pub struct ReplicationOutcome {
    /// Replication factor (extra page homes beyond the primary).
    pub factor: u64,
    /// Mode label: "none", "primary-backup" or "quorum".
    pub mode: &'static str,
    /// Crash delay after migration.
    pub delay: SimDuration,
    /// Strategy under test.
    pub strategy: Strategy,
    /// Whether the process ran to termination despite the crash.
    pub survived: bool,
    /// Whether its touched memory matched the crash-free twin byte for
    /// byte (`false` while orphaned — there is nothing to compare).
    pub checksum_match: bool,
    /// Owed pages lost for good.
    pub pages_lost: u64,
    /// Page copies installed on replica homes at page-out.
    pub replicated_pages: u64,
    /// Healthy-path reads served by a replica (quorum nearest-routing).
    pub replica_reads: u64,
    /// Fetches promoted to a replica because the primary was down.
    pub failover_fetches: u64,
    /// Owed pages those failover fetches delivered.
    pub failover_pages: u64,
    /// Total virtual time spent in failover fetches (recovery latency).
    pub failover_time: SimDuration,
    /// Wire bytes ledgered to the replication category (write-through
    /// plus replica fetches).
    pub replicate_bytes: u64,
    /// Post-migration wall time.
    pub remote_elapsed: SimDuration,
}

/// Runs one replication cell: four nodes (source, destination, and a
/// two-node replica pool), one migration, then — when `crash` is true —
/// a seeded [`CrashPlan`] kills the source `delay` after migration while
/// the process executes at the destination. No draining runs: survival
/// must come from the replicas alone.
///
/// # Panics
///
/// Panics on internal simulation errors other than the expected
/// [`KernelError::OrphanedProcess`] outcome.
fn run_cell(
    workload: &Workload,
    strategy: Strategy,
    factor: u64,
    mode: &'static str,
    delay: SimDuration,
    crash: bool,
) -> (Option<u64>, ReplicationOutcome) {
    let params = WireParams {
        replication: replication_for(factor, mode),
        ..WireParams::default()
    };
    let mut world = World::new(CostModel::default(), params);
    let a = world.add_node();
    let b = world.add_node();
    // Two spare nodes so even f = 2 has live homes after the crash.
    let _pool0 = world.add_node();
    let _pool1 = world.add_node();
    let src = MigrationManager::new(&mut world, a);
    let dst = MigrationManager::new(&mut world, b);
    let pid = workload.build(&mut world, a).expect("workload build");
    src.migrate_to(&mut world, &dst, pid, strategy)
        .expect("migration");
    world.reset_touch_tracking(b, pid).expect("tracking reset");
    let migration_end = world.clock.now();
    if crash {
        world.fabric.params.crashes =
            Some(CrashPlan::at_time(SWEEP_SEED, a, migration_end + delay));
    }
    let run = world.run(b, pid);
    let rel = &world.fabric.reliability;
    let mut outcome = ReplicationOutcome {
        factor,
        mode,
        delay,
        strategy,
        survived: false,
        checksum_match: false,
        pages_lost: rel.pages_lost.get(),
        replicated_pages: rel.replicated_pages.get(),
        replica_reads: rel.replica_reads.get(),
        failover_fetches: rel.failover_fetches.get(),
        failover_pages: rel.failover_pages.get(),
        failover_time: rel.failover_time,
        replicate_bytes: world.fabric.ledger.total_for(LedgerCategory::Replicate),
        remote_elapsed: world.clock.now().since(migration_end),
    };
    match run {
        Ok(report) => {
            assert!(report.finished, "run ended without terminating");
            outcome.survived = true;
            let sum = world.touched_checksum(b, pid).expect("checksum");
            (Some(sum), outcome)
        }
        Err(KernelError::OrphanedProcess { .. }) => (None, outcome),
        Err(e) => panic!("unexpected replication-cell failure: {e}"),
    }
}

/// Computes every cell in deterministic order, fanning the independent
/// `(factor, mode, delay, strategy)` simulations across `pool`. Each
/// cell also runs a crash-free twin for the byte-identity check.
///
/// # Panics
///
/// Panics if `workloads` is empty or a cell fails internally.
pub fn replication_outcomes(workloads: &[Workload], pool: &Pool) -> Vec<ReplicationOutcome> {
    let w = workloads
        .iter()
        .find(|w| w.name() == "Minprog")
        .unwrap_or(&workloads[0]);
    let cells: Vec<(u64, &'static str, u64, Strategy)> = FACTOR_MODES
        .iter()
        .flat_map(|&(f, m)| {
            CRASH_DELAYS_MS
                .iter()
                .flat_map(move |&ms| strategies().map(|s| (f, m, ms, s)))
        })
        .collect();
    let jobs: Vec<_> = cells
        .iter()
        .map(|&(factor, mode, ms, strategy)| {
            move || {
                let delay = SimDuration::from_millis(ms);
                let (clean, _) = run_cell(w, strategy, factor, mode, delay, false);
                let (crashed, mut outcome) = run_cell(w, strategy, factor, mode, delay, true);
                outcome.checksum_match = match (crashed, clean) {
                    (Some(c), Some(k)) => c == k,
                    _ => false,
                };
                outcome
            }
        })
        .collect();
    pool.run(jobs)
}

/// Runs the sweep and renders the table (serial, cell-order rendering:
/// byte-identical at any thread count).
///
/// # Panics
///
/// As for [`replication_outcomes`].
pub fn replication(workloads: &[Workload], pool: &Pool) -> String {
    let outcomes = replication_outcomes(workloads, pool);
    let w = workloads
        .iter()
        .find(|w| w.name() == "Minprog")
        .unwrap_or(&workloads[0]);
    let mut t = TextTable::new(&[
        "f",
        "mode",
        "crash+s",
        "strategy",
        "survived",
        "bytes",
        "lost",
        "repl pages",
        "near reads",
        "failovers",
        "fo pages",
        "fo time s",
        "repl bytes",
        "remote s",
    ]);
    for o in &outcomes {
        t.row(vec![
            o.factor.to_string(),
            o.mode.to_string(),
            secs(o.delay.as_secs_f64()),
            o.strategy.family().to_string(),
            if o.survived { "yes" } else { "ORPHANED" }.to_string(),
            if o.checksum_match { "match" } else { "-" }.to_string(),
            o.pages_lost.to_string(),
            o.replicated_pages.to_string(),
            o.replica_reads.to_string(),
            o.failover_fetches.to_string(),
            o.failover_pages.to_string(),
            secs(o.failover_time.as_secs_f64()),
            commas(o.replicate_bytes),
            secs(o.remote_elapsed.as_secs_f64()),
        ]);
    }
    format!(
        "Replication (ours): {} under a source crash at +delay after migration\n\
         (replicated page homes with content-addressed fetch-from-anywhere; no\n\
         draining — survival comes from failover to a live replica alone)\n\n{}",
        w.name(),
        t.render()
    )
}

/// The sweep as CSV for downstream analysis.
///
/// # Panics
///
/// As for [`replication_outcomes`].
pub fn replication_csv(workloads: &[Workload], pool: &Pool) -> String {
    let outcomes = replication_outcomes(workloads, pool);
    let mut out = String::from(
        "factor,mode,crash_delay_s,strategy,survived,checksum_match,pages_lost,\
         replicated_pages,replica_reads,failover_fetches,failover_pages,\
         failover_time_s,replicate_bytes,remote_s\n",
    );
    for o in &outcomes {
        out.push_str(&format!(
            "{},{},{:.3},{},{},{},{},{},{},{},{},{:.6},{},{:.4}\n",
            o.factor,
            o.mode,
            o.delay.as_secs_f64(),
            o.strategy.family(),
            o.survived,
            o.checksum_match,
            o.pages_lost,
            o.replicated_pages,
            o.replica_reads,
            o.failover_fetches,
            o.failover_pages,
            o.failover_time.as_secs_f64(),
            o.replicate_bytes,
            o.remote_elapsed.as_secs_f64(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes() -> Vec<ReplicationOutcome> {
        replication_outcomes(&[cor_workloads::minprog::workload()], &Pool::serial())
    }

    #[test]
    fn sweep_renders_and_is_deterministic_across_thread_counts() {
        let workloads = vec![cor_workloads::minprog::workload()];
        let serial = replication(&workloads, &Pool::serial());
        assert!(serial.contains("survived"));
        let rows = serial.lines().filter(|l| l.contains("pure-")).count();
        assert_eq!(rows, FACTOR_MODES.len() * CRASH_DELAYS_MS.len() * 2);
        assert_eq!(
            serial,
            replication(&workloads, &Pool::new(4)),
            "pooled sweep is byte-identical to serial"
        );
        let csv = replication_csv(&workloads, &Pool::new(2));
        assert_eq!(csv, replication_csv(&workloads, &Pool::serial()));
        assert_eq!(
            csv.lines().count(),
            1 + FACTOR_MODES.len() * CRASH_DELAYS_MS.len() * strategies().len()
        );
    }

    #[test]
    fn any_replication_factor_survives_every_single_node_crash() {
        for o in outcomes().iter().filter(|o| o.factor >= 1) {
            assert!(o.survived, "f>=1 must never orphan: {o:?}");
            assert!(o.checksum_match, "survivor must be byte-identical: {o:?}");
            assert_eq!(o.pages_lost, 0, "{o:?}");
        }
    }

    #[test]
    fn unreplicated_baseline_still_shows_the_hazard() {
        let all = outcomes();
        let orphans = all.iter().filter(|o| o.factor == 0 && !o.survived).count();
        assert!(orphans >= 1, "the f=0 hazard must be visible");
        for o in all.iter().filter(|o| o.factor == 0 && !o.survived) {
            assert!(o.pages_lost > 0, "an orphan lost something: {o:?}");
        }
    }

    #[test]
    fn replication_overhead_grows_with_factor() {
        let all = outcomes();
        let bytes_at = |f: u64| -> u64 {
            all.iter()
                .filter(|o| o.factor == f)
                .map(|o| o.replicate_bytes)
                .sum()
        };
        assert_eq!(bytes_at(0), 0, "no plan, no replicate bytes");
        let f1 = bytes_at(1);
        let f2 = bytes_at(2);
        assert!(f1 > 0, "f=1 write-through costs bytes");
        assert!(f2 > f1, "f=2 must cost more than f=1: {f2} vs {f1}");
    }

    #[test]
    fn failover_fetches_carry_the_lazy_strategies_through_the_crash() {
        let all = outcomes();
        let fo: u64 = all
            .iter()
            .filter(|o| o.factor >= 1)
            .map(|o| o.failover_pages)
            .sum();
        assert!(fo >= 1, "at least one cell must actually fail over");
        for o in all.iter().filter(|o| o.failover_fetches > 0) {
            assert!(
                o.failover_time > SimDuration::ZERO,
                "failover latency is measured on the clock: {o:?}"
            );
        }
    }
}
