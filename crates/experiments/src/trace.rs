//! Traced trials: one migration + remote execution with the typed
//! journal enabled, exported as Chrome/Perfetto `trace.json`, JSONL, or a
//! per-node metrics report.
//!
//! This is the observability companion to [`crate::runner`]: the same
//! fixed-seed deterministic trial, but instead of reducing to scalar
//! measurements it keeps the full causal record — every span from
//! `migration` down to individual `xmit-attempt`s — and renders it for
//! offline analysis. Load the Perfetto output at <https://ui.perfetto.dev>
//! (virtual time, one track per node).

use cor_ipc::NodeId;
use cor_kernel::{RuntimeKind, World};
use cor_migrate::{MigrationManager, Strategy};
use cor_sim::runtime::{run_serial, NodeRuntime};
use cor_sim::JournalLevel;
use cor_trace::{MetricsRegistry, Profile};
use cor_workloads::Workload;

/// The journal verbosity for experiment runs, from the `COR_JOURNAL`
/// environment variable: `off`, `summary`, or `full` (default `full` for
/// the dedicated trace commands; sweeps that only need milestones pass
/// [`JournalLevel::Summary`] explicitly).
///
/// # Panics
///
/// Panics on an unrecognized value — a typo'd level silently tracing
/// nothing would be worse.
pub fn journal_level_from_env(default: JournalLevel) -> JournalLevel {
    match std::env::var("COR_JOURNAL") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "off" => JournalLevel::Off,
            "summary" => JournalLevel::Summary,
            "full" => JournalLevel::Full,
            other => panic!("COR_JOURNAL must be off|summary|full, got {other:?}"),
        },
        Err(_) => default,
    }
}

/// A completed traced trial: the world is kept alive so its journals and
/// ledgers can be exported in any format.
pub struct TracedTrial {
    /// The simulated world, post-trial (journals, ledger, stats intact).
    pub world: World,
    /// Workload name.
    pub workload: &'static str,
    /// Imaginary faults the process took at the remote site.
    pub imag_faults: u64,
    /// Remote execution ops.
    pub ops: u64,
}

/// Runs one pure-IOU (pf=1) migration trial of `workload` with the typed
/// journal enabled at `level`, on the default 1987-calibrated testbed.
/// Deterministic: same workload + level → byte-identical journals.
///
/// # Panics
///
/// Panics if the simulation reports an internal error (trials are
/// deterministic, so this indicates a bug).
pub fn traced_trial(workload: &Workload, level: JournalLevel) -> TracedTrial {
    traced_trial_with_runtime(workload, level, RuntimeKind::from_env())
}

/// The three causal phases of a traced trial, as events on the per-node
/// runtimes when the actor runtime drives it.
#[derive(Debug, Clone, Copy)]
enum TracePhase {
    Build,
    Migrate,
    Run,
}

/// [`traced_trial`] under an explicit [`RuntimeKind`]. Both runtimes
/// make the identical call sequence against the identical world (the
/// actor runtime pops Build → Migrate → Run off the per-node event
/// queues in `(node, seq)` order), so the journals — and every export
/// and profile built from them — are byte-identical.
pub fn traced_trial_with_runtime(
    workload: &Workload,
    level: JournalLevel,
    runtime: RuntimeKind,
) -> TracedTrial {
    let (mut world, a, b) = World::testbed();
    world.enable_journal_at(level);
    let src = MigrationManager::new(&mut world, a);
    let dst = MigrationManager::new(&mut world, b);
    let mut pid = None;
    let mut exec = None;
    let mut phases = |world: &mut World, phase: TracePhase| match phase {
        TracePhase::Build => {
            pid = Some(workload.build(world, a).expect("workload build"));
        }
        TracePhase::Migrate => {
            src.migrate_to(
                world,
                &dst,
                pid.expect("built"),
                Strategy::PureIou { prefetch: 1 },
            )
            .expect("migration");
        }
        TracePhase::Run => {
            exec = Some(world.run(b, pid.expect("built")).expect("remote execution"));
        }
    };
    match runtime {
        RuntimeKind::Lockstep => {
            phases(&mut world, TracePhase::Build);
            phases(&mut world, TracePhase::Migrate);
            phases(&mut world, TracePhase::Run);
        }
        RuntimeKind::Actor => {
            let mut rts: Vec<NodeRuntime<TracePhase>> =
                (0..2).map(|n| NodeRuntime::new(n, 0)).collect();
            let t0 = world.clock.now();
            rts[a.0 as usize].post(t0, TracePhase::Build);
            rts[a.0 as usize].post(t0, TracePhase::Migrate);
            rts[b.0 as usize].post(t0, TracePhase::Run);
            run_serial(&mut rts, |_, _, _, phase| phases(&mut world, phase));
        }
    }
    let pid = pid.expect("built");
    let exec = exec.expect("ran");
    let imag_faults = world.process(b, pid).expect("process").stats.imag_faults;
    TracedTrial {
        world,
        workload: workload.name(),
        imag_faults,
        ops: exec.ops_executed as u64,
    }
}

impl TracedTrial {
    /// The trial's journals rendered as a Chrome/Perfetto `trace.json`
    /// document (virtual-time microseconds; one process track per node).
    pub fn perfetto(&self) -> String {
        let end_us = self.world.clock.now().as_micros();
        cor_trace::export::perfetto(&self.world.journals(), end_us)
    }

    /// The trial's journals as JSON Lines (one span or event per line).
    pub fn jsonl(&self) -> String {
        cor_trace::export::jsonl(&self.world.journals())
    }

    /// The per-node metrics registry at trial end.
    pub fn metrics(&self) -> MetricsRegistry {
        self.world.metrics_registry()
    }

    /// The trial's critical-path profile: every closed span's duration
    /// decomposed into exact blame buckets (integer virtual time).
    pub fn profile(&self) -> Profile {
        Profile::from_journals(&self.world.journals())
    }

    /// Per-link queue-wait totals in microseconds, for the link rows of
    /// the blame CSV.
    pub fn link_waits(&self) -> Vec<((NodeId, NodeId), u64)> {
        self.world
            .fabric
            .link_stats()
            .iter()
            .map(|(&l, s)| (l, s.queue_wait.as_micros()))
            .collect()
    }

    /// A short human summary for stderr alongside an export.
    pub fn describe(&self) -> String {
        let journals = self.world.journals();
        let events: usize = journals.iter().map(|(_, j)| j.len()).sum();
        let spans: usize = journals.iter().map(|(_, j)| j.spans().len()).sum();
        format!(
            "{}: {} events, {} spans, {} imaginary faults, end at {}",
            self.workload,
            events,
            spans,
            self.imag_faults,
            self.world.clock.now()
        )
    }
}

/// Resolves a workload by name (case-sensitive, as printed by the paper
/// tables), or an error string listing the valid names.
pub fn workload_by_name(name: &str) -> Result<Workload, String> {
    cor_workloads::by_name(name).ok_or_else(|| {
        format!(
            "unknown workload {name}; try one of {:?}",
            cor_workloads::all()
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_trial_produces_spans_and_events() {
        let w = cor_workloads::minprog::workload();
        let t = traced_trial(&w, JournalLevel::Full);
        let journals = t.world.journals();
        assert_eq!(journals.len(), 2);
        let (name, world_j) = journals[0];
        assert_eq!(name, "world");
        assert!(!world_j.is_empty());
        assert!(!world_j.spans().is_empty());
        // The trial's imaginary-fault counter matches the journal's
        // imag-fault span count (the acceptance criterion).
        let fault_spans = world_j
            .spans()
            .iter()
            .filter(|s| s.name == "imag-fault")
            .count() as u64;
        assert_eq!(fault_spans, t.imag_faults);
    }

    #[test]
    fn summary_level_keeps_only_milestones() {
        let w = cor_workloads::minprog::workload();
        let full = traced_trial(&w, JournalLevel::Full);
        let summary = traced_trial(&w, JournalLevel::Summary);
        let count = |t: &TracedTrial| t.world.journals().iter().map(|(_, j)| j.len()).sum::<usize>();
        assert!(count(&summary) < count(&full) / 4);
        // Milestone spans survive.
        let names: Vec<&str> = summary.world.journals()[0]
            .1
            .spans()
            .iter()
            .map(|s| s.name)
            .collect();
        assert!(names.contains(&"migration"));
        assert!(names.contains(&"exec"));
        assert!(!names.contains(&"imag-fault"));
    }

    #[test]
    fn trial_is_deterministic() {
        let w = cor_workloads::minprog::workload();
        let a = traced_trial(&w, JournalLevel::Full);
        let b = traced_trial(&w, JournalLevel::Full);
        assert_eq!(a.jsonl(), b.jsonl());
        assert_eq!(a.perfetto(), b.perfetto());
    }

    #[test]
    fn traced_trial_is_runtime_invariant() {
        use cor_kernel::RuntimeKind;
        for w in cor_workloads::all() {
            let l = traced_trial_with_runtime(&w, JournalLevel::Full, RuntimeKind::Lockstep);
            let a = traced_trial_with_runtime(&w, JournalLevel::Full, RuntimeKind::Actor);
            assert_eq!(l.jsonl(), a.jsonl(), "{} jsonl", w.name());
            assert_eq!(l.perfetto(), a.perfetto(), "{} perfetto", w.name());
            let (lp, ap) = (l.profile(), a.profile());
            assert!(lp.sums_exactly(), "{} blame sums", w.name());
            assert_eq!(
                lp.blame_csv(&l.link_waits()),
                ap.blame_csv(&a.link_waits()),
                "{} blame csv",
                w.name()
            );
            assert_eq!(lp.folded(), ap.folded(), "{} folded", w.name());
        }
    }

    #[test]
    fn env_level_parsing() {
        // Default is honoured when the variable is absent; explicit values
        // are exercised via from-string matching (don't mutate the global
        // environment in tests: other tests run concurrently).
        assert_eq!(
            journal_level_from_env(JournalLevel::Summary),
            std::env::var("COR_JOURNAL").map_or(JournalLevel::Summary, |v| {
                match v.to_ascii_lowercase().as_str() {
                    "off" => JournalLevel::Off,
                    "summary" => JournalLevel::Summary,
                    _ => JournalLevel::Full,
                }
            })
        );
    }
}
