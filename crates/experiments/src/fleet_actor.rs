//! The conservative parallel fleet executor (`--runtime actor`).
//!
//! [`crate::fleet::run_cell`] drives a storm cell through the global
//! lock-step loop: one thread, one world, every migration strictly
//! sequential on the virtual clock. This module executes the *same
//! cell* as a conservative parallel discrete-event simulation:
//!
//! 1. **Plan (serial).** A dry pre-pass replays the storm's control
//!    decisions without simulating anything: pid assignment in spawn
//!    order, and one placement decision per migrant against the evolving
//!    load counts — exactly the sequence the lock-step driver makes,
//!    reproducible because every placement policy is deterministic over
//!    `(loads, topology, seed, pid)`. The result is the cell's full
//!    chain list: `(pid, source, dest)` per migrating process.
//! 2. **Execute (parallel).** Chains are partitioned into shards; each
//!    shard executes its chains on a private world (same topology, same
//!    seeds) driven by per-node [`cor_sim::NodeRuntime`]s, advancing in
//!    three epochs (spawn → storm → post-storm run) whose events pop in
//!    `(virtual_time, node, seq)` order — the lock-step order. Each
//!    chain unit (one migration, one post-storm run) executes with link
//!    occupancy cleared at its start and records its routed
//!    transmissions ([`cor_net::replay::WireSend`]), so what the shard
//!    measures is the unit's *nominal* schedule, independent of which
//!    shard ran it or what ran before it.
//! 3. **Merge (deterministic).** Byte counts, link tables, and survivor
//!    counts are order-independent sums. The *timing* couplings the
//!    isolated units could not see — a unit's first messages queueing
//!    behind link residue left by the previous unit's tail in the
//!    lock-step schedule — are re-imposed exactly by a serial
//!    [`cor_net::replay::LinkReplay`] pass over the recorded wire
//!    schedules in global order, which re-runs only the per-link
//!    `route_and_charge` arithmetic (microseconds of work per cell).
//!    The corrected migration durations and imag-fault spans — and
//!    therefore the rendered CSV — are byte-identical to the lock-step
//!    cell at every shard and thread count.
//!
//! Configurations that couple chains beyond the wire (injected faults,
//! crash plans, replication write-through, the batched/coalesced hot
//! path) are rejected by [`parallel_eligible`] and take the single-shard
//! schedule instead. `docs/RUNTIME.md` gives the full determinism
//! argument.

use std::collections::{BTreeMap, BTreeSet};

use cor_ipc::NodeId;
use cor_kernel::placement::PlacementCtx;
use cor_kernel::{CostModel, World, FABRIC_SPAN_BASE};
use cor_migrate::{MigrationManager, Strategy};
use cor_net::replay::{LinkReplay, SendDelta, UnitSend};
use cor_net::WireParams;
use cor_pool::Pool;
use cor_sim::runtime::{run_serial, NodeRuntime};
use cor_sim::{JournalLevel, SimDuration, SimTime};
use cor_trace::{LogHistogram, ProfSpan, Profile, SpanId};

use crate::fleet::{
    csv_for, placement_for, render_table, spawn_proc, topology_for, FleetOutcome, FleetSpec,
    LinkWaits, FLEET_SEED,
};

/// Whether a wire configuration admits the parallel chain-sharded
/// executor. Anything that lets one chain's traffic perturb another
/// beyond link occupancy — injected faults (time- and count-triggered
/// plans observe global message order), node crashes, replication
/// write-through, or the batched/coalesced hot path (cross-request state
/// at the NMS) — requires the single-shard schedule instead.
pub fn parallel_eligible(w: &WireParams) -> bool {
    w.faults.is_none()
        && w.crashes.is_none()
        && w.replication.is_none()
        && !w.batch_replies
        && !w.coalesce
}

/// One migrating process's lifecycle, planned by the pre-pass.
#[derive(Debug, Clone, Copy)]
struct Chain {
    /// Global pid, as the lock-step world would assign it.
    pid: u64,
    source: NodeId,
    dest: NodeId,
}

/// The planned cell: every control decision the storm will make, in
/// lock-step order.
struct CellPlan {
    drain_set: BTreeSet<NodeId>,
    /// Chains in storm order (source ascending, pid ascending) — which
    /// is also spawn order.
    chains: Vec<Chain>,
}

/// Replays the storm's placement decisions without simulating: the same
/// candidate list, the same evolving load counts, the same seeded
/// stateless tie-breaks ([`cor_kernel::placement`]), the same policy
/// cursor state. Pure control flow — no world is built.
fn plan_cell(spec: FleetSpec) -> CellPlan {
    let nodes: Vec<NodeId> = (0..spec.nodes).map(NodeId).collect();
    let topo = topology_for(spec.topology, spec.nodes);
    let drain_set: BTreeSet<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| n.0 % spec.storm.drain_every == 0)
        .collect();
    let candidates: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| !drain_set.contains(n))
        .collect();

    // Pid assignment mirrors spawn order: drain nodes ascending, then
    // spawn index; the lock-step world hands out sequential pids.
    let mut loads: BTreeMap<NodeId, u64> = nodes.iter().map(|&n| (n, 0)).collect();
    let mut spawned: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
    let mut next_pid = 0u64;
    for &node in &drain_set {
        for _ in 0..spec.storm.procs_per_node {
            spawned.entry(node).or_default().push(next_pid);
            *loads.get_mut(&node).unwrap() += 1;
            next_pid += 1;
        }
    }

    // The storm: one placement decision per process against live loads.
    let down = BTreeSet::new();
    let mut policy = placement_for(spec.placement);
    let mut chains = Vec::with_capacity(next_pid as usize);
    for (&source, pids) in &spawned {
        for &pid in pids {
            let ctx = PlacementCtx {
                source,
                candidates: &candidates,
                loads: &loads,
                topology: Some(&topo),
                down: &down,
                seed: FLEET_SEED,
            };
            let dest = policy.choose(&ctx, pid).expect("candidates exist");
            *loads.get_mut(&source).unwrap() -= 1;
            *loads.get_mut(&dest).unwrap() += 1;
            chains.push(Chain { pid, source, dest });
        }
    }
    CellPlan { drain_set, chains }
}

/// One chain unit's nominal measurement: its length, its recorded wire
/// schedule, and (for run units) its imag-fault spans, all relative to
/// the unit's start on idle links.
struct UnitTrace {
    len: SimDuration,
    sends: Vec<UnitSend>,
    /// `(start offset, nominal duration)` per imag-fault span.
    spans: Vec<(SimDuration, SimDuration)>,
    /// Full journal capture of the unit (profiled runs only).
    cap: Option<UnitSpans>,
}

/// Where a captured span's parent lives, in unit-local coordinates:
/// the i-th world span or j-th fabric span *of the same unit*. Every
/// parent edge stays inside its unit — units start and end with both
/// journals' open stacks empty — which is what lets the merge rebuild
/// the global forest from per-unit captures.
#[derive(Debug, Clone, Copy)]
enum CapParent {
    None,
    World(usize),
    Fabric(usize),
}

/// One journal span captured at a unit boundary, times rebased to the
/// unit's start. `birth`/`death` are the journal's global creation and
/// close stamps (shared counter across both journals), which encode
/// "open at" relations the merge's queue-wait correction needs.
#[derive(Debug, Clone, Copy)]
struct CapturedSpan {
    name: &'static str,
    node: Option<NodeId>,
    start: SimDuration,
    end: Option<SimDuration>,
    parent: CapParent,
    birth: u64,
    death: u64,
}

/// Both journals' spans for one unit, in creation order.
struct UnitSpans {
    world: Vec<CapturedSpan>,
    fabric: Vec<CapturedSpan>,
}

/// A spawn-epoch unit: purely node-local (no wire schedule), captured
/// only for its length and spans.
struct SpawnUnit {
    len: SimDuration,
    spans: UnitSpans,
}

/// Current span counts of both journals — the cursors a unit capture
/// starts from.
fn journal_cursors(world: &World) -> (usize, usize) {
    let w = world.journal.as_ref().map_or(0, |j| j.spans().len());
    let f = world.fabric.journal.as_ref().map_or(0, |j| j.spans().len());
    (w, f)
}

/// Captures every span both journals minted since the cursors, rebased
/// to `started`. Unit boundaries must leave no span open; parents are
/// decoded from raw span ids (world ids count from 1, fabric ids from
/// `FABRIC_SPAN_BASE + 1`) into unit-local coordinates.
fn capture_unit(world: &World, started: SimTime, wcur: usize, fcur: usize) -> UnitSpans {
    let wj = world.journal.as_ref().expect("journal enabled");
    let fj = world.fabric.journal.as_ref().expect("journal enabled");
    assert_eq!(wj.open_len(), 0, "world spans close at unit boundaries");
    assert_eq!(fj.open_len(), 0, "fabric spans close at unit boundaries");
    let decode = |p: SpanId| -> CapParent {
        if p.is_none() {
            CapParent::None
        } else if p.0 > FABRIC_SPAN_BASE {
            let g = (p.0 - FABRIC_SPAN_BASE - 1) as usize;
            assert!(g >= fcur, "parent edge crosses a unit boundary");
            CapParent::Fabric(g - fcur)
        } else {
            let g = (p.0 - 1) as usize;
            assert!(g >= wcur, "parent edge crosses a unit boundary");
            CapParent::World(g - wcur)
        }
    };
    let grab = |j: &cor_trace::Journal, cur: usize| -> Vec<CapturedSpan> {
        let spans = &j.spans()[cur..];
        let births = &j.births()[cur..];
        let deaths = &j.deaths()[cur..];
        spans
            .iter()
            .enumerate()
            .map(|(i, s)| CapturedSpan {
                name: s.name,
                node: s.node,
                start: s.start.since(started),
                end: s.end.map(|e| e.since(started)),
                parent: decode(s.parent),
                birth: births[i],
                death: deaths[i],
            })
            .collect()
    };
    UnitSpans {
        world: grab(wj, wcur),
        fabric: grab(fj, fcur),
    }
}

/// What one shard measured about its chains. Counters are deltas that
/// merge by plain summation; unit traces are keyed by global chain
/// index, so gathering them across shards reconstructs the full global
/// schedule regardless of the partition.
struct ShardResult {
    /// World-construction spans before any chain unit (profiled runs
    /// only; identical in every shard, the merge keeps one).
    prologue: Option<(SimDuration, UnitSpans)>,
    /// Spawn-epoch unit per chain (profiled runs only).
    spawn_units: Vec<(usize, SpawnUnit)>,
    /// Storm-phase unit per chain: `(global chain index, trace)`.
    mig_units: Vec<(usize, UnitTrace)>,
    /// Post-storm run unit per chain.
    run_units: Vec<(usize, UnitTrace)>,
    survived: u64,
    drain_residents: u64,
    wire_bytes: u64,
    /// Per-link `(from, to) -> (msgs, bytes)` deltas.
    links: BTreeMap<(u32, u32), (u64, u64)>,
    remote_msgs: u64,
}

/// The three storm epochs, as events on the per-node runtimes.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Build and run chain `i`'s process at its source (write phase).
    Spawn(usize),
    /// Migrate chain `i` to its planned destination.
    Migrate(usize),
    /// Resume chain `i` at its destination (the read-back phase that
    /// drives copy-on-reference faults across the fabric).
    Run(usize),
}

/// Executes `chains` (a subset of the plan, in global order) on a
/// private world and harvests per-chain measurements.
///
/// The world is full-size — all `spec.nodes` nodes and managers exist,
/// so node ids, routes, and placement geometry are identical to the
/// lock-step cell — but only this shard's processes are spawned.
fn run_shard(
    spec: FleetSpec,
    chains: Vec<(usize, Chain)>,
    drain_set: &BTreeSet<NodeId>,
    capture: bool,
) -> ShardResult {
    let topo = topology_for(spec.topology, spec.nodes);
    let wire = WireParams {
        topology: Some(topo),
        ..WireParams::default()
    };
    debug_assert!(parallel_eligible(&wire));
    let (mut world, nodes) = World::fleet(spec.nodes, CostModel::default(), wire);
    world.fabric.validate_plans().expect("a well-wired fleet");
    world.enable_journal_at(JournalLevel::Full);
    world.fabric.record_wire_sends(true);
    let managers: Vec<MigrationManager> = nodes
        .iter()
        .map(|&n| MigrationManager::new(&mut world, n))
        .collect();

    let mut rts: Vec<NodeRuntime<Ev>> = (0..spec.nodes).map(|n| NodeRuntime::new(n, 0)).collect();
    let mut pids = vec![cor_kernel::ProcessId(u64::MAX); chains.len()];
    let mut mig_units: Vec<(usize, UnitTrace)> = Vec::with_capacity(chains.len());
    let mut run_units: Vec<(usize, UnitTrace)> = Vec::with_capacity(chains.len());
    let mut spawn_units: Vec<(usize, SpawnUnit)> = Vec::new();
    let mut survived = 0u64;

    // Everything the world build minted before the first chain unit is
    // the prologue — identical in every shard (all managers exist in
    // all shards), so the merge keeps one copy at absolute time zero.
    let prologue = capture.then(|| {
        let len = world.clock.now().since(SimTime::ZERO);
        (len, capture_unit(&world, SimTime::ZERO, 0, 0))
    });

    // Epoch 1: spawns. All events at the same instant, popping in
    // (node, seq) order — the lock-step spawn order restricted to this
    // shard, so pids come out in the same relative order.
    let t0 = world.clock.now();
    for (local, &(_, c)) in chains.iter().enumerate() {
        rts[c.source.0 as usize].post(t0, Ev::Spawn(local));
    }
    run_serial(&mut rts, |_, _, _, ev| {
        if let Ev::Spawn(local) = ev {
            let (global, c) = chains[local];
            let started = world.clock.now();
            let cursors = capture.then(|| journal_cursors(&world));
            pids[local] = spawn_proc(&mut world, c.source);
            if let Some((wc, fc)) = cursors {
                let len = world.clock.now().since(started);
                spawn_units.push((
                    global,
                    SpawnUnit {
                        len,
                        spans: capture_unit(&world, started, wc, fc),
                    },
                ));
            }
        }
    });

    // Spawning is purely node-local: nothing has touched a link yet, so
    // the absolute link/remote-message counters harvested below are
    // pure storm+run deltas, the same accounting the lock-step cell's
    // post-spawn snapshot performs.
    let bytes_before = world.fabric.ledger.total();
    assert!(
        world.fabric.link_stats().is_empty() && world.fabric.stats().msgs_remote == 0,
        "spawn epoch must not touch the fabric"
    );

    // Epoch 2: the storm. One migration unit per chain, events posted in
    // global storm order and popped in (source, seq) order. Links are
    // cleared at each unit start so the recorded schedule is nominal.
    let t1 = world.clock.now();
    for (local, &(_, c)) in chains.iter().enumerate() {
        rts[c.source.0 as usize].post(t1, Ev::Migrate(local));
    }
    run_serial(&mut rts, |_, _, _, ev| {
        if let Ev::Migrate(local) = ev {
            let (global, c) = chains[local];
            world.fabric.clear_link_busy();
            let started = world.clock.now();
            let cursors = capture.then(|| journal_cursors(&world));
            managers[c.source.0 as usize]
                .migrate_to(
                    &mut world,
                    &managers[c.dest.0 as usize],
                    pids[local],
                    Strategy::PureIou { prefetch: 1 },
                )
                .expect("storm migration");
            let len = world.clock.now().since(started);
            let sends = world
                .fabric
                .take_wire_sends()
                .into_iter()
                .map(|s| s.rebase(started))
                .collect();
            let cap = cursors.map(|(wc, fc)| capture_unit(&world, started, wc, fc));
            mig_units.push((
                global,
                UnitTrace {
                    len,
                    sends,
                    spans: Vec::new(),
                    cap,
                },
            ));
        }
    });

    // Epoch 3: post-storm runs, in the lock-step order (destination
    // ascending, then pid): the read phase faults pages back. The
    // journal cursor attributes each unit's imag-fault spans.
    let t2 = world.clock.now();
    let mut run_order: Vec<usize> = (0..chains.len()).collect();
    run_order.sort_by_key(|&l| (chains[l].1.dest, chains[l].1.pid));
    for local in run_order {
        rts[chains[local].1.dest.0 as usize].post(t2, Ev::Run(local));
    }
    let mut spans_seen = 0usize;
    run_serial(&mut rts, |_, _, _, ev| {
        if let Ev::Run(local) = ev {
            let (global, c) = chains[local];
            world.fabric.clear_link_busy();
            let started = world.clock.now();
            if let Some(journal) = &world.journal {
                spans_seen = journal.spans().len();
            }
            let fcur = capture
                .then(|| world.fabric.journal.as_ref().map_or(0, |j| j.spans().len()));
            let report = world.run(c.dest, pids[local]).expect("post-storm run");
            if report.finished {
                survived += 1;
            }
            let len = world.clock.now().since(started);
            let sends = world
                .fabric
                .take_wire_sends()
                .into_iter()
                .map(|s| s.rebase(started))
                .collect();
            let mut spans = Vec::new();
            if let Some(journal) = &world.journal {
                for span in &journal.spans()[spans_seen..] {
                    if span.name == "imag-fault" {
                        if let Some(d) = span.duration() {
                            spans.push((span.start.since(started), d));
                        }
                    }
                }
            }
            let cap = fcur.map(|fc| capture_unit(&world, started, spans_seen, fc));
            run_units.push((global, UnitTrace { len, sends, spans, cap }));
        }
    });

    let drain_residents = drain_set.iter().map(|&n| world.node_load(n).unwrap()).sum();
    let links = world
        .fabric
        .link_stats()
        .iter()
        .map(|(&(a, b), s)| ((a.0, b.0), (s.msgs, s.bytes)))
        .collect();
    ShardResult {
        prologue,
        spawn_units,
        mig_units,
        run_units,
        survived,
        drain_residents,
        wire_bytes: world.fabric.ledger.total() - bytes_before,
        links,
        remote_msgs: world.fabric.stats().msgs_remote,
    }
}

/// A unit's spans with absolute times and queue-wait corrections
/// applied, awaiting global index assignment.
struct MergedSpan {
    name: &'static str,
    node: Option<NodeId>,
    start: SimTime,
    end: Option<SimTime>,
    parent: CapParent,
    birth: u64,
    death: u64,
}

/// Places one unit's captured spans at its absolute start and re-imposes
/// the queue waits the replay found. The k-th non-detached send's
/// surplus `delta` pairs 1:1 with the unit's k-th `link-queue` span;
/// the lock-step world would have discovered that wait at the span's
/// close, so, per surplus:
///
/// * spans born *after* the link-queue span shift whole (start and
///   end) — the kernel past that instant is time-shift invariant;
/// * the link-queue span itself, and any span born before it but still
///   open when it closed (`death` later), ends `delta` later;
/// * spans already closed are untouched.
///
/// Surpluses compose in call order, exactly as the sequential world
/// accumulates them.
fn correct_unit(
    cap: &UnitSpans,
    start: SimTime,
    deltas: &[SendDelta],
) -> (Vec<MergedSpan>, Vec<MergedSpan>) {
    let lift = |s: &CapturedSpan| MergedSpan {
        name: s.name,
        node: s.node,
        start: start + s.start,
        end: s.end.map(|e| start + e),
        parent: s.parent,
        birth: s.birth,
        death: s.death,
    };
    let mut world: Vec<MergedSpan> = cap.world.iter().map(&lift).collect();
    let mut fabric: Vec<MergedSpan> = cap.fabric.iter().map(&lift).collect();
    let queues: Vec<usize> = cap
        .fabric
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "link-queue")
        .map(|(i, _)| i)
        .collect();
    let blocking: Vec<SimDuration> = deltas
        .iter()
        .filter(|d| !d.detached)
        .map(|d| d.delta)
        .collect();
    assert_eq!(
        queues.len(),
        blocking.len(),
        "one link-queue span per non-detached routed send"
    );
    for (k, &delta) in blocking.iter().enumerate() {
        if delta == SimDuration::ZERO {
            continue;
        }
        let lq_birth = cap.fabric[queues[k]].birth;
        let lq_death = cap.fabric[queues[k]].death;
        for s in world.iter_mut().chain(fabric.iter_mut()) {
            if s.birth > lq_birth {
                s.start += delta;
                if let Some(e) = &mut s.end {
                    *e += delta;
                }
            } else if s.birth == lq_birth || s.death > lq_death {
                if let Some(e) = &mut s.end {
                    *e += delta;
                }
            }
        }
    }
    (world, fabric)
}

/// Assembles corrected units (in lock-step journal order) into one
/// profile, re-creating exactly the layout `Profile::from_journals`
/// produces on the lock-step world: all world spans first (unit by
/// unit), then all fabric spans, with parent edges remapped from
/// unit-local coordinates to dense global indices.
fn assemble(units: Vec<(Vec<MergedSpan>, Vec<MergedSpan>)>) -> Profile {
    let mut w_off = Vec::with_capacity(units.len());
    let mut f_off = Vec::with_capacity(units.len());
    let (mut wt, mut ft) = (0usize, 0usize);
    for (w, f) in &units {
        w_off.push(wt);
        wt += w.len();
        f_off.push(ft);
        ft += f.len();
    }
    let remap = |p: CapParent, u: usize| match p {
        CapParent::None => None,
        CapParent::World(i) => Some(w_off[u] + i),
        CapParent::Fabric(j) => Some(wt + f_off[u] + j),
    };
    let mut spans = Vec::with_capacity(wt + ft);
    for (u, (w, _)) in units.iter().enumerate() {
        for s in w {
            spans.push(ProfSpan {
                source: "world",
                name: s.name,
                node: s.node,
                start: s.start,
                end: s.end,
                parent: remap(s.parent, u),
            });
        }
    }
    for (u, (_, f)) in units.iter().enumerate() {
        for s in f {
            spans.push(ProfSpan {
                source: "fabric",
                name: s.name,
                node: s.node,
                start: s.start,
                end: s.end,
                parent: remap(s.parent, u),
            });
        }
    }
    Profile::from_spans(spans)
}

/// Merges shard measurements into the cell outcome. Counters merge by
/// addition and a max over merged per-link sums. Timings go through the
/// [`LinkReplay`]: unit traces are gathered by global index and replayed
/// in the lock-step schedule order — all migrations in storm order, then
/// all runs in run order, one carried link table throughout — so every
/// cross-unit queue wait lands on exactly the duration the sequential
/// world charges. No step depends on shard count or merge order, which
/// is what makes the CSV byte-identical at every thread count. With
/// `with_profile`, the same replay pass also rebuilds the lock-step
/// span forest from the per-unit captures ([`correct_unit`] /
/// [`assemble`]).
fn merge_full(
    spec: FleetSpec,
    chains: &[Chain],
    shards: Vec<ShardResult>,
    with_profile: bool,
) -> (FleetOutcome, Option<(Profile, LinkWaits)>) {
    let mut survived = 0u64;
    let mut drain_residents_after = 0u64;
    let mut wire_bytes = 0u64;
    let mut links: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
    let mut remote_msgs = 0u64;
    let mut prologue: Option<(SimDuration, UnitSpans)> = None;
    let mut spawn: BTreeMap<usize, SpawnUnit> = BTreeMap::new();
    let mut mig: BTreeMap<usize, UnitTrace> = BTreeMap::new();
    let mut run: BTreeMap<usize, UnitTrace> = BTreeMap::new();
    for s in shards {
        if prologue.is_none() {
            prologue = s.prologue;
        }
        for (g, u) in s.spawn_units {
            spawn.insert(g, u);
        }
        for (g, t) in s.mig_units {
            mig.insert(g, t);
        }
        for (g, t) in s.run_units {
            run.insert(g, t);
        }
        survived += s.survived;
        drain_residents_after += s.drain_residents;
        wire_bytes += s.wire_bytes;
        for (link, (msgs, bytes)) in s.links {
            let e = links.entry(link).or_default();
            e.0 += msgs;
            e.1 += bytes;
        }
        remote_msgs += s.remote_msgs;
    }

    // The lock-step schedule: migrations in storm order (ascending
    // global index), then runs in (destination, pid) order, links
    // carried across every boundary — including storm → run. When
    // profiling, the cursor is first walked through the prologue and
    // the spawn units so every later unit's spans land at the lock-step
    // world's absolute instants (spawns touch no links, so this cannot
    // perturb the waits the replay finds — CSV outputs are unchanged).
    let topo = topology_for(spec.topology, spec.nodes);
    let per_byte_ns = WireParams::default().per_byte_ns;
    let mut replay = LinkReplay::new(&topo, per_byte_ns);
    let mut units: Vec<(Vec<MergedSpan>, Vec<MergedSpan>)> = Vec::new();
    if with_profile {
        let (plen, pcap) = prologue.as_ref().expect("profiled shards capture spans");
        units.push(correct_unit(pcap, SimTime::ZERO, &[]));
        replay.replay_unit(*plen, &[]);
        for su in spawn.values() {
            let start = replay.cursor();
            units.push(correct_unit(&su.spans, start, &[]));
            replay.replay_unit(su.len, &[]);
        }
    }
    let migrations = mig.len() as u64;
    let mut storm_elapsed = SimDuration::ZERO;
    for t in mig.values() {
        let start = replay.cursor();
        let corr = replay.replay_unit(t.len, &t.sends);
        storm_elapsed += t.len + corr.shift;
        if with_profile {
            let cap = t.cap.as_ref().expect("profiled shards capture spans");
            units.push(correct_unit(cap, start, &corr.deltas));
        }
    }
    let mut run_order: Vec<usize> = run.keys().copied().collect();
    run_order.sort_by_key(|&g| (chains[g].dest, chains[g].pid));
    let mut faults = LogHistogram::new();
    for g in run_order {
        let t = &run[&g];
        let start = replay.cursor();
        let corr = replay.replay_unit(t.len, &t.sends);
        for &(start_off, nominal) in &t.spans {
            faults.record_duration(nominal + corr.span_delta(start_off, start_off + nominal));
        }
        if with_profile {
            let cap = t.cap.as_ref().expect("profiled shards capture spans");
            units.push(correct_unit(cap, start, &corr.deltas));
        }
    }

    let profiled = if with_profile {
        let link_waits = replay
            .link_waits()
            .iter()
            .map(|(&l, &w)| (l, w.as_micros()))
            .collect();
        Some((assemble(units), link_waits))
    } else {
        None
    };

    let link_bytes: u64 = links.values().map(|&(_, b)| b).sum();
    let max_link_bytes = links.values().map(|&(_, b)| b).max().unwrap_or(0);
    let link_msgs: u64 = links.values().map(|&(m, _)| m).sum();
    let outcome = FleetOutcome {
        spec,
        migrations,
        survived,
        drain_residents_after,
        storm_elapsed,
        throughput: migrations as f64 / storm_elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        fault_p50_us: faults.p50(),
        fault_p99_us: faults.p99(),
        faults: faults.count(),
        wire_bytes,
        link_bytes,
        max_link_bytes,
        mean_hops: link_msgs as f64 / remote_msgs.max(1) as f64,
    };
    (outcome, profiled)
}

/// Runs one cell under the actor runtime, fanning `shards` worlds
/// across `pool`. Byte-identical to [`crate::fleet::run_cell`] for any
/// `shards >= 1` at any thread count.
pub fn run_cell_actor(spec: FleetSpec, pool: &Pool, shards: usize) -> FleetOutcome {
    run_cell_actor_inner(spec, pool, shards, false).0
}

/// Runs one cell under the actor runtime with full span capture:
/// returns the outcome plus the merged critical-path profile and the
/// per-directed-link queue waits (µs) — all three byte-identical to
/// [`crate::fleet::run_cell_profiled`] on the lock-step runtime, for
/// any shard partition at any thread count.
pub fn run_cell_actor_profiled(
    spec: FleetSpec,
    pool: &Pool,
    shards: usize,
) -> (FleetOutcome, Profile, LinkWaits) {
    let (outcome, profiled) = run_cell_actor_inner(spec, pool, shards, true);
    let (profile, links) = profiled.expect("capture was requested");
    (outcome, profile, links)
}

fn run_cell_actor_inner(
    spec: FleetSpec,
    pool: &Pool,
    shards: usize,
    capture: bool,
) -> (FleetOutcome, Option<(Profile, LinkWaits)>) {
    let plan = plan_cell(spec);
    let shards = shards.clamp(1, plan.chains.len().max(1));
    // Round-robin chains over shards, preserving global order inside
    // each shard; the replay makes the outcome partition-invariant.
    let mut parts: Vec<Vec<(usize, Chain)>> = vec![Vec::new(); shards];
    for (i, &c) in plan.chains.iter().enumerate() {
        parts[i % shards].push((i, c));
    }
    let drain_set = &plan.drain_set;
    let jobs: Vec<_> = parts
        .into_iter()
        .map(|part| move || run_shard(spec, part, drain_set, capture))
        .collect();
    let results = pool.run(jobs);
    merge_full(spec, &plan.chains, results, capture)
}

/// Computes the given cells under the actor runtime. Cells run one
/// after another; the pool's parallelism goes *inside* each cell (the
/// intra-simulation speedup the lock-step engine cannot have).
pub fn actor_outcomes_for(specs: Vec<FleetSpec>, pool: &Pool) -> Vec<FleetOutcome> {
    specs
        .into_iter()
        .map(|spec| run_cell_actor(spec, pool, pool.threads().max(1)))
        .collect()
}

/// The fleet table under the actor runtime.
pub fn fleet_actor(pool: &Pool) -> String {
    render_table(&actor_outcomes_for(crate::fleet::cells(), pool))
}

/// The fleet CSV under the actor runtime.
pub fn fleet_actor_csv(pool: &Pool) -> String {
    csv_for(&actor_outcomes_for(crate::fleet::cells(), pool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{gate_cells, run_cell, STORM_LOW};

    fn spec16(placement: &'static str) -> FleetSpec {
        FleetSpec {
            nodes: 16,
            topology: "torus",
            placement,
            storm: STORM_LOW,
        }
    }

    #[test]
    fn plan_matches_lockstep_destinations() {
        // The pre-pass must predict exactly the destinations the
        // lock-step storm picks; the least-loaded policy is the most
        // state-sensitive (live load counts feed every choice).
        for placement in ["round-robin", "least-loaded", "locality"] {
            let spec = spec16(placement);
            let plan = plan_cell(spec);
            let lockstep = run_cell(spec);
            assert_eq!(plan.chains.len() as u64, lockstep.migrations, "{placement}");
        }
    }

    #[test]
    fn single_shard_actor_cell_matches_lockstep_bytes() {
        let spec = spec16("least-loaded");
        let actor = csv_for(&[run_cell_actor(spec, &Pool::serial(), 1)]);
        let lockstep = csv_for(&[run_cell(spec)]);
        assert_eq!(actor, lockstep);
    }

    #[test]
    fn sharded_actor_cell_is_byte_identical_to_lockstep() {
        for placement in ["round-robin", "locality"] {
            let spec = spec16(placement);
            let lockstep = csv_for(&[run_cell(spec)]);
            for shards in [2, 3, 7] {
                let actor = csv_for(&[run_cell_actor(spec, &Pool::new(2), shards)]);
                assert_eq!(actor, lockstep, "{placement} at {shards} shards");
            }
        }
    }

    #[test]
    fn ring_cell_with_cross_chain_queueing_is_byte_identical() {
        // The ring/least-loaded cell is the regression that motivated
        // the link replay: lock-step charges one fault a ~20ms queue
        // wait behind the previous chain's reply still serializing on a
        // shared ring link. Isolated shards cannot see that wait; the
        // merge's replay must re-impose it exactly.
        let spec = FleetSpec {
            nodes: 16,
            topology: "ring",
            placement: "least-loaded",
            storm: STORM_LOW,
        };
        let lockstep = csv_for(&[run_cell(spec)]);
        for shards in [1, 2, 5] {
            let actor = csv_for(&[run_cell_actor(spec, &Pool::new(2), shards)]);
            assert_eq!(actor, lockstep, "{shards} shards");
        }
    }

    #[test]
    fn actor_gate_cells_match_lockstep_at_every_thread_count() {
        let lockstep = csv_for(&crate::fleet::fleet_outcomes_for(
            gate_cells(),
            &Pool::serial(),
        ));
        for threads in [1, 2, 4] {
            let actor = csv_for(&actor_outcomes_for(gate_cells(), &Pool::new(threads)));
            assert_eq!(actor, lockstep, "{threads} threads");
        }
    }

    #[test]
    fn actor_profile_is_byte_identical_to_lockstep() {
        // The full observability surface — blame tables (with per-link
        // queue waits), folded flamegraph, and the exported span set —
        // must come out byte-for-byte the same whether the cell ran
        // lock-step or sharded. The ring/least-loaded cell exercises
        // the queue-wait correction (non-zero surpluses shift and
        // stretch spans); the torus cells exercise multi-hop routes.
        for (topology, placement) in [("ring", "least-loaded"), ("torus", "round-robin")] {
            let spec = FleetSpec {
                nodes: 16,
                topology,
                placement,
                storm: STORM_LOW,
            };
            let (l_out, l_prof, l_links) = crate::fleet::run_cell_profiled(spec);
            assert!(l_prof.sums_exactly());
            let l_csv = csv_for(&[l_out]);
            for shards in [1, 2, 5] {
                let (a_out, a_prof, a_links) =
                    run_cell_actor_profiled(spec, &Pool::new(2), shards);
                let tag = format!("{topology}/{placement} at {shards} shards");
                assert_eq!(csv_for(&[a_out]), l_csv, "{tag}");
                assert_eq!(a_links, l_links, "{tag}");
                assert_eq!(
                    a_prof.blame_csv(&a_links),
                    l_prof.blame_csv(&l_links),
                    "{tag}"
                );
                assert_eq!(a_prof.folded(), l_prof.folded(), "{tag}");
                assert_eq!(a_prof.jsonl(), l_prof.jsonl(), "{tag}");
            }
        }
    }

    #[test]
    fn eligibility_gate_rejects_coupled_configurations() {
        let mut w = WireParams::default();
        assert!(parallel_eligible(&w));
        w.batch_replies = true;
        assert!(!parallel_eligible(&w));
    }
}
