//! The conservative parallel fleet executor (`--runtime actor`).
//!
//! [`crate::fleet::run_cell`] drives a storm cell through the global
//! lock-step loop: one thread, one world, every migration strictly
//! sequential on the virtual clock. This module executes the *same
//! cell* as a conservative parallel discrete-event simulation:
//!
//! 1. **Plan (serial).** A dry pre-pass replays the storm's control
//!    decisions without simulating anything: pid assignment in spawn
//!    order, and one placement decision per migrant against the evolving
//!    load counts — exactly the sequence the lock-step driver makes,
//!    reproducible because every placement policy is deterministic over
//!    `(loads, topology, seed, pid)`. The result is the cell's full
//!    chain list: `(pid, source, dest)` per migrating process.
//! 2. **Execute (parallel).** Chains are partitioned into shards; each
//!    shard executes its chains on a private world (same topology, same
//!    seeds) driven by per-node [`cor_sim::NodeRuntime`]s, advancing in
//!    three epochs (spawn → storm → post-storm run) whose events pop in
//!    `(virtual_time, node, seq)` order — the lock-step order. Each
//!    chain unit (one migration, one post-storm run) executes with link
//!    occupancy cleared at its start and records its routed
//!    transmissions ([`cor_net::replay::WireSend`]), so what the shard
//!    measures is the unit's *nominal* schedule, independent of which
//!    shard ran it or what ran before it.
//! 3. **Merge (deterministic).** Byte counts, link tables, and survivor
//!    counts are order-independent sums. The *timing* couplings the
//!    isolated units could not see — a unit's first messages queueing
//!    behind link residue left by the previous unit's tail in the
//!    lock-step schedule — are re-imposed exactly by a serial
//!    [`cor_net::replay::LinkReplay`] pass over the recorded wire
//!    schedules in global order, which re-runs only the per-link
//!    `route_and_charge` arithmetic (microseconds of work per cell).
//!    The corrected migration durations and imag-fault spans — and
//!    therefore the rendered CSV — are byte-identical to the lock-step
//!    cell at every shard and thread count.
//!
//! Configurations that couple chains beyond the wire (injected faults,
//! crash plans, replication write-through, the batched/coalesced hot
//! path) are rejected by [`parallel_eligible`] and take the single-shard
//! schedule instead. `docs/RUNTIME.md` gives the full determinism
//! argument.

use std::collections::{BTreeMap, BTreeSet};

use cor_ipc::NodeId;
use cor_kernel::placement::PlacementCtx;
use cor_kernel::{CostModel, World};
use cor_migrate::{MigrationManager, Strategy};
use cor_net::replay::{LinkReplay, UnitSend};
use cor_net::WireParams;
use cor_pool::Pool;
use cor_sim::runtime::{run_serial, NodeRuntime};
use cor_sim::{JournalLevel, SimDuration};
use cor_trace::LogHistogram;

use crate::fleet::{
    csv_for, placement_for, render_table, spawn_proc, topology_for, FleetOutcome, FleetSpec,
    FLEET_SEED,
};

/// Whether a wire configuration admits the parallel chain-sharded
/// executor. Anything that lets one chain's traffic perturb another
/// beyond link occupancy — injected faults (time- and count-triggered
/// plans observe global message order), node crashes, replication
/// write-through, or the batched/coalesced hot path (cross-request state
/// at the NMS) — requires the single-shard schedule instead.
pub fn parallel_eligible(w: &WireParams) -> bool {
    w.faults.is_none()
        && w.crashes.is_none()
        && w.replication.is_none()
        && !w.batch_replies
        && !w.coalesce
}

/// One migrating process's lifecycle, planned by the pre-pass.
#[derive(Debug, Clone, Copy)]
struct Chain {
    /// Global pid, as the lock-step world would assign it.
    pid: u64,
    source: NodeId,
    dest: NodeId,
}

/// The planned cell: every control decision the storm will make, in
/// lock-step order.
struct CellPlan {
    drain_set: BTreeSet<NodeId>,
    /// Chains in storm order (source ascending, pid ascending) — which
    /// is also spawn order.
    chains: Vec<Chain>,
}

/// Replays the storm's placement decisions without simulating: the same
/// candidate list, the same evolving load counts, the same seeded
/// stateless tie-breaks ([`cor_kernel::placement`]), the same policy
/// cursor state. Pure control flow — no world is built.
fn plan_cell(spec: FleetSpec) -> CellPlan {
    let nodes: Vec<NodeId> = (0..spec.nodes).map(NodeId).collect();
    let topo = topology_for(spec.topology, spec.nodes);
    let drain_set: BTreeSet<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| n.0 % spec.storm.drain_every == 0)
        .collect();
    let candidates: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| !drain_set.contains(n))
        .collect();

    // Pid assignment mirrors spawn order: drain nodes ascending, then
    // spawn index; the lock-step world hands out sequential pids.
    let mut loads: BTreeMap<NodeId, u64> = nodes.iter().map(|&n| (n, 0)).collect();
    let mut spawned: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
    let mut next_pid = 0u64;
    for &node in &drain_set {
        for _ in 0..spec.storm.procs_per_node {
            spawned.entry(node).or_default().push(next_pid);
            *loads.get_mut(&node).unwrap() += 1;
            next_pid += 1;
        }
    }

    // The storm: one placement decision per process against live loads.
    let down = BTreeSet::new();
    let mut policy = placement_for(spec.placement);
    let mut chains = Vec::with_capacity(next_pid as usize);
    for (&source, pids) in &spawned {
        for &pid in pids {
            let ctx = PlacementCtx {
                source,
                candidates: &candidates,
                loads: &loads,
                topology: Some(&topo),
                down: &down,
                seed: FLEET_SEED,
            };
            let dest = policy.choose(&ctx, pid).expect("candidates exist");
            *loads.get_mut(&source).unwrap() -= 1;
            *loads.get_mut(&dest).unwrap() += 1;
            chains.push(Chain { pid, source, dest });
        }
    }
    CellPlan { drain_set, chains }
}

/// One chain unit's nominal measurement: its length, its recorded wire
/// schedule, and (for run units) its imag-fault spans, all relative to
/// the unit's start on idle links.
struct UnitTrace {
    len: SimDuration,
    sends: Vec<UnitSend>,
    /// `(start offset, nominal duration)` per imag-fault span.
    spans: Vec<(SimDuration, SimDuration)>,
}

/// What one shard measured about its chains. Counters are deltas that
/// merge by plain summation; unit traces are keyed by global chain
/// index, so gathering them across shards reconstructs the full global
/// schedule regardless of the partition.
struct ShardResult {
    /// Storm-phase unit per chain: `(global chain index, trace)`.
    mig_units: Vec<(usize, UnitTrace)>,
    /// Post-storm run unit per chain.
    run_units: Vec<(usize, UnitTrace)>,
    survived: u64,
    drain_residents: u64,
    wire_bytes: u64,
    /// Per-link `(from, to) -> (msgs, bytes)` deltas.
    links: BTreeMap<(u32, u32), (u64, u64)>,
    remote_msgs: u64,
}

/// The three storm epochs, as events on the per-node runtimes.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Build and run chain `i`'s process at its source (write phase).
    Spawn(usize),
    /// Migrate chain `i` to its planned destination.
    Migrate(usize),
    /// Resume chain `i` at its destination (the read-back phase that
    /// drives copy-on-reference faults across the fabric).
    Run(usize),
}

/// Executes `chains` (a subset of the plan, in global order) on a
/// private world and harvests per-chain measurements.
///
/// The world is full-size — all `spec.nodes` nodes and managers exist,
/// so node ids, routes, and placement geometry are identical to the
/// lock-step cell — but only this shard's processes are spawned.
fn run_shard(
    spec: FleetSpec,
    chains: Vec<(usize, Chain)>,
    drain_set: &BTreeSet<NodeId>,
) -> ShardResult {
    let topo = topology_for(spec.topology, spec.nodes);
    let wire = WireParams {
        topology: Some(topo),
        ..WireParams::default()
    };
    debug_assert!(parallel_eligible(&wire));
    let (mut world, nodes) = World::fleet(spec.nodes, CostModel::default(), wire);
    world.fabric.validate_plans().expect("a well-wired fleet");
    world.enable_journal_at(JournalLevel::Full);
    world.fabric.record_wire_sends(true);
    let managers: Vec<MigrationManager> = nodes
        .iter()
        .map(|&n| MigrationManager::new(&mut world, n))
        .collect();

    let mut rts: Vec<NodeRuntime<Ev>> = (0..spec.nodes).map(|n| NodeRuntime::new(n, 0)).collect();
    let mut pids = vec![cor_kernel::ProcessId(u64::MAX); chains.len()];
    let mut mig_units: Vec<(usize, UnitTrace)> = Vec::with_capacity(chains.len());
    let mut run_units: Vec<(usize, UnitTrace)> = Vec::with_capacity(chains.len());
    let mut survived = 0u64;

    // Epoch 1: spawns. All events at the same instant, popping in
    // (node, seq) order — the lock-step spawn order restricted to this
    // shard, so pids come out in the same relative order.
    let t0 = world.clock.now();
    for (local, &(_, c)) in chains.iter().enumerate() {
        rts[c.source.0 as usize].post(t0, Ev::Spawn(local));
    }
    run_serial(&mut rts, |_, _, _, ev| {
        if let Ev::Spawn(local) = ev {
            pids[local] = spawn_proc(&mut world, chains[local].1.source);
        }
    });

    // Spawning is purely node-local: nothing has touched a link yet, so
    // the absolute link/remote-message counters harvested below are
    // pure storm+run deltas, the same accounting the lock-step cell's
    // post-spawn snapshot performs.
    let bytes_before = world.fabric.ledger.total();
    assert!(
        world.fabric.link_stats().is_empty() && world.fabric.stats().msgs_remote == 0,
        "spawn epoch must not touch the fabric"
    );

    // Epoch 2: the storm. One migration unit per chain, events posted in
    // global storm order and popped in (source, seq) order. Links are
    // cleared at each unit start so the recorded schedule is nominal.
    let t1 = world.clock.now();
    for (local, &(_, c)) in chains.iter().enumerate() {
        rts[c.source.0 as usize].post(t1, Ev::Migrate(local));
    }
    run_serial(&mut rts, |_, _, _, ev| {
        if let Ev::Migrate(local) = ev {
            let (global, c) = chains[local];
            world.fabric.clear_link_busy();
            let started = world.clock.now();
            managers[c.source.0 as usize]
                .migrate_to(
                    &mut world,
                    &managers[c.dest.0 as usize],
                    pids[local],
                    Strategy::PureIou { prefetch: 1 },
                )
                .expect("storm migration");
            let len = world.clock.now().since(started);
            let sends = world
                .fabric
                .take_wire_sends()
                .into_iter()
                .map(|s| s.rebase(started))
                .collect();
            mig_units.push((
                global,
                UnitTrace {
                    len,
                    sends,
                    spans: Vec::new(),
                },
            ));
        }
    });

    // Epoch 3: post-storm runs, in the lock-step order (destination
    // ascending, then pid): the read phase faults pages back. The
    // journal cursor attributes each unit's imag-fault spans.
    let t2 = world.clock.now();
    let mut run_order: Vec<usize> = (0..chains.len()).collect();
    run_order.sort_by_key(|&l| (chains[l].1.dest, chains[l].1.pid));
    for local in run_order {
        rts[chains[local].1.dest.0 as usize].post(t2, Ev::Run(local));
    }
    let mut spans_seen = 0usize;
    run_serial(&mut rts, |_, _, _, ev| {
        if let Ev::Run(local) = ev {
            let (global, c) = chains[local];
            world.fabric.clear_link_busy();
            let started = world.clock.now();
            if let Some(journal) = &world.journal {
                spans_seen = journal.spans().len();
            }
            let report = world.run(c.dest, pids[local]).expect("post-storm run");
            if report.finished {
                survived += 1;
            }
            let len = world.clock.now().since(started);
            let sends = world
                .fabric
                .take_wire_sends()
                .into_iter()
                .map(|s| s.rebase(started))
                .collect();
            let mut spans = Vec::new();
            if let Some(journal) = &world.journal {
                for span in &journal.spans()[spans_seen..] {
                    if span.name == "imag-fault" {
                        if let Some(d) = span.duration() {
                            spans.push((span.start.since(started), d));
                        }
                    }
                }
            }
            run_units.push((global, UnitTrace { len, sends, spans }));
        }
    });

    let drain_residents = drain_set.iter().map(|&n| world.node_load(n).unwrap()).sum();
    let links = world
        .fabric
        .link_stats()
        .iter()
        .map(|(&(a, b), s)| ((a.0, b.0), (s.msgs, s.bytes)))
        .collect();
    ShardResult {
        mig_units,
        run_units,
        survived,
        drain_residents,
        wire_bytes: world.fabric.ledger.total() - bytes_before,
        links,
        remote_msgs: world.fabric.stats().msgs_remote,
    }
}

/// Merges shard measurements into the cell outcome. Counters merge by
/// addition and a max over merged per-link sums. Timings go through the
/// [`LinkReplay`]: unit traces are gathered by global index and replayed
/// in the lock-step schedule order — all migrations in storm order, then
/// all runs in run order, one carried link table throughout — so every
/// cross-unit queue wait lands on exactly the duration the sequential
/// world charges. No step depends on shard count or merge order, which
/// is what makes the CSV byte-identical at every thread count.
fn merge(spec: FleetSpec, chains: &[Chain], shards: Vec<ShardResult>) -> FleetOutcome {
    let mut survived = 0u64;
    let mut drain_residents_after = 0u64;
    let mut wire_bytes = 0u64;
    let mut links: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
    let mut remote_msgs = 0u64;
    let mut mig: BTreeMap<usize, UnitTrace> = BTreeMap::new();
    let mut run: BTreeMap<usize, UnitTrace> = BTreeMap::new();
    for s in shards {
        for (g, t) in s.mig_units {
            mig.insert(g, t);
        }
        for (g, t) in s.run_units {
            run.insert(g, t);
        }
        survived += s.survived;
        drain_residents_after += s.drain_residents;
        wire_bytes += s.wire_bytes;
        for (link, (msgs, bytes)) in s.links {
            let e = links.entry(link).or_default();
            e.0 += msgs;
            e.1 += bytes;
        }
        remote_msgs += s.remote_msgs;
    }

    // The lock-step schedule: migrations in storm order (ascending
    // global index), then runs in (destination, pid) order, links
    // carried across every boundary — including storm → run.
    let topo = topology_for(spec.topology, spec.nodes);
    let per_byte_ns = WireParams::default().per_byte_ns;
    let mut replay = LinkReplay::new(&topo, per_byte_ns);
    let migrations = mig.len() as u64;
    let mut storm_elapsed = SimDuration::ZERO;
    for t in mig.values() {
        let corr = replay.replay_unit(t.len, &t.sends);
        storm_elapsed += t.len + corr.shift;
    }
    let mut run_order: Vec<usize> = run.keys().copied().collect();
    run_order.sort_by_key(|&g| (chains[g].dest, chains[g].pid));
    let mut faults = LogHistogram::new();
    for g in run_order {
        let t = &run[&g];
        let corr = replay.replay_unit(t.len, &t.sends);
        for &(start, nominal) in &t.spans {
            faults.record_duration(nominal + corr.span_delta(start, start + nominal));
        }
    }

    let link_bytes: u64 = links.values().map(|&(_, b)| b).sum();
    let max_link_bytes = links.values().map(|&(_, b)| b).max().unwrap_or(0);
    let link_msgs: u64 = links.values().map(|&(m, _)| m).sum();
    FleetOutcome {
        spec,
        migrations,
        survived,
        drain_residents_after,
        storm_elapsed,
        throughput: migrations as f64 / storm_elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        fault_p50_us: faults.p50(),
        fault_p99_us: faults.p99(),
        faults: faults.count(),
        wire_bytes,
        link_bytes,
        max_link_bytes,
        mean_hops: link_msgs as f64 / remote_msgs.max(1) as f64,
    }
}

/// Runs one cell under the actor runtime, fanning `shards` worlds
/// across `pool`. Byte-identical to [`crate::fleet::run_cell`] for any
/// `shards >= 1` at any thread count.
pub fn run_cell_actor(spec: FleetSpec, pool: &Pool, shards: usize) -> FleetOutcome {
    let plan = plan_cell(spec);
    let shards = shards.clamp(1, plan.chains.len().max(1));
    // Round-robin chains over shards, preserving global order inside
    // each shard; the replay makes the outcome partition-invariant.
    let mut parts: Vec<Vec<(usize, Chain)>> = vec![Vec::new(); shards];
    for (i, &c) in plan.chains.iter().enumerate() {
        parts[i % shards].push((i, c));
    }
    let drain_set = &plan.drain_set;
    let jobs: Vec<_> = parts
        .into_iter()
        .map(|part| move || run_shard(spec, part, drain_set))
        .collect();
    let results = pool.run(jobs);
    merge(spec, &plan.chains, results)
}

/// Computes the given cells under the actor runtime. Cells run one
/// after another; the pool's parallelism goes *inside* each cell (the
/// intra-simulation speedup the lock-step engine cannot have).
pub fn actor_outcomes_for(specs: Vec<FleetSpec>, pool: &Pool) -> Vec<FleetOutcome> {
    specs
        .into_iter()
        .map(|spec| run_cell_actor(spec, pool, pool.threads().max(1)))
        .collect()
}

/// The fleet table under the actor runtime.
pub fn fleet_actor(pool: &Pool) -> String {
    render_table(&actor_outcomes_for(crate::fleet::cells(), pool))
}

/// The fleet CSV under the actor runtime.
pub fn fleet_actor_csv(pool: &Pool) -> String {
    csv_for(&actor_outcomes_for(crate::fleet::cells(), pool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{gate_cells, run_cell, STORM_LOW};

    fn spec16(placement: &'static str) -> FleetSpec {
        FleetSpec {
            nodes: 16,
            topology: "torus",
            placement,
            storm: STORM_LOW,
        }
    }

    #[test]
    fn plan_matches_lockstep_destinations() {
        // The pre-pass must predict exactly the destinations the
        // lock-step storm picks; the least-loaded policy is the most
        // state-sensitive (live load counts feed every choice).
        for placement in ["round-robin", "least-loaded", "locality"] {
            let spec = spec16(placement);
            let plan = plan_cell(spec);
            let lockstep = run_cell(spec);
            assert_eq!(plan.chains.len() as u64, lockstep.migrations, "{placement}");
        }
    }

    #[test]
    fn single_shard_actor_cell_matches_lockstep_bytes() {
        let spec = spec16("least-loaded");
        let actor = csv_for(&[run_cell_actor(spec, &Pool::serial(), 1)]);
        let lockstep = csv_for(&[run_cell(spec)]);
        assert_eq!(actor, lockstep);
    }

    #[test]
    fn sharded_actor_cell_is_byte_identical_to_lockstep() {
        for placement in ["round-robin", "locality"] {
            let spec = spec16(placement);
            let lockstep = csv_for(&[run_cell(spec)]);
            for shards in [2, 3, 7] {
                let actor = csv_for(&[run_cell_actor(spec, &Pool::new(2), shards)]);
                assert_eq!(actor, lockstep, "{placement} at {shards} shards");
            }
        }
    }

    #[test]
    fn ring_cell_with_cross_chain_queueing_is_byte_identical() {
        // The ring/least-loaded cell is the regression that motivated
        // the link replay: lock-step charges one fault a ~20ms queue
        // wait behind the previous chain's reply still serializing on a
        // shared ring link. Isolated shards cannot see that wait; the
        // merge's replay must re-impose it exactly.
        let spec = FleetSpec {
            nodes: 16,
            topology: "ring",
            placement: "least-loaded",
            storm: STORM_LOW,
        };
        let lockstep = csv_for(&[run_cell(spec)]);
        for shards in [1, 2, 5] {
            let actor = csv_for(&[run_cell_actor(spec, &Pool::new(2), shards)]);
            assert_eq!(actor, lockstep, "{shards} shards");
        }
    }

    #[test]
    fn actor_gate_cells_match_lockstep_at_every_thread_count() {
        let lockstep = csv_for(&crate::fleet::fleet_outcomes_for(
            gate_cells(),
            &Pool::serial(),
        ));
        for threads in [1, 2, 4] {
            let actor = csv_for(&actor_outcomes_for(gate_cells(), &Pool::new(threads)));
            assert_eq!(actor, lockstep, "{threads} threads");
        }
    }

    #[test]
    fn eligibility_gate_rejects_coupled_configurations() {
        let mut w = WireParams::default();
        assert!(parallel_eligible(&w));
        w.batch_replies = true;
        assert!(!parallel_eligible(&w));
    }
}
