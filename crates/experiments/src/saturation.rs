//! Saturation study (ours): how many remote COR faults per second can one
//! node serve, and what does the latency tail look like under load?
//!
//! The paper measures a single fault's round trip (§4.3.3, ~115 ms); this
//! study drives the remote-fault path as a service under load. Two
//! harnesses share one setup (a serving NetMsgServer with a cached
//! segment, a faulting client, optionally a relaying stand-in node):
//!
//! * **Closed loop** — one fault in flight at a time; measures intrinsic
//!   service latency (the paper's number) and the zero-queueing baseline.
//! * **Open loop** — arrivals at a fixed offered rate on the *virtual*
//!   clock (seeded page choice for the hot-set pattern), independent of
//!   service progress; reports offered vs. achieved faults/sec and
//!   p50/p95/p99 sojourn time, so the knee and the saturated regime are
//!   both visible.
//!
//! Two access patterns stress the two hot-path optimizations:
//!
//! * `scan` — sequential offsets; a backlog at the server is a contiguous
//!   fragment run, which [`WireParams::batch_replies`] answers in one
//!   multi-page reply.
//! * `hot` (relayed) — a small hot set faulted through a stand-in relay;
//!   duplicate in-flight requests for the same origin page park in the
//!   relay's pending-interest table under [`WireParams::coalesce`].
//!
//! Everything is deterministic: fixed seeds, cells fanned across a
//! [`Pool`] and rendered serially in cell order, byte-identical at any
//! thread count.

use cor_ipc::message::{Message, MsgItem, MsgKind};
use cor_ipc::port::PortId;
use cor_ipc::protocol::{self, ProtocolMsg};
use cor_ipc::NodeId;
use cor_kernel::{CostModel, World};
use cor_mem::page::{frame_pool, page_from_bytes, Frame};
use cor_mem::space::SegmentId;
use cor_net::WireParams;
use cor_pool::Pool;
use cor_sim::{Pcg32, SimDuration, SimTime};
use cor_trace::LogHistogram;

use crate::render::{commas, TextTable};

/// Seed for the hot-set page choice; fixed for reproducibility.
pub const SAT_SEED: u64 = 0x5A7;

/// Pages cached at the serving NMS (and covered by the relay stand-in).
const SEG_PAGES: u64 = 64;

/// Size of the hot set the `hot` pattern hammers.
const HOT_PAGES: u64 = 4;

/// Sequence-number base for harness requests, clear of kernel traffic.
const SEQ_BASE: u64 = 1_000_000;

/// One cell of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct SatSpec {
    /// `closed` (one fault in flight) or `open` (fixed arrival rate).
    pub mode: &'static str,
    /// `scan` (sequential offsets) or `hot` (seeded small hot set).
    pub pattern: &'static str,
    /// Fault through a stand-in relay node instead of directly at the
    /// serving NMS (three-node world; exercises the forward/rename path
    /// and the pending-interest table).
    pub relay: bool,
    /// Run with the optimized hot path: batched replies + coalescing +
    /// coarse (totals-only) ledger. Off is the seed configuration.
    pub optimized: bool,
    /// Offered load in faults per virtual second (0 for closed loop).
    pub offered_fps: u64,
    /// Total faults issued.
    pub requests: u64,
}

impl SatSpec {
    /// Table label, e.g. `open-scan@20` or `closed-hot-relay`.
    pub fn label(&self) -> String {
        let relay = if self.relay { "-relay" } else { "" };
        match self.mode {
            "closed" => format!("closed-{}{relay}", self.pattern),
            _ => format!("open-{}{relay}@{}", self.pattern, self.offered_fps),
        }
    }
}

/// One cell's outcome.
#[derive(Debug, Clone)]
pub struct SatOutcome {
    /// The cell that produced it.
    pub spec: SatSpec,
    /// Faults served to completion (always `spec.requests`).
    pub served: u64,
    /// Offered rate over the arrival span (closed loop: equals achieved).
    pub offered_fps: f64,
    /// Served faults per virtual second, first arrival to last completion.
    pub achieved_fps: f64,
    /// Sojourn-time percentiles (arrival to reply drain), in µs.
    pub p50_us: u64,
    /// 95th percentile, in µs.
    pub p95_us: u64,
    /// 99th percentile, in µs.
    pub p99_us: u64,
    /// Multi-request batches the server answered with one reply.
    pub batched_replies: u64,
    /// Pages those batches carried.
    pub batched_pages: u64,
    /// Requests that piggybacked on an in-flight fetch at the relay.
    pub coalesced: u64,
    /// Total bytes ledgered to the wire.
    pub wire_bytes: u64,
}

/// The sweep's cells: closed-loop baselines plus offered-load ladders for
/// both patterns, each in seed and optimized configurations. The scan
/// ladder brackets the unoptimized knee (~14 faults/s on the default
/// wire) and the optimized one (~2× higher); the relayed hot ladder
/// brackets the relay's lower capacity.
pub fn cells() -> Vec<SatSpec> {
    let mut v = Vec::new();
    for optimized in [false, true] {
        v.push(SatSpec {
            mode: "closed",
            pattern: "scan",
            relay: false,
            optimized,
            offered_fps: 0,
            requests: 64,
        });
        for offered_fps in [4, 8, 11, 14, 20, 26, 34] {
            v.push(SatSpec {
                mode: "open",
                pattern: "scan",
                relay: false,
                optimized,
                offered_fps,
                requests: 256,
            });
        }
        for offered_fps in [3, 6, 12, 18] {
            v.push(SatSpec {
                mode: "open",
                pattern: "hot",
                relay: true,
                optimized,
                offered_fps,
                requests: 192,
            });
        }
    }
    v
}

/// The quick slice of [`cells`] — what the reproduction gate, the CI
/// smoke job and the determinism tests run: the closed loops, a
/// low/knee/past-knee scan point and one relayed hot point per
/// configuration.
pub fn gate_cells() -> Vec<SatSpec> {
    cells()
        .into_iter()
        .filter(|c| {
            c.mode == "closed"
                || (c.pattern == "scan" && matches!(c.offered_fps, 4 | 14 | 26))
                || (c.pattern == "hot" && c.offered_fps == 12)
        })
        .collect()
}

/// The built world and everything the load loops need to drive it.
struct Bench {
    world: World,
    client: NodeId,
    /// Where requests go: the serving NMS port, or the relay's.
    target_port: PortId,
    /// The segment requests name: the served segment, or its stand-in.
    target_seg: SegmentId,
    /// Client-homed port replies land on.
    reply_port: PortId,
}

/// Builds the serving world for `spec`: a cached segment of
/// [`SEG_PAGES`] distinct-content pages at the server, and for relay
/// cells a stand-in segment on the middle node (created by shipping an
/// IOU, exactly as migration does).
fn build(spec: SatSpec) -> Bench {
    let wire = if spec.optimized {
        WireParams::default().hot_path()
    } else {
        WireParams::default()
    };
    let n = if spec.relay { 3 } else { 2 };
    let (mut world, nodes) = World::fleet(n, CostModel::default(), wire);
    let client = nodes[0];
    let server = *nodes.last().expect("nodes exist");
    if spec.optimized {
        world.fabric.ledger.set_coarse(true);
    }
    let server_nms = world.fabric.nms_port(server).expect("server registered");
    let frames: Vec<Frame> = (0..SEG_PAGES)
        .map(|i| Frame::new(page_from_bytes(&i.to_le_bytes())))
        .collect();
    let seg = world.segs.create(server_nms, SEG_PAGES);
    world.segs.add_refs(seg, SEG_PAGES).expect("fresh segment");
    world
        .fabric
        .install_cache(server, seg, frames)
        .expect("server registered");
    let reply_port = world.ports.allocate(client);
    let (target_port, target_seg) = if spec.relay {
        let relay = nodes[1];
        // Ship an IOU for the whole segment to a scratch port on the
        // relay; the fabric's receive path creates the stand-in segment
        // and forward entry, and rewrites the item to name the stand-in.
        let scratch = world.ports.allocate(relay);
        let iou = Message::new(MsgKind::User(0x5A7), scratch)
            .push(MsgItem::Iou {
                base_page: 0,
                seg,
                seg_offset: 0,
                pages: SEG_PAGES,
            })
            .with_no_ious(true);
        world.send_from(server, iou).expect("iou delivery");
        let delivered = world
            .ports
            .dequeue(scratch)
            .expect("scratch port exists")
            .expect("iou delivered");
        let stand_in = match delivered.items.first() {
            Some(MsgItem::Iou { seg, .. }) => *seg,
            other => panic!("expected a rewritten IOU, got {other:?}"),
        };
        let relay_nms = world.fabric.nms_port(relay).expect("relay registered");
        (relay_nms, stand_in)
    } else {
        (server_nms, seg)
    };
    Bench {
        world,
        client,
        target_port,
        target_seg,
        reply_port,
    }
}

/// The page each request faults on, by request index.
fn offsets_for(spec: SatSpec) -> Vec<u64> {
    let mut rng = Pcg32::with_stream(SAT_SEED, 0x10AD);
    (0..spec.requests)
        .map(|i| match spec.pattern {
            "hot" => rng.range(0, HOT_PAGES),
            _ => i % SEG_PAGES,
        })
        .collect()
}

/// Runs one cell.
///
/// # Panics
///
/// Panics on internal simulation errors — a saturation cell has no
/// expected failure mode.
pub fn run_cell(spec: SatSpec) -> SatOutcome {
    let mut b = build(spec);
    let offsets = offsets_for(spec);
    let mut hist = LogHistogram::new();
    let t0 = b.world.clock.now();
    let mut served = 0u64;
    let mut last_completion = t0;
    let arrival_span;
    if spec.mode == "closed" {
        // One fault in flight at a time: intrinsic service latency.
        for (i, &offset) in offsets.iter().enumerate() {
            let start = b.world.clock.now();
            let req =
                protocol::imag_read_request(b.target_port, b.reply_port, b.target_seg, offset, 1)
                    .with_seq(SEQ_BASE + i as u64)
                    .with_no_ious(true);
            b.world.send_from(b.client, req).expect("request send");
            b.world.settle().expect("service round");
            let reply = b
                .world
                .ports
                .dequeue(b.reply_port)
                .expect("reply port exists")
                .expect("closed-loop reply arrived");
            match protocol::parse_owned(reply) {
                Ok(ProtocolMsg::ImagReadReply { frames, .. }) => frame_pool::give(frames),
                other => panic!("expected a read reply, got {other:?}"),
            }
            last_completion = b.world.clock.now();
            hist.record_duration(last_completion.since(start));
            served += 1;
        }
        arrival_span = last_completion.since(t0);
    } else {
        // Open loop: arrivals at the offered rate on the virtual clock,
        // regardless of service progress. Requests are injected detached
        // (the generator pays only the local NMS handoff, so it is never
        // the bottleneck); each settle round then drains the backlog and
        // the drained replies complete every outstanding request they
        // cover (a covering reply completes duplicates too — batched
        // replies carry seq 0 and match by range).
        let interval = SimDuration::from_micros(1_000_000 / spec.offered_fps.max(1));
        arrival_span = interval.saturating_mul(spec.requests.saturating_sub(1));
        let arrival = |i: u64| -> SimTime { t0 + interval.saturating_mul(i) };
        let mut next = 0u64;
        let mut outstanding: Vec<(u64, SimTime)> = Vec::new();
        while served < spec.requests {
            while next < spec.requests && arrival(next) <= b.world.clock.now() {
                let offset = offsets[next as usize];
                let req = protocol::imag_read_request(
                    b.target_port,
                    b.reply_port,
                    b.target_seg,
                    offset,
                    1,
                )
                .with_seq(SEQ_BASE + next)
                .with_no_ious(true);
                b.world
                    .fabric
                    .send_detached(
                        &mut b.world.clock,
                        &mut b.world.ports,
                        &mut b.world.segs,
                        b.client,
                        req,
                    )
                    .expect("request injection");
                outstanding.push((offset, arrival(next)));
                next += 1;
            }
            if outstanding.is_empty() {
                // Idle: jump to the next arrival.
                let at = arrival(next);
                let now = b.world.clock.now();
                if at > now {
                    b.world.clock.advance(at.since(now));
                }
                continue;
            }
            b.world.settle().expect("service round");
            while let Some(msg) = b.world.ports.dequeue(b.reply_port).expect("reply port") {
                let Ok(ProtocolMsg::ImagReadReply {
                    seg: rseg,
                    offset: ro,
                    frames,
                    ..
                }) = protocol::parse_owned(msg)
                else {
                    panic!("unexpected message on the reply port");
                };
                let n = frames.len() as u64;
                frame_pool::give(frames);
                let now = b.world.clock.now();
                outstanding.retain(|&(o, at)| {
                    let covered = rseg == b.target_seg && o >= ro && o < ro + n;
                    if covered {
                        hist.record_duration(now.since(at));
                        served += 1;
                        last_completion = now;
                    }
                    !covered
                });
            }
        }
    }
    let stats = b.world.fabric.stats();
    SatOutcome {
        spec,
        served,
        offered_fps: if spec.mode == "closed" {
            served as f64 / arrival_span.as_secs_f64().max(f64::MIN_POSITIVE)
        } else {
            spec.offered_fps as f64
        },
        achieved_fps: served as f64
            / last_completion
                .since(t0)
                .as_secs_f64()
                .max(f64::MIN_POSITIVE),
        p50_us: hist.p50(),
        p95_us: hist.p95(),
        p99_us: hist.p99(),
        batched_replies: stats.batched_replies,
        batched_pages: stats.batched_pages,
        coalesced: stats.coalesced_requests,
        wire_bytes: b.world.fabric.ledger.total(),
    }
}

/// Computes the given cells in deterministic order, fanning across
/// `pool`.
pub fn saturation_outcomes_for(specs: Vec<SatSpec>, pool: &Pool) -> Vec<SatOutcome> {
    let jobs: Vec<_> = specs.into_iter().map(|spec| move || run_cell(spec)).collect();
    pool.run(jobs)
}

/// Computes every cell of [`cells`].
pub fn saturation_outcomes(pool: &Pool) -> Vec<SatOutcome> {
    saturation_outcomes_for(cells(), pool)
}

/// Runs the sweep and renders the table (serial, cell-order rendering:
/// byte-identical at any thread count).
pub fn saturation(pool: &Pool) -> String {
    let outcomes = saturation_outcomes(pool);
    let mut t = TextTable::new(&[
        "cell",
        "opt",
        "offered/s",
        "achieved/s",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "batches",
        "coalesced",
        "wire bytes",
    ]);
    for o in &outcomes {
        t.row(vec![
            o.spec.label(),
            if o.spec.optimized { "yes" } else { "no" }.to_string(),
            format!("{:.2}", o.offered_fps),
            format!("{:.2}", o.achieved_fps),
            format!("{:.1}", o.p50_us as f64 / 1_000.0),
            format!("{:.1}", o.p95_us as f64 / 1_000.0),
            format!("{:.1}", o.p99_us as f64 / 1_000.0),
            o.batched_replies.to_string(),
            o.coalesced.to_string(),
            commas(o.wire_bytes),
        ]);
    }
    format!(
        "Saturation study (ours): remote COR fault service under load\n\
         (closed loop = one fault in flight, the paper's §4.3.3 shape; open\n\
         loop = fixed arrival rate on the virtual clock; `opt` runs batched\n\
         multi-page replies + in-flight coalescing + coarse stats, all\n\
         default-off knobs that leave the paper tables byte-identical)\n\n{}",
        t.render()
    )
}

/// The sweep as CSV for downstream analysis.
pub fn saturation_csv(pool: &Pool) -> String {
    csv_for(&saturation_outcomes(pool))
}

/// Renders outcomes as CSV (split out so tests can diff slices).
pub fn csv_for(outcomes: &[SatOutcome]) -> String {
    let mut out = String::from(
        "cell,mode,pattern,relay,optimized,requests,served,offered_fps,\
         achieved_fps,p50_us,p95_us,p99_us,batched_replies,batched_pages,\
         coalesced,wire_bytes\n",
    );
    for o in outcomes {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{:.3},{:.3},{},{},{},{},{},{},{}\n",
            o.spec.label(),
            o.spec.mode,
            o.spec.pattern,
            o.spec.relay,
            o.spec.optimized,
            o.spec.requests,
            o.served,
            o.offered_fps,
            o.achieved_fps,
            o.p50_us,
            o.p95_us,
            o.p99_us,
            o.batched_replies,
            o.batched_pages,
            o.coalesced,
            o.wire_bytes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(
        mode: &'static str,
        pattern: &'static str,
        relay: bool,
        optimized: bool,
        offered_fps: u64,
    ) -> SatSpec {
        SatSpec {
            mode,
            pattern,
            relay,
            optimized,
            offered_fps,
            requests: if mode == "closed" { 32 } else { 96 },
        }
    }

    #[test]
    fn closed_loop_matches_the_paper_fault_shape() {
        let o = run_cell(cell("closed", "scan", false, false, 0));
        assert_eq!(o.served, 32);
        // §4.3.3: one remote fault costs on the order of 115 ms on the
        // default wire; our model lands in the same band.
        assert!(
            (90_000..=130_000).contains(&o.p50_us),
            "closed-loop p50 {} µs outside the paper band",
            o.p50_us
        );
        assert_eq!(o.p50_us, o.p99_us, "no queueing in a closed loop");
    }

    #[test]
    fn low_load_keeps_up_and_overload_does_not() {
        let low = run_cell(cell("open", "scan", false, false, 4));
        assert_eq!(low.served, 96);
        assert!(
            low.achieved_fps >= 0.95 * low.offered_fps,
            "low load must keep up: {} vs {}",
            low.achieved_fps,
            low.offered_fps
        );
        let over = run_cell(cell("open", "scan", false, false, 34));
        assert!(
            over.achieved_fps < 0.9 * over.offered_fps,
            "past the knee the server cannot keep up: {} vs {}",
            over.achieved_fps,
            over.offered_fps
        );
        assert!(over.p99_us > low.p99_us, "queueing fattens the tail");
    }

    #[test]
    fn batching_raises_the_scan_capacity() {
        let base = run_cell(cell("open", "scan", false, false, 34));
        let opt = run_cell(cell("open", "scan", false, true, 34));
        assert!(opt.batched_replies > 0, "overload backlogs must batch");
        assert!(base.batched_replies == 0 && base.coalesced == 0);
        assert!(
            opt.achieved_fps >= 1.15 * base.achieved_fps,
            "batching must lift saturated throughput ≥15%: {} vs {}",
            opt.achieved_fps,
            base.achieved_fps
        );
    }

    #[test]
    fn coalescing_fires_on_the_relayed_hot_set() {
        let base = run_cell(cell("open", "hot", true, false, 12));
        let opt = run_cell(cell("open", "hot", true, true, 12));
        assert_eq!(base.coalesced, 0);
        assert!(opt.coalesced > 0, "duplicate in-flight faults must park");
        assert!(
            opt.wire_bytes < base.wire_bytes,
            "coalescing must shed upstream traffic: {} vs {}",
            opt.wire_bytes,
            base.wire_bytes
        );
        assert_eq!(opt.served, base.served, "every fault still completes");
    }

    #[test]
    fn sweep_is_deterministic_across_threads_and_runs() {
        let slice = || saturation_outcomes_for(gate_cells(), &Pool::serial());
        let a = csv_for(&slice());
        let b = csv_for(&slice());
        assert_eq!(a, b, "two seeded runs are byte-identical");
        let pooled = csv_for(&saturation_outcomes_for(gate_cells(), &Pool::new(4)));
        assert_eq!(a, pooled, "thread count does not change the bytes");
        assert_eq!(a.lines().count(), 1 + gate_cells().len());
    }
}
