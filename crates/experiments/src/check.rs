//! The reproduction gate: programmatic paper-vs-measured checks.
//!
//! `experiments check` runs the full matrix and asserts every reproduced
//! quantity against the paper with explicit tolerances, printing a
//! PASS/FAIL line per check and failing the process if anything drifted.
//! This is the regression suite for the *reproduction itself* — the unit
//! tests guard the code; this guards the science.

use cor_migrate::Strategy;
use cor_workloads::Workload;

use crate::runner::Matrix;

/// One verified claim.
#[derive(Debug)]
pub struct Check {
    /// What was checked.
    pub label: String,
    /// The measured value.
    pub measured: f64,
    /// The paper's value (or bound).
    pub expected: f64,
    /// Allowed relative deviation (fraction), or absolute when
    /// `expected == 0`.
    pub tolerance: f64,
    /// Whether it passed.
    pub pass: bool,
}

fn rel(label: impl Into<String>, measured: f64, expected: f64, tolerance: f64) -> Check {
    let pass = if expected == 0.0 {
        measured.abs() <= tolerance
    } else {
        ((measured - expected) / expected).abs() <= tolerance
    };
    Check {
        label: label.into(),
        measured,
        expected,
        tolerance,
        pass,
    }
}

fn bound(label: impl Into<String>, measured: f64, lo: f64, hi: f64) -> Check {
    Check {
        label: label.into(),
        measured,
        expected: (lo + hi) / 2.0,
        tolerance: (hi - lo) / (lo + hi),
        pass: (lo..=hi).contains(&measured),
    }
}

/// Runs every reproduction check. Table 4-1/4-2 quantities are exact by
/// construction (asserted in unit tests), so the gate focuses on the
/// *measured* dynamics: utilizations, timings, savings, and the claims of
/// §4.3–§4.5.
pub fn run_checks(matrix: &mut Matrix, workloads: &[Workload]) -> Vec<Check> {
    // Every strategy the gate consults, computed up front so missing
    // cells fan out across the matrix's pool.
    matrix.prefill(
        workloads,
        &[
            Strategy::PureCopy,
            Strategy::PureIou { prefetch: 0 },
            Strategy::PureIou { prefetch: 1 },
            Strategy::ResidentSet { prefetch: 0 },
        ],
    );
    let mut checks = Vec::new();

    // Table 4-3: remote utilization, per representative (±2% of Real).
    for w in workloads {
        if let Some(paper) = w.paper.iou_pct_real {
            let t = matrix.trial(w, Strategy::PureIou { prefetch: 0 });
            let measured = 100.0 * t.touched_real_pages as f64 / t.real_pages as f64;
            checks.push(rel(
                format!("table4-3 {} IOU %Real", w.name()),
                measured,
                paper,
                0.02,
            ));
        }
    }

    // Table 4-4: excision totals within 35%; the spread within a factor.
    let mut excises = Vec::new();
    for w in workloads {
        let t = matrix.trial(w, Strategy::PureIou { prefetch: 0 });
        let measured = t.migration.timings.excise_total.as_secs_f64();
        excises.push(measured);
        checks.push(rel(
            format!("table4-4 {} excise overall (s)", w.name()),
            measured,
            w.paper.excise_total_s,
            0.35,
        ));
    }
    let spread = excises.iter().cloned().fold(0.0f64, f64::max)
        / excises.iter().cloned().fold(f64::MAX, f64::min);
    checks.push(bound(
        "table4-4 excise spread (paper: ~4x)",
        spread,
        2.0,
        6.0,
    ));

    // Table 4-5: RS and Copy transfers within 25%; IOU stays sub-second.
    for w in workloads {
        let copy = matrix
            .trial(w, Strategy::PureCopy)
            .migration
            .timings
            .rimas_transfer
            .as_secs_f64();
        checks.push(rel(
            format!("table4-5 {} copy transfer (s)", w.name()),
            copy,
            w.paper.xfer_copy_s,
            0.25,
        ));
        let rs = matrix
            .trial(w, Strategy::ResidentSet { prefetch: 0 })
            .migration
            .timings
            .rimas_transfer
            .as_secs_f64();
        checks.push(rel(
            format!("table4-5 {} RS transfer (s)", w.name()),
            rs,
            w.paper.xfer_rs_s,
            0.25,
        ));
        let iou = matrix
            .trial(w, Strategy::PureIou { prefetch: 0 })
            .migration
            .timings
            .rimas_transfer
            .as_secs_f64();
        checks.push(bound(
            format!("table4-5 {} IOU transfer sub-second", w.name()),
            iou,
            0.0,
            0.5,
        ));
    }

    // §4.3.2 headline: the extreme copy/IOU ratio is ~1000x.
    if let Some(w) = workloads.iter().find(|w| w.name() == "Lisp-Del") {
        let copy = matrix
            .trial(w, Strategy::PureCopy)
            .migration
            .timings
            .rimas_transfer
            .as_secs_f64();
        let iou = matrix
            .trial(w, Strategy::PureIou { prefetch: 0 })
            .migration
            .timings
            .rimas_transfer
            .as_secs_f64();
        checks.push(bound(
            "§4.3.2 Lisp-Del copy/IOU ratio (~1000x)",
            copy / iou,
            500.0,
            1500.0,
        ));
    }

    // §4.3.3: Chess penalty ~3%; Minprog slowdown ~44x (same order).
    if let Some(chess) = workloads.iter().find(|w| w.name() == "Chess") {
        let copy = matrix
            .trial(chess, Strategy::PureCopy)
            .exec_elapsed
            .as_secs_f64();
        let iou = matrix
            .trial(chess, Strategy::PureIou { prefetch: 0 })
            .exec_elapsed
            .as_secs_f64();
        checks.push(bound(
            "§4.3.3 Chess IOU exec penalty %",
            100.0 * (iou - copy) / copy,
            0.0,
            8.0,
        ));
    }
    if let Some(minprog) = workloads.iter().find(|w| w.name() == "Minprog") {
        let copy = matrix
            .trial(minprog, Strategy::PureCopy)
            .exec_elapsed
            .as_secs_f64();
        let iou = matrix
            .trial(minprog, Strategy::PureIou { prefetch: 0 })
            .exec_elapsed
            .as_secs_f64();
        checks.push(bound(
            "§4.3.3 Minprog IOU slowdown factor (~44x)",
            iou / copy,
            20.0,
            100.0,
        ));
    }

    // §4.3.4: one page of prefetch never hurts end-to-end.
    for w in workloads {
        let pf0 = matrix
            .trial(w, Strategy::PureIou { prefetch: 0 })
            .end_to_end()
            .as_secs_f64();
        let pf1 = matrix
            .trial(w, Strategy::PureIou { prefetch: 1 })
            .end_to_end()
            .as_secs_f64();
        checks.push(bound(
            format!("§4.3.4 {} prefetch-1 never hurts (ratio)", w.name()),
            pf1 / pf0,
            0.0,
            1.005,
        ));
    }

    // §4.4 aggregates.
    let mut byte_savings = Vec::new();
    let mut msg_savings = Vec::new();
    for w in workloads {
        let copy = matrix.trial(w, Strategy::PureCopy).clone();
        let iou = matrix.trial(w, Strategy::PureIou { prefetch: 0 }).clone();
        byte_savings.push(100.0 * (1.0 - iou.total_bytes as f64 / copy.total_bytes as f64));
        msg_savings.push(100.0 * (1.0 - iou.msg_cpu.as_secs_f64() / copy.msg_cpu.as_secs_f64()));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    checks.push(bound(
        "§4.4.1 average byte savings % (paper 58.2)",
        avg(&byte_savings),
        45.0,
        70.0,
    ));
    checks.push(bound(
        "§4.4.2 average message savings % (paper 47.8)",
        avg(&msg_savings),
        40.0,
        65.0,
    ));
    checks.push(bound(
        "§4.4 IOU saves bytes in every case (min %)",
        byte_savings.iter().cloned().fold(f64::MAX, f64::min),
        0.0,
        100.0,
    ));

    // Survivability (ours): the crash sweep's headline claims. §4.4
    // concedes residual dependencies kill migrated processes with their
    // source; the sweep must show (a) pure-copy is immune, (b) fast
    // draining makes the lazy strategies immune too, (c) no draining
    // actually loses something (the hazard is real), and (d) every
    // survivor is byte-identical to its crash-free twin.
    let outcomes = crate::survivability::survival_outcomes(workloads, &matrix.pool());
    let pct = |num: usize, den: usize| 100.0 * num as f64 / den.max(1) as f64;
    let copy: Vec<_> = outcomes
        .iter()
        .filter(|o| matches!(o.strategy, Strategy::PureCopy))
        .collect();
    checks.push(rel(
        "survivability pure-copy survival %",
        pct(copy.iter().filter(|o| o.survived).count(), copy.len()),
        100.0,
        0.0,
    ));
    let fast: Vec<_> = outcomes.iter().filter(|o| o.drain_rate == 64).collect();
    checks.push(rel(
        "survivability drain-64 survival %",
        pct(fast.iter().filter(|o| o.survived).count(), fast.len()),
        100.0,
        0.0,
    ));
    let undrained_orphans = outcomes
        .iter()
        .filter(|o| o.drain_rate == 0 && !o.survived)
        .count();
    checks.push(bound(
        "survivability no-drain orphan count (>=1)",
        undrained_orphans as f64,
        1.0,
        outcomes.len() as f64,
    ));
    let survivors: Vec<_> = outcomes.iter().filter(|o| o.survived).collect();
    checks.push(rel(
        "survivability survivor byte-identity %",
        pct(
            survivors.iter().filter(|o| o.checksum_match).count(),
            survivors.len(),
        ),
        100.0,
        0.0,
    ));

    // Replication (ours): replicated page homes with content-addressed
    // failover. The gate asserts (a) any factor >= 1 survives every
    // single-node crash with no orphans, (b) the unreplicated baseline
    // still orphans (the hazard is real), (c) every survivor is
    // byte-identical to its crash-free twin, (d) the write-through wire
    // overhead grows with the factor, and (e) failover fetches actually
    // fired and their latency registered on the clock.
    let repl = crate::replication::replication_outcomes(workloads, &matrix.pool());
    let replicated: Vec<_> = repl.iter().filter(|o| o.factor >= 1).collect();
    checks.push(rel(
        "replication f>=1 survival %",
        pct(
            replicated.iter().filter(|o| o.survived).count(),
            replicated.len(),
        ),
        100.0,
        0.0,
    ));
    let baseline_orphans = repl.iter().filter(|o| o.factor == 0 && !o.survived).count();
    checks.push(bound(
        "replication f=0 orphan count (>=1)",
        baseline_orphans as f64,
        1.0,
        repl.len() as f64,
    ));
    let repl_survivors: Vec<_> = repl.iter().filter(|o| o.survived).collect();
    checks.push(rel(
        "replication survivor byte-identity %",
        pct(
            repl_survivors.iter().filter(|o| o.checksum_match).count(),
            repl_survivors.len(),
        ),
        100.0,
        0.0,
    ));
    let repl_bytes = |f: u64| -> f64 {
        repl.iter()
            .filter(|o| o.factor == f)
            .map(|o| o.replicate_bytes)
            .sum::<u64>() as f64
    };
    checks.push(bound(
        "replication overhead grows with factor (f2/f1)",
        repl_bytes(2) / repl_bytes(1).max(1.0),
        1.0 + f64::EPSILON,
        4.0,
    ));
    let failover_ok = repl
        .iter()
        .any(|o| o.failover_pages > 0 && o.failover_time > cor_sim::SimDuration::ZERO);
    checks.push(rel(
        "replication failover fires with measured latency",
        if failover_ok { 1.0 } else { 0.0 },
        1.0,
        0.0,
    ));

    // Fleet (ours): migration storms on routed N-node fabrics. The gate
    // runs the 16-node slice and asserts (a) storms drain cleanly with no
    // orphans, (b) multi-hop routing bills every traversed link, (c) the
    // topology-aware policy never routes longer than the topology-blind
    // one, (d) the fault-latency tail is sane, and (e) a rerun of a cell
    // is byte-identical.
    let fleet = crate::fleet::fleet_outcomes_for(crate::fleet::gate_cells(), &matrix.pool());
    checks.push(rel(
        "fleet storm survival % (no orphans)",
        pct(
            fleet
                .iter()
                .filter(|o| o.survived == o.migrations && o.drain_residents_after == 0)
                .count(),
            fleet.len(),
        ),
        100.0,
        0.0,
    ));
    let torus: Vec<_> = fleet
        .iter()
        .filter(|o| o.spec.topology == "torus")
        .collect();
    // Locality placement legitimately routes everything one hop, so the
    // conservation claim is made against the topology-blind baseline.
    let link_ratio = torus
        .iter()
        .find(|o| o.spec.placement == "round-robin")
        .map(|o| o.link_bytes as f64 / o.wire_bytes as f64)
        .expect("torus round-robin cell present");
    checks.push(bound(
        "fleet torus link-byte conservation (rr ratio >1)",
        link_ratio,
        1.0 + f64::EPSILON,
        4.0,
    ));
    let hops_of = |placement: &str| {
        torus
            .iter()
            .find(|o| o.spec.placement == placement)
            .expect("torus cell present")
            .mean_hops
    };
    checks.push(bound(
        "fleet locality vs round-robin hops (torus, ratio)",
        hops_of("locality") / hops_of("round-robin"),
        0.0,
        1.0,
    ));
    let tail_ok = fleet
        .iter()
        .filter(|o| o.faults > 0 && o.fault_p50_us > 0 && o.fault_p99_us >= o.fault_p50_us)
        .count();
    checks.push(rel(
        "fleet fault-latency tail sanity % (p99 ≥ p50 > 0)",
        pct(tail_ok, fleet.len()),
        100.0,
        0.0,
    ));
    let rerun_cell = *crate::fleet::gate_cells()
        .iter()
        .find(|c| c.topology == "torus")
        .expect("torus cell present");
    let identical = crate::fleet::csv_for(&[crate::fleet::run_cell(rerun_cell)])
        == crate::fleet::csv_for(&[crate::fleet::run_cell(rerun_cell)]);
    checks.push(rel(
        "fleet rerun byte-identity (torus cell)",
        if identical { 1.0 } else { 0.0 },
        1.0,
        0.0,
    ));

    // Saturation (ours): remote COR fault service under offered load.
    // The gate runs the quick slice and pins (a) the closed-loop service
    // time against the paper's §4.3.3 fault cost, (b) an unsaturated
    // server keeping up with offered load, (c) the p99 fattening
    // monotonically past the knee, (d) batching+coalescing lifting
    // saturated throughput by the advertised margin, and (e) coalescing
    // actually firing (and shedding bytes) on the relayed hot set.
    let sat = crate::saturation::saturation_outcomes_for(
        crate::saturation::gate_cells(),
        &matrix.pool(),
    );
    let sat_cell = |label: &str, optimized: bool| {
        sat.iter()
            .find(|o| o.spec.optimized == optimized && o.spec.label() == label)
            .expect("gate cell present")
    };
    checks.push(bound(
        "saturation closed-loop p50 ms (paper ~115)",
        sat_cell("closed-scan", false).p50_us as f64 / 1_000.0,
        90.0,
        130.0,
    ));
    let low = sat_cell("open-scan@4", false);
    checks.push(bound(
        "saturation low-load tracking (achieved/offered)",
        low.achieved_fps / low.offered_fps,
        0.95,
        1.05,
    ));
    checks.push(bound(
        "saturation p99 fattens past the knee (ratio)",
        sat_cell("open-scan@26", false).p99_us as f64 / low.p99_us.max(1) as f64,
        1.0,
        1e6,
    ));
    checks.push(bound(
        "saturation batched peak throughput lift (≥1.15)",
        sat_cell("open-scan@26", true).achieved_fps / sat_cell("open-scan@26", false).achieved_fps,
        1.15,
        5.0,
    ));
    let hot_base = sat_cell("open-hot-relay@12", false);
    let hot_opt = sat_cell("open-hot-relay@12", true);
    let coalesce_ok = hot_opt.coalesced > 0
        && hot_base.coalesced == 0
        && hot_opt.wire_bytes < hot_base.wire_bytes
        && hot_opt.served == hot_base.served;
    checks.push(rel(
        "saturation relay coalescing fires and sheds bytes",
        if coalesce_ok { 1.0 } else { 0.0 },
        1.0,
        0.0,
    ));

    // Profiler (ours): exact latency blame attribution. On the fixed
    // blame cell the gate asserts (a) every span's blame buckets sum to
    // its duration exactly (integer virtual time, no residue), (b) no
    // critical path exceeds its root's duration, (c) wire transit is
    // actually billed (a profiler that attributes everything to
    // local-service is lying), (d) the flamegraph's folded stacks
    // conserve the profiled total, and (e) the sharded actor executor
    // reproduces the lock-step blame table byte for byte.
    let blame_spec = crate::fleet::blame_cell_spec();
    let (_, l_prof, l_links) = crate::fleet::run_cell_profiled(blame_spec);
    checks.push(rel(
        "profiler blame sums exactly to span durations",
        if l_prof.sums_exactly() { 1.0 } else { 0.0 },
        1.0,
        0.0,
    ));
    let cp_ok = l_prof
        .roots()
        .all(|r| l_prof.critical_path(r).total_us <= l_prof.spans()[r].dur_us());
    checks.push(rel(
        "profiler critical paths bounded by root durations",
        if cp_ok { 1.0 } else { 0.0 },
        1.0,
        0.0,
    ));
    let wire_us = l_prof.total_blame()[cor_trace::BlameBucket::WireTransit.index()];
    checks.push(bound(
        "profiler wire-transit blame billed (fraction of total)",
        wire_us as f64 / l_prof.total_us().max(1) as f64,
        0.01,
        0.99,
    ));
    let folded_total: u64 = l_prof
        .folded()
        .lines()
        .filter_map(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.parse::<u64>().unwrap_or(0))
        .sum();
    checks.push(rel(
        "profiler flamegraph conserves the profiled total",
        folded_total as f64,
        l_prof.total_us() as f64,
        0.0,
    ));
    let (_, a_prof, a_links) =
        crate::fleet_actor::run_cell_actor_profiled(blame_spec, &matrix.pool(), 2);
    let blame_identical = l_prof.blame_csv(&l_links) == a_prof.blame_csv(&a_links)
        && l_prof.folded() == a_prof.folded();
    checks.push(rel(
        "profiler actor blame table byte-identity",
        if blame_identical { 1.0 } else { 0.0 },
        1.0,
        0.0,
    ));

    checks
}

/// Renders checks and returns `true` when everything passed.
pub fn render(checks: &[Check]) -> (String, bool) {
    let mut out = String::from("Reproduction gate: paper-vs-measured checks\n\n");
    let mut all_pass = true;
    for c in checks {
        all_pass &= c.pass;
        out.push_str(&format!(
            "  [{}] {:<48} measured {:>9.3} vs expected {:>9.3} (tol {:.0}%)\n",
            if c.pass { "PASS" } else { "FAIL" },
            c.label,
            c.measured,
            c.expected,
            c.tolerance * 100.0
        ));
    }
    out.push_str(&format!(
        "\n{} of {} checks passed\n",
        checks.iter().filter(|c| c.pass).count(),
        checks.len()
    ));
    (out, all_pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_and_bound_logic() {
        assert!(rel("x", 10.0, 10.0, 0.0).pass);
        assert!(rel("x", 11.0, 10.0, 0.15).pass);
        assert!(!rel("x", 12.0, 10.0, 0.15).pass);
        assert!(rel("zero", 0.0, 0.0, 0.1).pass);
        assert!(bound("b", 5.0, 1.0, 10.0).pass);
        assert!(!bound("b", 11.0, 1.0, 10.0).pass);
    }

    #[test]
    fn minprog_slice_of_the_gate_passes() {
        // The full gate runs in `experiments check`; here just the cheap
        // Minprog-only subset proves the plumbing.
        let workloads = vec![cor_workloads::minprog::workload()];
        let mut m = Matrix::new();
        let checks = run_checks(&mut m, &workloads);
        let (rendered, _all) = render(&checks);
        assert!(rendered.contains("Minprog"));
        // Aggregate checks (spread, fleet averages) are meaningless on a
        // one-workload slice; every per-workload check must pass.
        let failed: Vec<&Check> = checks.iter().filter(|c| !c.pass).collect();
        assert!(
            failed
                .iter()
                .all(|c| c.label.contains("spread") || c.label.contains("average")),
            "per-workload checks must pass on a slice: {failed:?}"
        );
    }
}
