//! Regeneration of Figures 4-1 through 4-5.

use cor_migrate::Strategy;
use cor_sim::{LedgerCategory, SimDuration, SimTime};
use cor_workloads::Workload;

use crate::render::{bar, secs, signed_bar, TextTable};
use crate::runner::Matrix;
use crate::PREFETCHES;

fn header_row() -> Vec<&'static str> {
    vec![
        "process", "Copy", "IOU/0", "IOU/1", "IOU/3", "IOU/7", "IOU/15", "RS/0", "RS/1", "RS/3",
        "RS/7", "RS/15",
    ]
}

fn per_cell<F: FnMut(&mut Matrix, &Workload, Strategy) -> String>(
    matrix: &mut Matrix,
    workloads: &[Workload],
    mut cell: F,
) -> TextTable {
    // Every figure consumes the full strategy row, so compute missing
    // cells concurrently before the serial render walk.
    matrix.prefill(workloads, &Matrix::paper_strategies());
    let mut t = TextTable::new(&header_row());
    for w in workloads {
        let mut row = vec![w.name().to_string()];
        row.push(cell(matrix, w, Strategy::PureCopy));
        for &p in &PREFETCHES {
            row.push(cell(matrix, w, Strategy::PureIou { prefetch: p }));
        }
        for &p in &PREFETCHES {
            row.push(cell(matrix, w, Strategy::ResidentSet { prefetch: p }));
        }
        t.row(row);
    }
    t
}

/// Figure 4-1: remote execution times in seconds, per strategy and
/// prefetch value.
pub fn fig4_1(matrix: &mut Matrix, workloads: &[Workload]) -> String {
    let t = per_cell(matrix, workloads, |m, w, s| {
        secs(m.trial(w, s).exec_elapsed.as_secs_f64())
    });
    let mut extra = String::new();
    for w in workloads {
        if let Some(h) = matrix
            .trial(w, Strategy::PureIou { prefetch: 1 })
            .prefetch_hit_ratio
        {
            extra.push_str(&format!(
                "  {} prefetch hit ratio: {:.0}% at pf=1",
                w.name(),
                h * 100.0
            ));
            if let Some(h15) = matrix
                .trial(w, Strategy::PureIou { prefetch: 15 })
                .prefetch_hit_ratio
            {
                extra.push_str(&format!(", {:.0}% at pf=15", h15 * 100.0));
            }
            extra.push('\n');
        }
    }
    format!(
        "Figure 4-1: Remote Execution Times in Seconds\n\n{}\n{}",
        t.render(),
        extra
    )
}

/// Figure 4-2: percent end-to-end speedup over pure-copy (address-space
/// transfer + remote execution), per strategy and prefetch.
pub fn fig4_2(matrix: &mut Matrix, workloads: &[Workload]) -> String {
    matrix.prefill(workloads, &Matrix::paper_strategies());
    let mut out = String::from(
        "Figure 4-2: Percent Speedup of IOU and RS Strategies over Pure-Copy\n\
         (transfer + remote execution; negative = slowdown)\n\n",
    );
    let mut t = TextTable::new(&header_row());
    for w in workloads {
        let copy = matrix
            .trial(w, Strategy::PureCopy)
            .end_to_end()
            .as_secs_f64();
        let speedup = |m: &mut Matrix, s: Strategy| -> f64 {
            let t = m.trial(w, s).end_to_end().as_secs_f64();
            100.0 * (copy - t) / copy
        };
        let mut row = vec![w.name().to_string(), "0".into()];
        for &p in &PREFETCHES {
            row.push(format!(
                "{:+.0}",
                speedup(matrix, Strategy::PureIou { prefetch: p })
            ));
        }
        for &p in &PREFETCHES {
            row.push(format!(
                "{:+.0}",
                speedup(matrix, Strategy::ResidentSet { prefetch: p })
            ));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    // Bar rendering for the IOU family, which is the paper's headline.
    out.push_str("\nIOU speedup bars (pf=0,1,3,7,15):\n");
    for w in workloads {
        let copy = matrix
            .trial(w, Strategy::PureCopy)
            .end_to_end()
            .as_secs_f64();
        out.push_str(&format!("  {:<9}", w.name()));
        for &p in &PREFETCHES {
            let t = matrix
                .trial(w, Strategy::PureIou { prefetch: p })
                .end_to_end()
                .as_secs_f64();
            let sp = 100.0 * (copy - t) / copy;
            out.push_str(&format!(" [{:<11}]", signed_bar(sp, 100.0, 10)));
        }
        out.push('\n');
    }
    out
}

/// Figure 4-3: bytes transferred per trial.
pub fn fig4_3(matrix: &mut Matrix, workloads: &[Workload]) -> String {
    let t = per_cell(matrix, workloads, |m, w, s| {
        let kb = m.trial(w, s).total_bytes as f64 / 1024.0;
        format!("{kb:.0}K")
    });
    format!(
        "Figure 4-3: Bytes Transferred During Migration and Remote Execution\n\n{}",
        t.render()
    )
}

/// Figure 4-4: message-handling time per trial.
pub fn fig4_4(matrix: &mut Matrix, workloads: &[Workload]) -> String {
    let t = per_cell(matrix, workloads, |m, w, s| {
        secs(m.trial(w, s).msg_cpu.as_secs_f64())
    });
    format!(
        "Figure 4-4: Message Handling Costs in Seconds (both nodes)\n\n{}",
        t.render()
    )
}

/// Figure 4-5: byte-transfer-rate panels for Lisp-Del under the three
/// strategies (no prefetch). `#` = bulk/control bytes, `o` = imaginary
/// fault support.
pub fn fig4_5(matrix: &mut Matrix) -> String {
    let w = cor_workloads::lisp::lisp_del();
    matrix.prefill(
        std::slice::from_ref(&w),
        &[
            Strategy::PureIou { prefetch: 0 },
            Strategy::ResidentSet { prefetch: 0 },
            Strategy::PureCopy,
        ],
    );
    let mut out = String::from(
        "Figure 4-5: Byte Transfer Rates for Lisp-Del (bin = 5 s)\n\
         '#' bulk + control traffic, 'o' imaginary fault support\n\n",
    );
    for strategy in [
        Strategy::PureIou { prefetch: 0 },
        Strategy::ResidentSet { prefetch: 0 },
        Strategy::PureCopy,
    ] {
        let trial = matrix.trial(&w, strategy).clone();
        let bin = SimDuration::from_secs(5);
        let end = trial.end_time;
        let bulk: Vec<u64> = {
            let b = trial.ledger.binned(bin, end, LedgerCategory::Bulk);
            let c = trial.ledger.binned(bin, end, LedgerCategory::Control);
            b.iter().zip(&c).map(|(x, y)| x + y).collect()
        };
        let fault = trial.ledger.binned(bin, end, LedgerCategory::FaultSupport);
        let peak = bulk
            .iter()
            .zip(&fault)
            .map(|(a, b)| a + b)
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        out.push_str(&format!(
            "{} — total {:.0} s, {} KB on the wire\n",
            strategy,
            end.as_secs_f64(),
            trial.total_bytes / 1024
        ));
        for (i, (b, f)) in bulk.iter().zip(&fault).enumerate() {
            if *b == 0 && *f == 0 {
                continue;
            }
            let t = SimTime::from_secs(5 * i as u64);
            out.push_str(&format!(
                "  {:>5.0}s |{}{}\n",
                t.as_secs_f64(),
                bar(*b as f64, peak, 40),
                bar(*f as f64, peak, 40).replace('#', "o"),
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minprog_iou_slowdown_factor_is_large() {
        // §4.3.3: Minprog "executes 44 times slower under the pure-IOU
        // strategy". Require the same order of magnitude.
        let w = cor_workloads::minprog::workload();
        let mut m = Matrix::new();
        let copy = m.trial(&w, Strategy::PureCopy).exec_elapsed.as_secs_f64();
        let iou = m
            .trial(&w, Strategy::PureIou { prefetch: 0 })
            .exec_elapsed
            .as_secs_f64();
        let factor = iou / copy;
        assert!((20.0..80.0).contains(&factor), "factor {factor}");
    }

    #[test]
    fn one_page_prefetch_always_helps_end_to_end() {
        // §4.3.4: "returning one additional contiguous page per remote
        // fault improves performance" in all cases. Check the two extremes
        // of locality.
        let mut m = Matrix::new();
        for w in [
            cor_workloads::minprog::workload(),
            cor_workloads::pasmac::pm_start(),
        ] {
            let pf0 = m.trial(&w, Strategy::PureIou { prefetch: 0 }).end_to_end();
            let pf1 = m.trial(&w, Strategy::PureIou { prefetch: 1 }).end_to_end();
            assert!(pf1 <= pf0, "{}: pf1 {pf1} > pf0 {pf0}", w.name());
        }
    }

    #[test]
    fn figure_tables_render_for_a_single_workload() {
        // Rendering smoke tests on the cheapest representative: every
        // figure function produces a complete 12-column table.
        let workloads = vec![cor_workloads::minprog::workload()];
        let mut m = Matrix::new();
        for out in [
            fig4_1(&mut m, &workloads),
            fig4_3(&mut m, &workloads),
            fig4_4(&mut m, &workloads),
        ] {
            let header = out.lines().nth(2).unwrap_or("");
            assert!(header.contains("Copy") && header.contains("RS/15"), "{out}");
            assert!(out.contains("Minprog"), "{out}");
        }
        let speedups = fig4_2(&mut m, &workloads);
        assert!(speedups.contains("Minprog"));
        assert!(speedups.contains('+'), "Minprog speeds up under IOU");
    }

    #[test]
    fn byte_accounting_orders_strategies_for_minprog() {
        let w = cor_workloads::minprog::workload();
        let mut m = Matrix::new();
        let copy = m.trial(&w, Strategy::PureCopy).total_bytes;
        let iou = m.trial(&w, Strategy::PureIou { prefetch: 0 }).total_bytes;
        let rs = m
            .trial(&w, Strategy::ResidentSet { prefetch: 0 })
            .total_bytes;
        assert!(iou < rs && rs < copy, "iou {iou} rs {rs} copy {copy}");
        // Message CPU ordering matches (Figure 4-4's claim).
        let copy_cpu = m.trial(&w, Strategy::PureCopy).msg_cpu;
        let iou_cpu = m.trial(&w, Strategy::PureIou { prefetch: 0 }).msg_cpu;
        assert!(iou_cpu < copy_cpu);
    }

    #[test]
    fn fig4_5_panels_have_the_right_signature() {
        let mut m = Matrix::new();
        let out = fig4_5(&mut m);
        assert!(out.contains("pure-copy"));
        assert!(out.contains("pure-iou"));
        // Copy has a bulk burst; IOU shows fault-support traffic.
        assert!(out.contains('#'));
        assert!(out.contains('o'));
    }
}
