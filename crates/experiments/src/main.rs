//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--threads N] [--runtime lockstep|actor] <command>
//!
//! commands:
//!   table4-1 table4-2 table4-3 table4-4 table4-5
//!   fig4-1 fig4-2 fig4-3 fig4-4 fig4-5
//!   constants   fault-service microbenchmarks (§4.3.3)
//!   summary     §4.4 aggregate savings
//!   speedups    §4.3.2 transfer speedups
//!   ablation    pre-copy ablation (ours)
//!   loss-sweep  completion time vs wire drop rate (ours)
//!   survivability      crash time × strategy × drain rate sweep (ours)
//!   survivability-csv  the same sweep as CSV for downstream analysis
//!   replication      replication factor × crash delay × strategy sweep (ours)
//!   replication-csv  the same sweep as CSV for downstream analysis
//!   fleet       migration storms on routed N-node fabrics (ours)
//!   fleet-csv   the same sweep as CSV for downstream analysis
//!   saturation      remote-fault service under offered load (ours)
//!   saturation-csv  the same sweep as CSV for downstream analysis
//!   trace [name] [--jsonl] [--summary]   Perfetto/JSONL trace of one trial
//!   journal [name]     human-readable journal narrative of one trial
//!   metrics [name]     per-node metrics report of one trial
//!   profile [name|fleet]    blame totals + critical paths (virtual time)
//!   blame-csv [name|fleet]  per-node/per-link blame decomposition as CSV
//!   flamegraph [name|fleet] folded stacks (flamegraph.pl / inferno input)
//!   all         everything above, in order
//! ```
//!
//! Independent trial cells run concurrently on `N` worker threads
//! (`--threads N`, or the `COR_THREADS` environment variable, defaulting
//! to the machine's parallelism). Every output is byte-identical at any
//! thread count: each cell is its own deterministic simulation, and all
//! rendering happens serially in cell order.
//!
//! `--runtime actor` (or `COR_RUNTIME=actor`) routes every simulation
//! through the event-driven per-node runtimes: single trials post their
//! causal phases to `cor_sim::NodeRuntime` inboxes, and the fleet sweep
//! executes each storm cell as a conservative parallel simulation
//! (per-process chains sharded across the pool, merged through the
//! link-schedule replay). Every output remains byte-identical to the
//! default `lockstep` runtime at any thread count — see
//! `docs/RUNTIME.md`.
//!
//! `--trace-out FILE` writes a Perfetto `trace.json` to FILE: for the
//! `trace` command it redirects that command's own trace there; for any
//! other command (e.g. a sweep) it additionally captures a fixed-seed
//! Minprog trial so every run can ship a trace artifact. `COR_JOURNAL`
//! (`off|summary|full`) sets the journal level of sweep trials.

use cor_experiments::{
    figures, fleet, fleet_actor, loss, replication, runner::Matrix, saturation, summary,
    survivability, tables, trace,
};
use cor_pool::Pool;
use cor_sim::JournalLevel;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let pool = match args.iter().position(|a| a == "--threads") {
        Some(i) => {
            let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                eprintln!("--threads requires a positive integer");
                std::process::exit(2);
            };
            args.drain(i..=i + 1);
            Pool::new(n)
        }
        None => Pool::from_env(),
    };
    let runtime = match args.iter().position(|a| a == "--runtime") {
        Some(i) => {
            let Some(kind) = args
                .get(i + 1)
                .and_then(|v| cor_kernel::RuntimeKind::parse(v))
            else {
                eprintln!("--runtime requires `lockstep` or `actor`");
                std::process::exit(2);
            };
            args.drain(i..=i + 1);
            // Sweeps read the knob through the environment so every
            // trial — including ones built deep inside table renderers —
            // routes through the selected runtime.
            std::env::set_var(cor_kernel::runtime::RUNTIME_ENV, kind.name());
            kind
        }
        None => cor_kernel::RuntimeKind::from_env(),
    };
    let trace_out = match args.iter().position(|a| a == "--trace-out") {
        Some(i) => {
            let Some(path) = args.get(i + 1).cloned() else {
                eprintln!("--trace-out requires a file path");
                std::process::exit(2);
            };
            args.drain(i..=i + 1);
            Some(path)
        }
        None => None,
    };
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let workloads = cor_workloads::all();
    let mut matrix = Matrix::with_pool(pool);
    let emit = |s: String| println!("{s}");
    match cmd {
        "table4-1" => emit(tables::table4_1(&workloads)),
        "table4-2" => emit(tables::table4_2(&workloads)),
        "table4-3" => emit(tables::table4_3(&mut matrix, &workloads)),
        "table4-4" => emit(tables::table4_4(&mut matrix, &workloads)),
        "table4-5" => emit(tables::table4_5(&mut matrix, &workloads)),
        "fig4-1" => emit(figures::fig4_1(&mut matrix, &workloads)),
        "fig4-2" => emit(figures::fig4_2(&mut matrix, &workloads)),
        "fig4-3" => emit(figures::fig4_3(&mut matrix, &workloads)),
        "fig4-4" => emit(figures::fig4_4(&mut matrix, &workloads)),
        "fig4-5" => emit(figures::fig4_5(&mut matrix)),
        "constants" => emit(summary::constants()),
        "summary" => emit(summary::aggregates(&mut matrix, &workloads)),
        "speedups" => emit(summary::transfer_speedups(&mut matrix, &workloads)),
        "ablation" => emit(summary::ablation(&workloads, &pool)),
        "loss-sweep" => emit(loss::loss_sweep(&workloads, &pool)),
        "survivability" => emit(survivability::survivability(&workloads, &pool)),
        "survivability-csv" => print!("{}", survivability::survivability_csv(&workloads, &pool)),
        "replication" => emit(replication::replication(&workloads, &pool)),
        "replication-csv" => print!("{}", replication::replication_csv(&workloads, &pool)),
        "fleet" => emit(match runtime {
            cor_kernel::RuntimeKind::Lockstep => fleet::fleet(&pool),
            cor_kernel::RuntimeKind::Actor => fleet_actor::fleet_actor(&pool),
        }),
        "fleet-csv" => print!(
            "{}",
            match runtime {
                cor_kernel::RuntimeKind::Lockstep => fleet::fleet_csv(&pool),
                cor_kernel::RuntimeKind::Actor => fleet_actor::fleet_actor_csv(&pool),
            }
        ),
        "saturation" => emit(saturation::saturation(&pool)),
        "saturation-csv" => print!("{}", saturation::saturation_csv(&pool)),
        "cow-study" => emit(summary::cow_study()),
        "sensitivity" => emit(summary::sensitivity(&pool)),
        "modern" => emit(summary::modern_study(&workloads, &pool)),
        "trace" => {
            let name = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str)
                .unwrap_or("Minprog");
            let jsonl = args.iter().any(|a| a == "--jsonl");
            let level = trace::journal_level_from_env(if args.iter().any(|a| a == "--summary") {
                JournalLevel::Summary
            } else {
                JournalLevel::Full
            });
            let w = match trace::workload_by_name(name) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            let t = trace::traced_trial(&w, level);
            eprintln!("{}", t.describe());
            let doc = if jsonl { t.jsonl() } else { t.perfetto() };
            match &trace_out {
                Some(path) => {
                    std::fs::write(path, &doc).expect("write --trace-out file");
                    eprintln!("wrote {path}");
                }
                None => print!("{doc}"),
            }
            return;
        }
        "profile" | "blame-csv" | "flamegraph" => {
            let target = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str)
                .unwrap_or("Minprog");
            let (profile, links, root) = if target == "fleet" {
                let spec = fleet::blame_cell_spec();
                let (_, p, l) = match runtime {
                    cor_kernel::RuntimeKind::Lockstep => fleet::run_cell_profiled(spec),
                    cor_kernel::RuntimeKind::Actor => fleet_actor::run_cell_actor_profiled(
                        spec,
                        &pool,
                        pool.threads().max(1),
                    ),
                };
                (p, l, "migration")
            } else {
                let w = match trace::workload_by_name(target) {
                    Ok(w) => w,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                };
                let t = trace::traced_trial(&w, trace::journal_level_from_env(JournalLevel::Full));
                (t.profile(), t.link_waits(), "migration")
            };
            assert!(
                profile.sums_exactly(),
                "blame buckets must sum exactly to each span's duration"
            );
            match cmd {
                "profile" => emit(profile.report(root)),
                "blame-csv" => print!("{}", profile.blame_csv(&links)),
                _ => print!("{}", profile.folded()),
            }
        }
        "journal" => emit(summary::trace_demo(
            args.get(1).map(String::as_str).unwrap_or("Minprog"),
        )),
        "metrics" => {
            let name = args.get(1).map(String::as_str).unwrap_or("Minprog");
            let w = match trace::workload_by_name(name) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            let t = trace::traced_trial(&w, trace::journal_level_from_env(JournalLevel::Full));
            let at = t.world.clock.now();
            emit(t.metrics().render(at));
        }
        "policy" => emit(summary::policy_demo()),
        "csv" => emit(cor_experiments::runner::matrix_csv(&mut matrix, &workloads)),
        "check" => {
            let checks = cor_experiments::check::run_checks(&mut matrix, &workloads);
            let (rendered, all_pass) = cor_experiments::check::render(&checks);
            println!("{rendered}");
            if !all_pass {
                std::process::exit(1);
            }
        }
        "all" => {
            emit(tables::table4_1(&workloads));
            emit(tables::table4_2(&workloads));
            emit(tables::table4_3(&mut matrix, &workloads));
            emit(tables::table4_4(&mut matrix, &workloads));
            emit(tables::table4_5(&mut matrix, &workloads));
            emit(figures::fig4_1(&mut matrix, &workloads));
            emit(figures::fig4_2(&mut matrix, &workloads));
            emit(figures::fig4_3(&mut matrix, &workloads));
            emit(figures::fig4_4(&mut matrix, &workloads));
            emit(figures::fig4_5(&mut matrix));
            emit(summary::constants());
            emit(summary::transfer_speedups(&mut matrix, &workloads));
            emit(summary::aggregates(&mut matrix, &workloads));
            emit(summary::ablation(&workloads, &pool));
            emit(summary::cow_study());
            emit(summary::sensitivity(&pool));
            emit(summary::modern_study(&workloads, &pool));
            emit(summary::policy_demo());
            emit(loss::loss_sweep(&workloads, &pool));
            emit(survivability::survivability(&workloads, &pool));
            emit(replication::replication(&workloads, &pool));
            emit(fleet::fleet(&pool));
            emit(saturation::saturation(&pool));
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!(
                "usage: experiments [--threads N] [--trace-out FILE] <command>\n\
                 commands: table4-1..table4-5, fig4-1..fig4-5, constants, summary, \
                 speedups, ablation, loss-sweep, survivability, survivability-csv, \
                 replication, replication-csv, fleet, fleet-csv, saturation, saturation-csv, \
                 cow-study, sensitivity, modern, \
                 trace [name] [--jsonl] [--summary], \
                 journal [name], metrics [name], profile [name|fleet], \
                 blame-csv [name|fleet], flamegraph [name|fleet], \
                 policy, csv, check, all"
            );
            std::process::exit(2);
        }
    }
    // A sweep (or any non-trace command) run with --trace-out still ships
    // a trace artifact: a fixed-seed Minprog trial at Full level.
    if let Some(path) = trace_out {
        let w = cor_workloads::minprog::workload();
        let t = trace::traced_trial(&w, trace::journal_level_from_env(JournalLevel::Full));
        std::fs::write(&path, t.perfetto()).expect("write --trace-out file");
        eprintln!("{}", t.describe());
        eprintln!("wrote {path}");
    }
}
