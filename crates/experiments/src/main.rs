//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <command>
//!
//! commands:
//!   table4-1 table4-2 table4-3 table4-4 table4-5
//!   fig4-1 fig4-2 fig4-3 fig4-4 fig4-5
//!   constants   fault-service microbenchmarks (§4.3.3)
//!   summary     §4.4 aggregate savings
//!   speedups    §4.3.2 transfer speedups
//!   ablation    pre-copy ablation (ours)
//!   loss-sweep  completion time vs wire drop rate (ours)
//!   all         everything above, in order
//! ```

use cor_experiments::{figures, loss, runner::Matrix, summary, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let workloads = cor_workloads::all();
    let mut matrix = Matrix::new();
    let emit = |s: String| println!("{s}");
    match cmd {
        "table4-1" => emit(tables::table4_1(&workloads)),
        "table4-2" => emit(tables::table4_2(&workloads)),
        "table4-3" => emit(tables::table4_3(&mut matrix, &workloads)),
        "table4-4" => emit(tables::table4_4(&mut matrix, &workloads)),
        "table4-5" => emit(tables::table4_5(&mut matrix, &workloads)),
        "fig4-1" => emit(figures::fig4_1(&mut matrix, &workloads)),
        "fig4-2" => emit(figures::fig4_2(&mut matrix, &workloads)),
        "fig4-3" => emit(figures::fig4_3(&mut matrix, &workloads)),
        "fig4-4" => emit(figures::fig4_4(&mut matrix, &workloads)),
        "fig4-5" => emit(figures::fig4_5(&mut matrix)),
        "constants" => emit(summary::constants()),
        "summary" => emit(summary::aggregates(&mut matrix, &workloads)),
        "speedups" => emit(summary::transfer_speedups(&mut matrix, &workloads)),
        "ablation" => emit(summary::ablation(&workloads)),
        "loss-sweep" => emit(loss::loss_sweep(&workloads)),
        "cow-study" => emit(summary::cow_study()),
        "sensitivity" => emit(summary::sensitivity()),
        "modern" => emit(summary::modern_study(&workloads)),
        "trace" => emit(summary::trace_demo(
            args.get(1).map(String::as_str).unwrap_or("Minprog"),
        )),
        "policy" => emit(summary::policy_demo()),
        "csv" => emit(cor_experiments::runner::matrix_csv(&mut matrix, &workloads)),
        "check" => {
            let checks = cor_experiments::check::run_checks(&mut matrix, &workloads);
            let (rendered, all_pass) = cor_experiments::check::render(&checks);
            println!("{rendered}");
            if !all_pass {
                std::process::exit(1);
            }
        }
        "all" => {
            emit(tables::table4_1(&workloads));
            emit(tables::table4_2(&workloads));
            emit(tables::table4_3(&mut matrix, &workloads));
            emit(tables::table4_4(&mut matrix, &workloads));
            emit(tables::table4_5(&mut matrix, &workloads));
            emit(figures::fig4_1(&mut matrix, &workloads));
            emit(figures::fig4_2(&mut matrix, &workloads));
            emit(figures::fig4_3(&mut matrix, &workloads));
            emit(figures::fig4_4(&mut matrix, &workloads));
            emit(figures::fig4_5(&mut matrix));
            emit(summary::constants());
            emit(summary::transfer_speedups(&mut matrix, &workloads));
            emit(summary::aggregates(&mut matrix, &workloads));
            emit(summary::ablation(&workloads));
            emit(summary::cow_study());
            emit(summary::sensitivity());
            emit(summary::modern_study(&workloads));
            emit(summary::policy_demo());
            emit(loss::loss_sweep(&workloads));
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!(
                "commands: table4-1..table4-5, fig4-1..fig4-5, constants, summary, \
                 speedups, ablation, loss-sweep, cow-study, sensitivity, modern, \
                 trace [name], policy, csv, check, all"
            );
            std::process::exit(2);
        }
    }
}
