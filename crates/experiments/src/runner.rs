//! Trial execution: one migration + remote execution per matrix cell.

use std::collections::{HashMap, HashSet};

use cor_kernel::{RuntimeKind, World};
use cor_mem::PageNum;
use cor_migrate::{MigrationManager, MigrationReport, Strategy};
use cor_sim::runtime::{run_serial, NodeRuntime};
use cor_sim::{Ledger, LedgerCategory, ReliabilityStats, SimDuration, SimTime};
use cor_workloads::Workload;

use crate::PREFETCHES;

/// The complete measurement record of one trial.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Representative name.
    pub workload: String,
    /// Strategy under test.
    pub strategy: Strategy,
    /// The migration-phase report.
    pub migration: MigrationReport,
    /// Remote execution time (first instruction at the new host to
    /// termination) — the Figure 4-1 quantity.
    pub exec_elapsed: SimDuration,
    /// Total wire bytes for the whole trial (Figure 4-3).
    pub total_bytes: u64,
    /// Wire bytes in the bulk category.
    pub bulk_bytes: u64,
    /// Wire bytes in support of imaginary faults.
    pub fault_bytes: u64,
    /// Message-handling CPU summed over both nodes (Figure 4-4).
    pub msg_cpu: SimDuration,
    /// Messages sent (local + remote).
    pub msgs: u64,
    /// Imaginary faults taken remotely.
    pub imag_faults: u64,
    /// Local disk faults taken remotely.
    pub disk_faults: u64,
    /// Zero-fill faults taken remotely.
    pub zero_faults: u64,
    /// Prefetch hit ratio, when anything was prefetched.
    pub prefetch_hit_ratio: Option<f64>,
    /// Distinct RealMem pages the process touched at the new site.
    pub touched_real_pages: u64,
    /// RealMem pages at migration time.
    pub real_pages: u64,
    /// Total validated pages.
    pub total_pages: u64,
    /// |resident set ∪ remotely-touched real pages| — the Table 4-3
    /// resident-set column numerator.
    pub rs_union_pages: u64,
    /// Wire bytes spent on retransmissions and injected duplicates (zero
    /// on a lossless wire).
    pub retransmit_bytes: u64,
    /// Fault-injection and recovery counters for the whole trial.
    pub reliability: ReliabilityStats,
    /// The full categorized wire ledger (Figure 4-5 time series).
    pub ledger: Ledger,
    /// Trial end time.
    pub end_time: SimTime,
}

impl Trial {
    /// Transfer + remote execution, the Figure 4-2 end-to-end quantity.
    pub fn end_to_end(&self) -> SimDuration {
        self.migration.timings.rimas_transfer + self.exec_elapsed
    }

    /// The CSV column names matching [`Trial::csv_row`].
    pub fn csv_header() -> &'static str {
        "workload,strategy,prefetch,excise_s,core_xfer_s,rimas_xfer_s,insert_s,\
         exec_s,end_to_end_s,wire_bytes,bulk_bytes,fault_bytes,msg_cpu_s,msgs,\
         imag_faults,disk_faults,zero_faults,prefetch_hit_ratio,\
         touched_real_pages,real_pages,carried_pages,owed_pages"
    }

    /// One machine-readable record of this trial.
    pub fn csv_row(&self) -> String {
        let t = &self.migration.timings;
        format!(
            "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{:.4},{},{},{},{},{},{},{},{},{}",
            self.workload,
            self.strategy.family(),
            self.strategy.prefetch(),
            t.excise_total.as_secs_f64(),
            t.core_transfer.as_secs_f64(),
            t.rimas_transfer.as_secs_f64(),
            t.insert_total.as_secs_f64(),
            self.exec_elapsed.as_secs_f64(),
            self.end_to_end().as_secs_f64(),
            self.total_bytes,
            self.bulk_bytes,
            self.fault_bytes,
            self.msg_cpu.as_secs_f64(),
            self.msgs,
            self.imag_faults,
            self.disk_faults,
            self.zero_faults,
            self.prefetch_hit_ratio.map_or(String::new(), |h| format!("{h:.3}")),
            self.touched_real_pages,
            self.real_pages,
            self.migration.carried_pages,
            self.migration.owed_pages,
        )
    }
}

/// Renders the complete paper matrix (7 representatives × 11 strategy
/// cells) as CSV for downstream analysis. Missing cells are computed in
/// parallel on the matrix's pool; rendering is serial and in cell order,
/// so the output is byte-identical at any thread count.
pub fn matrix_csv(matrix: &mut Matrix, workloads: &[Workload]) -> String {
    matrix.prefill(workloads, &Matrix::paper_strategies());
    let mut out = String::from(Trial::csv_header());
    out.push('\n');
    for w in workloads {
        for s in Matrix::paper_strategies() {
            out.push_str(&matrix.trial(w, s).csv_row());
            out.push('\n');
        }
    }
    out
}

/// Runs one trial of `workload` under `strategy` on a fresh testbed with
/// the default (1987-calibrated) cost models.
///
/// # Panics
///
/// Panics if the simulation reports an internal error — trials are
/// deterministic, so this indicates a bug, not an environmental failure.
pub fn run_trial(workload: &Workload, strategy: Strategy) -> Trial {
    run_trial_with(
        workload,
        strategy,
        cor_kernel::CostModel::default(),
        cor_net::WireParams::default(),
    )
}

/// Runs one trial under explicit cost models (used by the modern-hardware
/// what-if study).
///
/// # Panics
///
/// As for [`run_trial`].
pub fn run_trial_with(
    workload: &Workload,
    strategy: Strategy,
    costs: cor_kernel::CostModel,
    wire: cor_net::WireParams,
) -> Trial {
    run_trial_with_runtime(workload, strategy, costs, wire, RuntimeKind::from_env())
}

/// The three causal phases of a trial, as events on the per-node
/// runtimes when the actor runtime drives it.
#[derive(Debug, Clone, Copy)]
enum TrialPhase {
    /// Build the workload's process at the source (write phase).
    Build,
    /// Excise and migrate to the destination.
    Migrate,
    /// Resume at the destination (the read-back phase).
    Run,
}

/// [`run_trial_with`] under an explicit [`RuntimeKind`].
///
/// Both runtimes make the identical call sequence against the identical
/// world, so the trial record — journal, ledger, end time included — is
/// byte-identical. The actor runtime routes each phase through the
/// per-node event runtimes: `Build`/`Migrate` post to the source,
/// `Run` to the destination, and the seeded `(virtual_time, node, seq)`
/// pop order recovers the causal chain. A single trial is one strictly
/// causal chain (every phase needs its predecessor's result), so its
/// lookahead window is empty and the actor schedule stays serial — the
/// parallel win lives at fleet scale (`crate::fleet_actor`), not inside
/// one trial.
pub fn run_trial_with_runtime(
    workload: &Workload,
    strategy: Strategy,
    costs: cor_kernel::CostModel,
    wire: cor_net::WireParams,
    runtime: RuntimeKind,
) -> Trial {
    let mut world = World::new(costs, wire);
    // Sweeps run with the milestone-level journal by default so every
    // trial carries its migration/exec span skeleton at negligible cost;
    // COR_JOURNAL=off|summary|full overrides.
    world.enable_journal_at(crate::trace::journal_level_from_env(
        cor_sim::JournalLevel::Summary,
    ));
    let a = world.add_node();
    let b = world.add_node();
    let src = MigrationManager::new(&mut world, a);
    let dst = MigrationManager::new(&mut world, b);
    let mut pid = None;
    let mut snapshot = None;
    let mut migration = None;
    let mut exec = None;
    let mut phases = |world: &mut World, phase: TrialPhase| match phase {
        TrialPhase::Build => {
            let p = workload.build(world, a).expect("workload build");
            let process = world.process(a, p).expect("process");
            let real: HashSet<PageNum> =
                process.space.materialized_pages().map(|(p, _)| p).collect();
            let resident: HashSet<PageNum> = process.space.resident_pages().into_iter().collect();
            let total = process.space.stats().total_bytes() / cor_mem::PAGE_SIZE;
            snapshot = Some((real, resident, total));
            pid = Some(p);
        }
        TrialPhase::Migrate => {
            migration = Some(
                src.migrate_to(world, &dst, pid.expect("built"), strategy)
                    .expect("migration"),
            );
        }
        TrialPhase::Run => {
            exec = Some(world.run(b, pid.expect("built")).expect("remote execution"));
        }
    };
    match runtime {
        RuntimeKind::Lockstep => {
            phases(&mut world, TrialPhase::Build);
            phases(&mut world, TrialPhase::Migrate);
            phases(&mut world, TrialPhase::Run);
        }
        RuntimeKind::Actor => {
            // Post the whole causal chain up front: at one virtual
            // instant the pop order is (node, seq), which is exactly
            // Build (a, 0) → Migrate (a, 1) → Run (b, 0).
            let mut rts: Vec<NodeRuntime<TrialPhase>> =
                (0..2).map(|n| NodeRuntime::new(n, 0)).collect();
            let t0 = world.clock.now();
            rts[a.0 as usize].post(t0, TrialPhase::Build);
            rts[a.0 as usize].post(t0, TrialPhase::Migrate);
            rts[b.0 as usize].post(t0, TrialPhase::Run);
            run_serial(&mut rts, |_, _, _, phase| phases(&mut world, phase));
        }
    }
    let pid = pid.expect("built");
    let (real_set, resident_set, total_pages) = snapshot.expect("built");
    let migration = migration.expect("migrated");
    let exec = exec.expect("ran");
    let stats = world.process(b, pid).expect("process").stats.clone();
    let touched_real: HashSet<PageNum> = stats.touched.intersection(&real_set).copied().collect();
    let rs_union = resident_set.union(&touched_real).count() as u64;
    let fabric_stats = world.fabric.stats().clone();
    Trial {
        workload: workload.name().to_string(),
        strategy,
        migration,
        exec_elapsed: exec.elapsed,
        total_bytes: world.fabric.ledger.total(),
        bulk_bytes: world.fabric.ledger.total_for(LedgerCategory::Bulk),
        fault_bytes: world.fabric.ledger.total_for(LedgerCategory::FaultSupport),
        msg_cpu: fabric_stats.cpu_total,
        msgs: fabric_stats.msgs_total,
        imag_faults: stats.imag_faults,
        disk_faults: stats.disk_faults,
        zero_faults: stats.zero_faults,
        prefetch_hit_ratio: stats.prefetch_hit_ratio(),
        touched_real_pages: touched_real.len() as u64,
        real_pages: real_set.len() as u64,
        total_pages,
        rs_union_pages: rs_union,
        retransmit_bytes: world.fabric.ledger.total_for(LedgerCategory::Retransmit),
        reliability: world.fabric.reliability.clone(),
        ledger: world.fabric.ledger.clone(),
        end_time: world.clock.now(),
    }
}

/// The full experiment matrix: every representative under pure-copy and
/// under pure-IOU / resident-set at each studied prefetch value, computed
/// lazily and cached.
///
/// Each cell is an independent simulation on its own [`World`], so missing
/// cells can be computed concurrently ([`Matrix::prefill`]) on a
/// [`cor_pool::Pool`]; the cache is keyed by `(&'static str, Strategy)` —
/// both `Copy` — so a cache hit allocates nothing.
pub struct Matrix {
    cache: HashMap<(&'static str, Strategy), Trial>,
    pool: cor_pool::Pool,
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::new()
    }
}

impl Matrix {
    /// Creates an empty (lazy) matrix that computes cells serially.
    pub fn new() -> Self {
        Matrix::with_pool(cor_pool::Pool::serial())
    }

    /// Creates an empty matrix whose [`Matrix::prefill`] fans missing
    /// cells across `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Matrix::with_pool(cor_pool::Pool::new(threads))
    }

    /// Creates an empty matrix backed by an explicit pool.
    pub fn with_pool(pool: cor_pool::Pool) -> Self {
        Matrix {
            cache: HashMap::new(),
            pool,
        }
    }

    /// Worker threads used by [`Matrix::prefill`].
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The pool backing this matrix (pools are `Copy`: a thread budget,
    /// not live workers).
    pub fn pool(&self) -> cor_pool::Pool {
        self.pool
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether no cell has been computed yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Returns the trial for `(workload, strategy)`, running it on first
    /// use. The lookup key is built from borrowed data — a hit performs no
    /// allocation.
    pub fn trial(&mut self, workload: &Workload, strategy: Strategy) -> &Trial {
        self.cache
            .entry((workload.name(), strategy))
            .or_insert_with(|| run_trial(workload, strategy))
    }

    /// Computes every missing `(workload, strategy)` cell, fanning the
    /// independent trials across the matrix's pool. Results are inserted
    /// in deterministic cell order (workload-major), so the cache — and
    /// everything rendered from it — is identical to a serial fill.
    pub fn prefill(&mut self, workloads: &[Workload], strategies: &[Strategy]) {
        let missing: Vec<(usize, Strategy)> = workloads
            .iter()
            .enumerate()
            .flat_map(|(i, w)| {
                strategies
                    .iter()
                    .filter(|&&s| !self.cache.contains_key(&(w.name(), s)))
                    .map(move |&s| (i, s))
            })
            .collect();
        let jobs: Vec<_> = missing
            .iter()
            .map(|&(i, s)| {
                let w = &workloads[i];
                move || run_trial(w, s)
            })
            .collect();
        let trials = self.pool.run(jobs);
        for (&(i, s), trial) in missing.iter().zip(trials) {
            self.cache.insert((workloads[i].name(), s), trial);
        }
    }

    /// All strategies of the paper's matrix for one workload: pure-copy,
    /// then pure-IOU at each prefetch, then resident-set at each prefetch.
    pub fn paper_strategies() -> Vec<Strategy> {
        let mut v = vec![Strategy::PureCopy];
        v.extend(
            PREFETCHES
                .iter()
                .map(|&p| Strategy::PureIou { prefetch: p }),
        );
        v.extend(
            PREFETCHES
                .iter()
                .map(|&p| Strategy::ResidentSet { prefetch: p }),
        );
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minprog_trial_sanity() {
        let w = cor_workloads::minprog::workload();
        let t = run_trial(&w, Strategy::PureIou { prefetch: 0 });
        assert_eq!(t.real_pages, 278);
        assert_eq!(t.touched_real_pages, 24);
        assert_eq!(t.imag_faults, 24);
        assert!(t.total_bytes > 24 * 512);
        // IOU RIMAS transfer is sub-second (Table 4-5 says 0.16 s).
        assert!(t.migration.timings.rimas_transfer.as_secs_f64() < 0.5);
    }

    #[test]
    fn matrix_caches_trials() {
        let mut m = Matrix::new();
        let w = cor_workloads::minprog::workload();
        let a = m.trial(&w, Strategy::PureCopy).end_time;
        let b = m.trial(&w, Strategy::PureCopy).end_time;
        assert_eq!(a, b);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn prefill_skips_cached_cells_and_fills_the_rest() {
        let w = vec![cor_workloads::minprog::workload()];
        let strategies = [Strategy::PureCopy, Strategy::PureIou { prefetch: 0 }];
        let mut m = Matrix::with_threads(2);
        let first = m.trial(&w[0], Strategy::PureCopy).end_time;
        m.prefill(&w, &strategies);
        assert_eq!(m.len(), 2);
        // The cached cell was not recomputed (same end_time instance).
        assert_eq!(m.trial(&w[0], Strategy::PureCopy).end_time, first);
    }

    #[test]
    fn parallel_matrix_csv_is_byte_identical_to_serial() {
        let workloads = vec![cor_workloads::minprog::workload()];
        let serial = matrix_csv(&mut Matrix::new(), &workloads);
        let parallel = matrix_csv(&mut Matrix::with_threads(4), &workloads);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn csv_rows_are_complete_and_parseable() {
        let w = cor_workloads::minprog::workload();
        let t = run_trial(&w, Strategy::PureIou { prefetch: 1 });
        let header_cols = Trial::csv_header().split(',').count();
        let row = t.csv_row();
        assert_eq!(row.split(',').count(), header_cols, "{row}");
        assert!(row.starts_with("Minprog,pure-iou,1,"));
        // Numeric fields parse.
        let cols: Vec<&str> = row.split(',').collect();
        assert!(cols[8].parse::<f64>().is_ok(), "end_to_end: {}", cols[8]);
        assert!(cols[9].parse::<u64>().is_ok(), "wire_bytes: {}", cols[9]);
    }

    #[test]
    fn paper_strategy_matrix_shape() {
        let s = Matrix::paper_strategies();
        assert_eq!(s.len(), 11);
        assert!(matches!(s[0], Strategy::PureCopy));
    }
}
