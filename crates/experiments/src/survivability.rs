//! Survivability sweep (ours): crash time × strategy × drain rate.
//!
//! The paper's §4.4 concedes the residual-dependency problem — a migrated
//! process dies with the source node that still backs its untouched
//! pages — but never measures it. This study does: a representative
//! workload is migrated under each strategy, the source is killed by a
//! seeded [`CrashPlan`] at a swept delay after migration, and background
//! flush-draining at a swept rate races the crash. Each cell reports
//! whether the process survived, whether its memory is byte-identical to
//! a crash-free run, how many pages the recovery ladder salvaged from the
//! crashed node's disk backer, and what the draining cost — which is
//! ledgered under its own category so the paper tables are untouched.

use cor_kernel::{CostModel, DrainPolicy, KernelError, World};
use cor_migrate::{Drainer, MigrationManager, Strategy};
use cor_net::{CrashPlan, WireParams};
use cor_pool::Pool;
use cor_sim::{LedgerCategory, SimDuration};
use cor_workloads::Workload;

use crate::render::{commas, secs, TextTable};

/// Crash delays after migration completes, in milliseconds.
pub const CRASH_DELAYS_MS: [u64; 3] = [1_000, 3_000, 10_000];

/// Studied background flush rates (pages per idle round; 0 = no drain).
pub const DRAIN_RATES: [u64; 3] = [0, 8, 64];

/// Seed for the sweep's crash-injection RNG; fixed for reproducibility.
const SWEEP_SEED: u64 = 0xC4A5;

/// The strategies compared: pure-copy carries everything up front (no
/// residual dependency at all), the two lazy strategies are exposed.
fn strategies() -> [Strategy; 3] {
    [
        Strategy::PureCopy,
        Strategy::PureIou { prefetch: 0 },
        Strategy::ResidentSet { prefetch: 0 },
    ]
}

/// One cell's outcome.
#[derive(Debug, Clone)]
pub struct SurvivalOutcome {
    /// Crash delay after migration.
    pub delay: SimDuration,
    /// Strategy under test.
    pub strategy: Strategy,
    /// Flush rate (pages per idle round).
    pub drain_rate: u64,
    /// Whether the process ran to termination despite the crash.
    pub survived: bool,
    /// Whether its touched memory matched the crash-free run byte for
    /// byte (`false` while orphaned — there is nothing to compare).
    pub checksum_match: bool,
    /// Owed pages lost for good.
    pub pages_lost: u64,
    /// Owed pages the recovery ladder salvaged from the dead node's disk.
    pub pages_recovered: u64,
    /// Pages made crash-safe by background draining before the crash.
    pub drained_pages: u64,
    /// Wire/disk bytes ledgered to the drain category.
    pub drain_bytes: u64,
    /// Post-migration wall time (drain + execution + recovery).
    pub remote_elapsed: SimDuration,
}

/// Runs one survivability cell: migrate, optionally flush-drain in the
/// background (one page budget per foreground op), and kill the source
/// `delay` after migration via a seeded [`CrashPlan`]. When `crash` is
/// false the same cell runs crash-free — the checksum baseline.
///
/// # Panics
///
/// Panics on internal simulation errors other than the expected
/// [`KernelError::OrphanedProcess`] outcome.
fn run_cell(
    workload: &Workload,
    strategy: Strategy,
    drain_rate: u64,
    delay: SimDuration,
    crash: bool,
) -> (Option<u64>, SurvivalOutcome) {
    let mut world = World::new(CostModel::default(), WireParams::default());
    let a = world.add_node();
    let b = world.add_node();
    let src = MigrationManager::new(&mut world, a);
    let dst = MigrationManager::new(&mut world, b);
    let pid = workload.build(&mut world, a).expect("workload build");
    src.migrate_to(&mut world, &dst, pid, strategy)
        .expect("migration");
    // Count only remote touches so the checksum covers exactly the pages
    // the process observed at the new site.
    world.reset_touch_tracking(b, pid).expect("tracking reset");
    let migration_end = world.clock.now();
    if crash {
        world.fabric.params.crashes = Some(CrashPlan::at_time(SWEEP_SEED, a, migration_end + delay));
    }
    let drainer = Drainer::new(DrainPolicy::flush(drain_rate)).with_interleave(1);
    let run = drainer.run(&mut world, b, pid);
    let rel = &world.fabric.reliability;
    let mut outcome = SurvivalOutcome {
        delay,
        strategy,
        drain_rate,
        survived: false,
        checksum_match: false,
        pages_lost: rel.pages_lost.get(),
        pages_recovered: rel.pages_recovered.get(),
        drained_pages: rel.drained_pages.get(),
        drain_bytes: world.fabric.ledger.total_for(LedgerCategory::Drain),
        remote_elapsed: world.clock.now().since(migration_end),
    };
    match run {
        Ok(report) => {
            assert!(report.finished, "drained run ended without terminating");
            outcome.survived = true;
            let sum = world.touched_checksum(b, pid).expect("checksum");
            (Some(sum), outcome)
        }
        Err(KernelError::OrphanedProcess { .. }) => (None, outcome),
        Err(e) => panic!("unexpected survivability failure: {e}"),
    }
}

/// Computes every cell of the sweep in deterministic order, fanning the
/// independent `(delay, strategy, rate)` simulations across `pool`. Each
/// cell also runs its own crash-free twin for the byte-identity check.
///
/// # Panics
///
/// Panics if `workloads` is empty or a cell fails internally.
pub fn survival_outcomes(workloads: &[Workload], pool: &Pool) -> Vec<SurvivalOutcome> {
    let w = workloads
        .iter()
        .find(|w| w.name() == "Minprog")
        .unwrap_or(&workloads[0]);
    let cells: Vec<(u64, Strategy, u64)> = CRASH_DELAYS_MS
        .iter()
        .flat_map(|&ms| {
            strategies()
                .into_iter()
                .flat_map(move |s| DRAIN_RATES.map(|r| (ms, s, r)))
        })
        .collect();
    let jobs: Vec<_> = cells
        .iter()
        .map(|&(ms, strategy, rate)| {
            move || {
                let delay = SimDuration::from_millis(ms);
                let (clean, _) = run_cell(w, strategy, rate, delay, false);
                let (crashed, mut outcome) = run_cell(w, strategy, rate, delay, true);
                outcome.checksum_match = match (crashed, clean) {
                    (Some(c), Some(k)) => c == k,
                    _ => false,
                };
                outcome
            }
        })
        .collect();
    pool.run(jobs)
}

/// Runs the sweep and renders the table (serial, cell-order rendering:
/// byte-identical at any thread count).
///
/// # Panics
///
/// As for [`survival_outcomes`].
pub fn survivability(workloads: &[Workload], pool: &Pool) -> String {
    let outcomes = survival_outcomes(workloads, pool);
    let w = workloads
        .iter()
        .find(|w| w.name() == "Minprog")
        .unwrap_or(&workloads[0]);
    let mut t = TextTable::new(&[
        "crash+s",
        "strategy",
        "drain/rnd",
        "survived",
        "bytes",
        "lost",
        "recovered",
        "drained",
        "drain bytes",
        "remote s",
    ]);
    for o in &outcomes {
        t.row(vec![
            secs(o.delay.as_secs_f64()),
            o.strategy.family().to_string(),
            o.drain_rate.to_string(),
            if o.survived { "yes" } else { "ORPHANED" }.to_string(),
            if o.checksum_match { "match" } else { "-" }.to_string(),
            o.pages_lost.to_string(),
            o.pages_recovered.to_string(),
            o.drained_pages.to_string(),
            commas(o.drain_bytes),
            secs(o.remote_elapsed.as_secs_f64()),
        ]);
    }
    format!(
        "Survivability (ours): {} under a source crash at +delay after migration\n\
         (seeded CrashPlan; background flush-to-disk draining at the given\n\
         page budget per idle round; recovery from the crashed node's disk backer)\n\n{}",
        w.name(),
        t.render()
    )
}

/// The sweep as CSV for downstream analysis.
///
/// # Panics
///
/// As for [`survival_outcomes`].
pub fn survivability_csv(workloads: &[Workload], pool: &Pool) -> String {
    let outcomes = survival_outcomes(workloads, pool);
    let mut out = String::from(
        "crash_delay_s,strategy,drain_rate,survived,checksum_match,\
         pages_lost,pages_recovered,drained_pages,drain_bytes,remote_s\n",
    );
    for o in &outcomes {
        out.push_str(&format!(
            "{:.3},{},{},{},{},{},{},{},{},{:.4}\n",
            o.delay.as_secs_f64(),
            o.strategy.family(),
            o.drain_rate,
            o.survived,
            o.checksum_match,
            o.pages_lost,
            o.pages_recovered,
            o.drained_pages,
            o.drain_bytes,
            o.remote_elapsed.as_secs_f64(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes() -> Vec<SurvivalOutcome> {
        survival_outcomes(&[cor_workloads::minprog::workload()], &Pool::serial())
    }

    #[test]
    fn sweep_renders_and_is_deterministic_across_thread_counts() {
        let workloads = vec![cor_workloads::minprog::workload()];
        let serial = survivability(&workloads, &Pool::serial());
        assert!(serial.contains("survived"));
        let rows = serial.lines().filter(|l| l.contains("pure-")).count();
        assert_eq!(rows, CRASH_DELAYS_MS.len() * 2 * DRAIN_RATES.len());
        assert_eq!(
            serial,
            survivability(&workloads, &Pool::serial()),
            "sweep is reproducible"
        );
        assert_eq!(
            serial,
            survivability(&workloads, &Pool::new(4)),
            "pooled sweep is byte-identical to serial"
        );
        let csv = survivability_csv(&workloads, &Pool::new(2));
        assert_eq!(csv, survivability_csv(&workloads, &Pool::serial()));
        assert_eq!(csv.lines().count(), 1 + 27);
    }

    #[test]
    fn pure_copy_always_survives_with_matching_bytes() {
        for o in outcomes()
            .iter()
            .filter(|o| matches!(o.strategy, Strategy::PureCopy))
        {
            assert!(o.survived, "{o:?}");
            assert!(o.checksum_match, "{o:?}");
            assert_eq!(o.pages_lost, 0, "{o:?}");
        }
    }

    #[test]
    fn every_cell_is_survival_or_typed_orphan_never_a_third_state() {
        for o in outcomes() {
            if o.survived {
                assert!(
                    o.checksum_match,
                    "a survivor must be byte-identical to the crash-free run: {o:?}"
                );
            } else {
                assert!(o.pages_lost > 0, "an orphan lost something: {o:?}");
                assert!(!o.checksum_match);
            }
        }
    }

    #[test]
    fn draining_strictly_improves_early_crash_survival() {
        let all = outcomes();
        let survival = |rate: u64| {
            all.iter()
                .filter(|o| o.drain_rate == rate && o.survived)
                .count()
        };
        assert!(
            survival(64) > survival(0),
            "heavy draining must save runs that no draining loses: {} vs {}",
            survival(64),
            survival(0)
        );
        // Fast draining survives even the earliest crash under every
        // strategy — including the cell that slow/no draining loses.
        for o in all
            .iter()
            .filter(|o| o.drain_rate == 64 && o.delay == SimDuration::from_millis(1_000))
        {
            assert!(o.survived, "{o:?}");
        }
    }
}
