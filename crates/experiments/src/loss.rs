//! Loss sweep (ours): migration completion time vs wire drop rate.
//!
//! The paper's testbed wire was effectively perfect; this study asks what
//! copy-on-reference costs when it is not. A representative workload is
//! migrated under pure-copy and pure-IOU across seeded per-attempt drop
//! rates, and the end-to-end time, retransmission volume and stall time
//! are tabulated. The shape of the result is the interesting part:
//! pure-copy fronts all its exposure in one huge transfer, while
//! copy-on-reference spreads its exposure across many small fault round
//! trips, each individually cheap to retry but each stalling the process
//! on its critical path.

use cor_migrate::Strategy;
use cor_net::{FaultPlan, WireParams};
use cor_pool::Pool;
use cor_workloads::Workload;

use crate::render::{commas, secs, TextTable};
use crate::runner::run_trial_with;

/// The studied per-attempt drop rates, in percent.
pub const DROP_RATES_PCT: [u32; 6] = [0, 2, 5, 10, 15, 20];

/// Seed for the sweep's fault-injection RNG; fixed so the table is
/// reproducible run to run.
const SWEEP_SEED: u64 = 0x10E5;

/// Runs the sweep over `workloads` (the first entry named `Minprog`, or
/// the first workload) and renders the table. Every `(rate, strategy)`
/// cell is an independent seeded simulation, so the cells fan out across
/// `pool`; rows are emitted serially in sweep order, making the table
/// byte-identical at any thread count.
///
/// # Panics
///
/// Panics if `workloads` is empty or a trial fails internally.
pub fn loss_sweep(workloads: &[Workload], pool: &Pool) -> String {
    let w = workloads
        .iter()
        .find(|w| w.name() == "Minprog")
        .unwrap_or(&workloads[0]);
    let mut t = TextTable::new(&[
        "drop%",
        "strategy",
        "end-to-end s",
        "retransmits",
        "retx bytes",
        "stall s",
        "dup drops",
    ]);
    let cells: Vec<(u32, Strategy)> = DROP_RATES_PCT
        .iter()
        .flat_map(|&pct| {
            [Strategy::PureCopy, Strategy::PureIou { prefetch: 1 }].map(|s| (pct, s))
        })
        .collect();
    let jobs: Vec<_> = cells
        .iter()
        .map(|&(pct, strategy)| {
            move || {
                let mut wire = WireParams::default();
                if pct > 0 {
                    wire.faults = Some(FaultPlan::dropping(
                        SWEEP_SEED + pct as u64,
                        pct as f64 / 100.0,
                    ));
                }
                run_trial_with(w, strategy, cor_kernel::CostModel::default(), wire)
            }
        })
        .collect();
    let trials = pool.run(jobs);
    for ((pct, strategy), trial) in cells.iter().zip(&trials) {
        t.row(vec![
            format!("{pct}"),
            strategy.family().to_string(),
            secs(trial.end_to_end().as_secs_f64()),
            trial.reliability.retransmissions.get().to_string(),
            commas(trial.retransmit_bytes),
            secs(trial.reliability.stall_time.as_secs_f64()),
            trial.reliability.duplicate_drops.get().to_string(),
        ]);
    }
    format!(
        "Loss sweep (ours): {} completion vs per-attempt drop rate\n\
         (seeded deterministic injection; retry budget {}, base timeout {:?})\n\n{}",
        w.name(),
        WireParams::default().retry_budget,
        WireParams::default().retry_timeout,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_sweep_renders_and_is_deterministic() {
        let workloads = vec![cor_workloads::minprog::workload()];
        let serial = Pool::serial();
        let once = loss_sweep(&workloads, &serial);
        assert!(once.contains("drop%"));
        // One row per (rate x strategy) plus header and rule.
        let rows = once.lines().filter(|l| l.contains("pure-")).count();
        assert_eq!(rows, DROP_RATES_PCT.len() * 2);
        assert_eq!(
            once,
            loss_sweep(&workloads, &serial),
            "sweep is reproducible"
        );
        assert_eq!(
            once,
            loss_sweep(&workloads, &Pool::new(4)),
            "pooled sweep is byte-identical to serial"
        );
    }

    #[test]
    fn lossy_trials_cost_more_than_lossless() {
        let w = cor_workloads::minprog::workload();
        let clean = run_trial_with(
            &w,
            Strategy::PureIou { prefetch: 1 },
            cor_kernel::CostModel::default(),
            WireParams::default(),
        );
        let mut wire = WireParams::default();
        wire.faults = Some(FaultPlan::dropping(9, 0.20));
        let lossy = run_trial_with(
            &w,
            Strategy::PureIou { prefetch: 1 },
            cor_kernel::CostModel::default(),
            wire,
        );
        assert_eq!(clean.retransmit_bytes, 0);
        assert!(lossy.retransmit_bytes > 0);
        assert!(lossy.reliability.retransmissions.get() > 0);
        assert!(lossy.end_to_end() > clean.end_to_end());
        assert_eq!(
            lossy.imag_faults, clean.imag_faults,
            "loss changes cost, not behaviour"
        );
    }
}
