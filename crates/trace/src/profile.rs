//! The critical-path profiler: exact blame decomposition over span
//! trees, per-node/per-link blame tables, and folded-stack virtual-time
//! flamegraphs.
//!
//! The journal records *what happened* as a causal span tree; this
//! module answers *where the time went*. Every closed span's duration
//! is partitioned — exactly, in integer virtual-time microseconds —
//! into seven blame buckets:
//!
//! | bucket | charged from |
//! |---|---|
//! | `local-service` | any self time not claimed below (CPU, page install, disk) |
//! | `link-queue-wait` | `link-queue` spans (routed sends waiting for busy links) |
//! | `wire-transit` | `link-transit` spans and `xmit-attempt` self time |
//! | `retransmit-backoff` | `retry-backoff` spans (timeout → exponential backoff) |
//! | `coalesce-park` | `coalesce-park` spans (PIT-parked relay requests) |
//! | `failover` | all self time under a `failover` span (replica reads after a crash) |
//! | `replication` | all self time under a `replicate` span (healthy-path replica reads) |
//!
//! The decomposition works bottom-up on **self time**: a span's self
//! time is its duration minus the durations of its children (children
//! nest, so this never double-counts), classified by the span's name —
//! except inside a `failover`/`replicate` subtree, where every
//! descendant's self time is charged to that bucket (the question "how
//! much did failover cost" dominates "how was the failover's wire time
//! split"). Summing a span's buckets reproduces its duration exactly
//! ([`Profile::sums_exactly`] guards the invariant), and summing self
//! time over a whole trace gives the fleet-level blame table.
//!
//! A span abandoned by an error path (`end == None`) contributes zero
//! duration and is exported with an explicit `"abandoned":true` flag.
//!
//! The [`Profile::critical_path`] of a root follows the latest-ending
//! child at every level — the chain of operations that determined when
//! the root finished; its self-time total is a lower bound on the
//! root's duration and tells you what to optimize first.
//!
//! [`Profile::folded`] renders the whole tree as inferno /
//! `flamegraph.pl`-compatible folded stacks (`frame;frame;frame N`
//! with self-time microsecond counts), deterministic by construction
//! (stacks are aggregated and emitted in sorted order).

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

use cor_ipc::NodeId;
use cor_sim::SimTime;

use crate::export::escape;
use crate::journal::Journal;
use crate::metrics::LogHistogram;

/// Number of blame buckets.
pub const BUCKET_COUNT: usize = 7;

/// One blame bucket of the exact latency decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlameBucket {
    /// CPU, page install, disk, and anything else unclaimed.
    LocalService = 0,
    /// Waiting for a busy interconnect link (`link-queue`).
    LinkQueueWait = 1,
    /// Time on the wire: hop latency and transmission (`link-transit`,
    /// `xmit-attempt` self time).
    WireTransit = 2,
    /// Exponential backoff between retransmit attempts.
    RetransmitBackoff = 3,
    /// Parked in a relay's pending-interest table behind an in-flight
    /// upstream request.
    CoalescePark = 4,
    /// Fetching from a replica home because the primary is down.
    Failover = 5,
    /// Healthy-path replica reads and write-through.
    Replication = 6,
}

impl BlameBucket {
    /// All buckets, in column order.
    pub const ALL: [BlameBucket; BUCKET_COUNT] = [
        BlameBucket::LocalService,
        BlameBucket::LinkQueueWait,
        BlameBucket::WireTransit,
        BlameBucket::RetransmitBackoff,
        BlameBucket::CoalescePark,
        BlameBucket::Failover,
        BlameBucket::Replication,
    ];

    /// The bucket's stable kebab-case name (CSV column, docs).
    pub fn name(self) -> &'static str {
        match self {
            BlameBucket::LocalService => "local-service",
            BlameBucket::LinkQueueWait => "link-queue-wait",
            BlameBucket::WireTransit => "wire-transit",
            BlameBucket::RetransmitBackoff => "retransmit-backoff",
            BlameBucket::CoalescePark => "coalesce-park",
            BlameBucket::Failover => "failover",
            BlameBucket::Replication => "replication",
        }
    }

    /// Column index, `0..BUCKET_COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The bucket a span's *self* time belongs to, by span name (before the
/// failover/replication subtree override).
pub fn self_bucket(name: &str) -> BlameBucket {
    match name {
        "link-queue" => BlameBucket::LinkQueueWait,
        "link-transit" | "xmit-attempt" => BlameBucket::WireTransit,
        "retry-backoff" => BlameBucket::RetransmitBackoff,
        "coalesce-park" => BlameBucket::CoalescePark,
        "failover" => BlameBucket::Failover,
        "replicate" => BlameBucket::Replication,
        _ => BlameBucket::LocalService,
    }
}

/// One span of a profile: a [`crate::Span`] with its parent resolved to
/// a dense index (parents always precede children) and the journal of
/// origin remembered as `source`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfSpan {
    /// Journal of origin (`"world"` / `"fabric"`).
    pub source: &'static str,
    /// Static operation name.
    pub name: &'static str,
    /// The node the operation ran on, if attributable.
    pub node: Option<NodeId>,
    /// Open instant.
    pub start: SimTime,
    /// Close instant; `None` marks a span abandoned by an error path
    /// (zero duration, exported with an `abandoned` flag).
    pub end: Option<SimTime>,
    /// Index of the enclosing span, or `None` for a root.
    pub parent: Option<usize>,
}

impl ProfSpan {
    /// The span's duration in virtual-time microseconds (0 if
    /// abandoned).
    pub fn dur_us(&self) -> u64 {
        self.end.map(|e| e.since(self.start).as_micros()).unwrap_or(0)
    }

    /// Whether the span was abandoned (never closed).
    pub fn abandoned(&self) -> bool {
        self.end.is_none()
    }
}

/// One step of a critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalStep {
    /// Span name.
    pub name: &'static str,
    /// Span node.
    pub node: Option<NodeId>,
    /// Self time contributed by this step.
    pub self_us: u64,
}

/// The latest-ending-child chain below one root span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Index of the root span.
    pub root: usize,
    /// Steps from the root down to a leaf.
    pub steps: Vec<CriticalStep>,
    /// Sum of step self times — never exceeds the root's duration.
    pub total_us: u64,
}

/// An analyzed span forest: self times, exact blame decompositions,
/// critical paths, blame tables, folded flamegraphs, and a
/// deterministic span export.
#[derive(Debug, Clone)]
pub struct Profile {
    spans: Vec<ProfSpan>,
    children: Vec<Vec<usize>>,
    self_us: Vec<u64>,
    bucket: Vec<BlameBucket>,
    blame: Vec<[u64; BUCKET_COUNT]>,
    exact: bool,
}

impl Profile {
    /// Builds a profile from merged journals, in journal order (the
    /// kernel exports the world journal first, then the fabric journal,
    /// so profiles built here are comparable byte-for-byte with profiles
    /// reconstructed by the actor runtime's merge). Parents are resolved
    /// across journals; an unknown parent id demotes the span to a root.
    pub fn from_journals(journals: &[(&'static str, &Journal)]) -> Profile {
        let total: usize = journals.iter().map(|(_, j)| j.spans().len()).sum();
        let mut index: HashMap<u64, usize> = HashMap::with_capacity(total);
        let mut spans = Vec::with_capacity(total);
        for (source, j) in journals {
            for s in j.spans() {
                let parent = if s.parent.is_none() {
                    None
                } else {
                    let p = index.get(&s.parent.0).copied();
                    debug_assert!(p.is_some(), "parent {:?} of {:?} unseen", s.parent, s.id);
                    p
                };
                index.insert(s.id.0, spans.len());
                spans.push(ProfSpan {
                    source,
                    name: s.name,
                    node: s.node,
                    start: s.start,
                    end: s.end,
                    parent,
                });
            }
        }
        Profile::from_spans(spans)
    }

    /// Builds a profile from pre-resolved spans (the actor runtime's
    /// merge constructs these directly). Parents must precede children.
    pub fn from_spans(spans: Vec<ProfSpan>) -> Profile {
        let n = spans.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, s) in spans.iter().enumerate() {
            if let Some(p) = s.parent {
                debug_assert!(p < i, "parent index {p} must precede child {i}");
                if p < i {
                    children[p].push(i);
                }
            }
        }

        // Self time: duration minus children's durations. Children nest
        // inside their parent, so the subtraction is exact; `exact`
        // records whether that held everywhere.
        let mut exact = true;
        let mut self_us = vec![0u64; n];
        for i in 0..n {
            let kids: u64 = children[i].iter().map(|&c| spans[c].dur_us()).sum();
            let dur = spans[i].dur_us();
            exact &= kids <= dur;
            self_us[i] = dur.saturating_sub(kids);
        }

        // Effective bucket per span: by name, except inside a
        // failover/replicate subtree where the override is inherited.
        let mut bucket: Vec<BlameBucket> = Vec::with_capacity(n);
        for (i, s) in spans.iter().enumerate() {
            debug_assert_eq!(bucket.len(), i);
            let inherited = s
                .parent
                .map(|p| bucket[p])
                .filter(|b| matches!(b, BlameBucket::Failover | BlameBucket::Replication));
            let b = match s.name {
                "failover" => BlameBucket::Failover,
                "replicate" => BlameBucket::Replication,
                name => inherited.unwrap_or_else(|| self_bucket(name)),
            };
            bucket.push(b);
        }

        // Bottom-up blame: children (higher indices) fold into parents.
        let mut blame = vec![[0u64; BUCKET_COUNT]; n];
        for i in (0..n).rev() {
            blame[i][bucket[i].index()] += self_us[i];
            if let Some(p) = spans[i].parent {
                if p < i {
                    let (head, tail) = blame.split_at_mut(i);
                    for b in 0..BUCKET_COUNT {
                        head[p][b] += tail[0][b];
                    }
                }
            }
        }

        Profile {
            spans,
            children,
            self_us,
            bucket,
            blame,
            exact,
        }
    }

    /// All spans, parents before children.
    pub fn spans(&self) -> &[ProfSpan] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when the profile holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Self time of span `i` (duration minus children's durations).
    pub fn self_us(&self, i: usize) -> u64 {
        self.self_us[i]
    }

    /// The bucket span `i`'s self time is charged to.
    pub fn bucket(&self, i: usize) -> BlameBucket {
        self.bucket[i]
    }

    /// The exact blame decomposition of span `i`'s whole subtree; the
    /// seven entries sum to the span's duration (see
    /// [`Profile::sums_exactly`]).
    pub fn blame(&self, i: usize) -> &[u64; BUCKET_COUNT] {
        &self.blame[i]
    }

    /// Whether every span's blame buckets sum exactly to its duration —
    /// true whenever children nest properly inside their parents, which
    /// the journal's stack discipline guarantees.
    pub fn sums_exactly(&self) -> bool {
        self.exact
    }

    /// Indices of root spans, ascending.
    pub fn roots(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.spans.len()).filter(move |&i| self.spans[i].parent.is_none())
    }

    /// Indices of spans with the given name, ascending.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = usize> + 'a {
        (0..self.spans.len()).filter(move |&i| self.spans[i].name == name)
    }

    /// Whole-trace blame: summed self time per bucket. Equals the sum
    /// of every root's blame decomposition.
    pub fn total_blame(&self) -> [u64; BUCKET_COUNT] {
        let mut total = [0u64; BUCKET_COUNT];
        for i in 0..self.spans.len() {
            total[self.bucket[i].index()] += self.self_us[i];
        }
        total
    }

    /// Total profiled self time (the sum of [`Profile::total_blame`]).
    pub fn total_us(&self) -> u64 {
        self.self_us.iter().sum()
    }

    /// Per-node blame table, keyed by the node the self time accrued
    /// on (`None` is the global wire pseudo-node).
    pub fn node_blame(&self) -> BTreeMap<Option<NodeId>, [u64; BUCKET_COUNT]> {
        let mut per: BTreeMap<Option<NodeId>, [u64; BUCKET_COUNT]> = BTreeMap::new();
        for i in 0..self.spans.len() {
            per.entry(self.spans[i].node).or_insert([0; BUCKET_COUNT])
                [self.bucket[i].index()] += self.self_us[i];
        }
        per
    }

    /// A latency histogram over the durations of every closed span
    /// named `name`.
    pub fn histogram(&self, name: &str) -> LogHistogram {
        let mut h = LogHistogram::new();
        for (i, s) in self.spans.iter().enumerate() {
            if s.name == name && s.end.is_some() {
                h.record(self.spans[i].dur_us());
            }
        }
        h
    }

    /// The critical path below root `i`: follow the latest-ending child
    /// at every level (ties resolved toward the later index, i.e. the
    /// later-created span). The chain's self-time total never exceeds
    /// the root's duration.
    pub fn critical_path(&self, root: usize) -> CriticalPath {
        let mut steps = Vec::new();
        let mut total = 0u64;
        let mut cur = root;
        loop {
            steps.push(CriticalStep {
                name: self.spans[cur].name,
                node: self.spans[cur].node,
                self_us: self.self_us[cur],
            });
            total += self.self_us[cur];
            let next = self.children[cur]
                .iter()
                .copied()
                .max_by_key(|&c| (self.spans[c].end.unwrap_or(self.spans[c].start), c));
            match next {
                Some(c) => cur = c,
                None => break,
            }
        }
        CriticalPath {
            root,
            steps,
            total_us: total,
        }
    }

    /// Renders the blame tables as CSV: one `total` row, one row per
    /// node, and one `link-queue-wait` row per directed link (link
    /// waits are passed in from the fabric's per-link statistics; the
    /// span tree attributes queue wait to the sending node, the link
    /// table splits it by link).
    pub fn blame_csv(&self, links: &[((NodeId, NodeId), u64)]) -> String {
        let mut out = String::from("scope,key");
        for b in BlameBucket::ALL {
            let _ = write!(out, ",{}_us", b.name());
        }
        out.push_str(",total_us\n");
        let row = |out: &mut String, scope: &str, key: &str, cells: &[u64; BUCKET_COUNT]| {
            let _ = write!(out, "{scope},{key}");
            let mut total = 0u64;
            for &v in cells {
                let _ = write!(out, ",{v}");
                total += v;
            }
            let _ = writeln!(out, ",{total}");
        };
        row(&mut out, "total", "all", &self.total_blame());
        for (node, cells) in self.node_blame() {
            let key = match node {
                Some(n) => n.to_string(),
                None => "wire".to_string(),
            };
            row(&mut out, "node", &key, &cells);
        }
        for &((from, to), wait_us) in links {
            let mut cells = [0u64; BUCKET_COUNT];
            cells[BlameBucket::LinkQueueWait.index()] = wait_us;
            row(&mut out, "link", &format!("{from}->{to}"), &cells);
        }
        out
    }

    /// Renders the forest as folded stacks, one line per distinct stack
    /// (`nX;root;child;leaf SELF_US`), aggregated and sorted — feed it
    /// to inferno or `flamegraph.pl` for a virtual-time flamegraph. The
    /// leading frame names the root's node (`n-` when unattributed);
    /// zero-self stacks are skipped.
    pub fn folded(&self) -> String {
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        let mut chain: Vec<usize> = Vec::new();
        for i in 0..self.spans.len() {
            if self.self_us[i] == 0 {
                continue;
            }
            chain.clear();
            let mut cur = i;
            chain.push(cur);
            while let Some(p) = self.spans[cur].parent {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            let mut stack = match self.spans[chain[0]].node {
                Some(n) => format!("n{}", n.0),
                None => "n-".to_string(),
            };
            for &s in &chain {
                stack.push(';');
                stack.push_str(self.spans[s].name);
            }
            *agg.entry(stack).or_insert(0) += self.self_us[i];
        }
        let mut out = String::new();
        for (stack, us) in agg {
            let _ = writeln!(out, "{stack} {us}");
        }
        out
    }

    /// Exports the spans as JSONL with dense re-minted ids (`id =
    /// index + 1`, `parent = 0` for roots) — the id space is the same
    /// regardless of which journal minted a span, so lockstep journals
    /// and actor-merged span sets export byte-identically. Abandoned
    /// spans close at their start with an explicit `"abandoned":true`.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "{{\"type\":\"span\",\"source\":\"{}\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"node\":",
                escape(s.source),
                i + 1,
                s.parent.map(|p| p + 1).unwrap_or(0),
                escape(s.name)
            );
            match s.node {
                Some(n) => {
                    let _ = write!(out, "{}", n.0);
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"start_us\":{}", s.start.as_micros());
            match s.end {
                Some(e) => {
                    let _ = write!(out, ",\"end_us\":{}", e.as_micros());
                }
                None => {
                    let _ = write!(out, ",\"end_us\":{},\"abandoned\":true", s.start.as_micros());
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders a human-readable blame + critical-path report for the
    /// roots named `root_name` (typically `"imag-fault"` or
    /// `"migration"`).
    pub fn report(&self, root_name: &str) -> String {
        let mut out = String::new();
        let total = self.total_blame();
        let grand: u64 = total.iter().sum();
        let _ = writeln!(out, "blame totals ({grand} us profiled):");
        for b in BlameBucket::ALL {
            let v = total[b.index()];
            let pct = if grand == 0 {
                0.0
            } else {
                100.0 * v as f64 / grand as f64
            };
            let _ = writeln!(out, "  {:<20} {v:>12} us  {pct:>5.1}%", b.name());
        }
        let roots: Vec<usize> = self.named(root_name).filter(|&i| self.spans[i].parent.is_none() || self.spans[i].end.is_some()).collect();
        let _ = writeln!(out, "critical paths of {} '{root_name}' span(s):", roots.len());
        for (k, &r) in roots.iter().enumerate().take(8) {
            let cp = self.critical_path(r);
            let _ = writeln!(
                out,
                "  [{k}] dur {} us, path {} us:",
                self.spans[r].dur_us(),
                cp.total_us
            );
            for step in &cp.steps {
                let node = match step.node {
                    Some(n) => n.to_string(),
                    None => "wire".to_string(),
                };
                let _ = writeln!(out, "      {:<16} {:<8} {:>10} us", step.name, node, step.self_us);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_sim::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn span(
        name: &'static str,
        node: Option<NodeId>,
        start: u64,
        end: Option<u64>,
        parent: Option<usize>,
    ) -> ProfSpan {
        ProfSpan {
            source: "world",
            name,
            node,
            start: t(start),
            end: end.map(t),
            parent,
        }
    }

    /// imag-fault [0,100] -> cor-roundtrip [10,90] -> wire-send [20,80]
    /// -> xmit-attempt [20,80] -> {link-queue [20,50], link-transit
    /// [50,70]}, plus a map-in [90,95] child of the fault.
    fn sample() -> Profile {
        Profile::from_spans(vec![
            span("imag-fault", Some(NodeId(1)), 0, Some(100), None),
            span("cor-roundtrip", Some(NodeId(1)), 10, Some(90), Some(0)),
            span("wire-send", Some(NodeId(1)), 20, Some(80), Some(1)),
            span("xmit-attempt", Some(NodeId(1)), 20, Some(80), Some(2)),
            span("link-queue", Some(NodeId(1)), 20, Some(50), Some(3)),
            span("link-transit", Some(NodeId(1)), 50, Some(70), Some(3)),
            span("map-in", Some(NodeId(1)), 90, Some(95), Some(0)),
        ])
    }

    #[test]
    fn blame_sums_to_duration_exactly() {
        let p = sample();
        assert!(p.sums_exactly());
        // Root: 100 us total.
        let blame = p.blame(0);
        assert_eq!(blame.iter().sum::<u64>(), 100);
        assert_eq!(blame[BlameBucket::LinkQueueWait.index()], 30);
        // transit 20 + xmit-attempt self (60 - 50) = 30.
        assert_eq!(blame[BlameBucket::WireTransit.index()], 30);
        // fault self 15 + roundtrip self 20 + wire-send self 0 + map-in 5.
        assert_eq!(blame[BlameBucket::LocalService.index()], 40);
        for i in 0..p.len() {
            assert_eq!(
                p.blame(i).iter().sum::<u64>(),
                p.spans()[i].dur_us(),
                "span {i} blame must sum to its duration"
            );
        }
        let total = p.total_blame();
        assert_eq!(total.iter().sum::<u64>(), 100);
        assert_eq!(p.total_us(), 100);
    }

    #[test]
    fn failover_subtree_override_claims_descendants() {
        let p = Profile::from_spans(vec![
            span("imag-fault", Some(NodeId(0)), 0, Some(100), None),
            span("failover", Some(NodeId(0)), 10, Some(60), Some(0)),
            span("link-queue", Some(NodeId(0)), 20, Some(40), Some(1)),
            span("replicate", Some(NodeId(0)), 60, Some(80), Some(0)),
        ]);
        let blame = p.blame(0);
        assert_eq!(blame[BlameBucket::Failover.index()], 50);
        assert_eq!(blame[BlameBucket::Replication.index()], 20);
        assert_eq!(blame[BlameBucket::LinkQueueWait.index()], 0, "claimed by failover");
        assert_eq!(blame[BlameBucket::LocalService.index()], 30);
        assert_eq!(blame.iter().sum::<u64>(), 100);
    }

    #[test]
    fn critical_path_follows_latest_ending_child() {
        let p = sample();
        let cp = p.critical_path(0);
        let names: Vec<&str> = cp.steps.iter().map(|s| s.name).collect();
        // map-in ends at 95 — later than roundtrip's 90.
        assert_eq!(names, vec!["imag-fault", "map-in"]);
        assert_eq!(cp.total_us, 15 + 5);
        assert!(cp.total_us <= p.spans()[0].dur_us());

        // Below the roundtrip, the chain goes all the way down the wire.
        let cp = p.critical_path(1);
        let names: Vec<&str> = cp.steps.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["cor-roundtrip", "wire-send", "xmit-attempt", "link-transit"]
        );
        assert!(cp.total_us <= p.spans()[1].dur_us());
    }

    #[test]
    fn abandoned_spans_have_zero_duration_and_flagged_export() {
        let p = Profile::from_spans(vec![
            span("imag-fault", Some(NodeId(0)), 0, Some(50), None),
            span("wire-send", Some(NodeId(0)), 10, None, Some(0)),
        ]);
        assert!(p.sums_exactly());
        assert_eq!(p.spans()[1].dur_us(), 0);
        assert_eq!(p.blame(0).iter().sum::<u64>(), 50);
        let doc = p.jsonl();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"end_us\":10,\"abandoned\":true"));
        assert!(!lines[0].contains("abandoned"));
    }

    #[test]
    fn folded_stacks_aggregate_deterministically() {
        let p = sample();
        let folded = p.folded();
        let expect = "\
n1;imag-fault 15
n1;imag-fault;cor-roundtrip 20
n1;imag-fault;cor-roundtrip;wire-send;xmit-attempt 10
n1;imag-fault;cor-roundtrip;wire-send;xmit-attempt;link-queue 30
n1;imag-fault;cor-roundtrip;wire-send;xmit-attempt;link-transit 20
n1;imag-fault;map-in 5
";
        assert_eq!(folded, expect);
        let total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, p.total_us());
    }

    #[test]
    fn blame_csv_has_total_node_and_link_rows() {
        let p = sample();
        let csv = p.blame_csv(&[((NodeId(0), NodeId(1)), 30)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "scope,key,local-service_us,link-queue-wait_us,wire-transit_us,\
             retransmit-backoff_us,coalesce-park_us,failover_us,replication_us,total_us"
                .replace(' ', "")
        );
        assert_eq!(lines[1], "total,all,40,30,30,0,0,0,0,100");
        assert_eq!(lines[2], "node,node1,40,30,30,0,0,0,0,100");
        assert_eq!(lines[3], "link,node0->node1,0,30,0,0,0,0,0,30");
    }

    #[test]
    fn from_journals_resolves_cross_journal_parents() {
        let mut world = Journal::with_level_and_base(crate::JournalLevel::Full, 0);
        let mut fabric = Journal::with_level_and_base(crate::JournalLevel::Full, 1 << 32);
        let fault = world.span_start(t(0), "imag-fault", Some(NodeId(2)));
        let send = fabric.span_start_under(t(5), "wire-send", Some(NodeId(2)), fault);
        fabric.span_end(t(40), send);
        world.span_end(t(50), fault);

        let p = Profile::from_journals(&[("world", &world), ("fabric", &fabric)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.spans()[0].source, "world");
        assert_eq!(p.spans()[1].source, "fabric");
        assert_eq!(p.spans()[1].parent, Some(0));
        assert_eq!(p.self_us(0), 15);
        assert_eq!(p.histogram("imag-fault").count(), 1);
        assert_eq!(
            p.histogram("imag-fault").max(),
            SimDuration::from_micros(50).as_micros()
        );
        let doc = p.jsonl();
        assert!(doc.contains("\"id\":2,\"parent\":1,\"name\":\"wire-send\""));
    }
}
