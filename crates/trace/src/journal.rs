//! The typed journal: an append-only event log plus a span table over
//! virtual time.
//!
//! This is the successor of the stringly `(instant, kind, String)`
//! journal that used to live in `cor-sim`: records are now structured
//! [`TraceEvent`]s (recording never formats or allocates a detail
//! string), each record is attributed to the innermost open [`Span`], and
//! the familiar query surface — [`Journal::of_kind`],
//! [`Journal::render_tail`] — is preserved byte-for-byte via the events'
//! lossless `Display`.
//!
//! Recording remains gated by [`JournalLevel`] (which stays defined in
//! `cor-sim` next to the rest of the simulation substrate): `Off` drops
//! everything before the event is even constructed, `Summary` keeps
//! lifecycle milestones only, `Full` keeps every per-page event and every
//! fine-grained span.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cor_ipc::NodeId;
pub use cor_sim::JournalLevel;
use cor_sim::SimTime;

use crate::event::TraceEvent;
use crate::span::{Span, SpanId};

/// One journal record: a typed event, stamped with virtual time and the
/// innermost span that was open when it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// When it happened.
    pub at: SimTime,
    /// The innermost open span, or [`SpanId::NONE`].
    pub span: SpanId,
    /// The structured event.
    pub event: TraceEvent,
}

impl JournalEvent {
    /// The event's short category tag (`"fault"`, `"send"`, ...).
    pub fn kind(&self) -> &'static str {
        self.event.kind()
    }

    /// The human-readable detail, identical to the historical stringly
    /// journal's formatting.
    pub fn detail(&self) -> String {
        self.event.to_string()
    }
}

/// An append-only, time-ordered event log with a causal span table.
///
/// # Examples
///
/// ```
/// use cor_ipc::NodeId;
/// use cor_sim::SimTime;
/// use cor_trace::{Journal, TraceEvent};
///
/// let mut j = Journal::new();
/// let span = j.span_start(SimTime::ZERO, "imag-fault", Some(NodeId(1)));
/// j.record(
///     SimTime::from_millis(2),
///     TraceEvent::FillZero { pid: 0, node: NodeId(1), page: 7 },
/// );
/// j.span_end(SimTime::from_millis(3), span);
/// assert_eq!(j.of_kind("fault").count(), 1);
/// assert_eq!(j.events()[0].span, span);
/// assert!(j.render_tail(10).contains("FillZero pid0 page 7"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Journal {
    events: Vec<JournalEvent>,
    spans: Vec<Span>,
    /// Stack of currently open span ids; the top is the attribution
    /// target for new events and the default parent for new spans.
    open: Vec<SpanId>,
    level: JournalLevel,
    /// Offset added to span indices when minting ids, so journals
    /// exported together keep disjoint id ranges.
    span_base: u64,
    /// Per-span birth stamps, aligned with `spans`. When a shared
    /// [`Journal::set_birth_counter`] is installed, stamps are globally
    /// ordered across every journal sharing the counter (the actor
    /// runtime's span merge needs creation order across the world and
    /// fabric journals); otherwise they fall back to the local index.
    births: Vec<u64>,
    /// Per-span death stamps from the same counter ([`u64::MAX`] while
    /// open). Together with `births` they recover which spans were open
    /// at any recorded moment: span S was open when span K was created
    /// iff `births[S] < births[K] && deaths[S] > deaths[K]`.
    deaths: Vec<u64>,
    birth_counter: Option<Arc<AtomicU64>>,
    /// Fallback stamp sequence when no shared counter is installed.
    local_stamp: u64,
}

impl Journal {
    /// Creates an empty journal recording at [`JournalLevel::Full`].
    pub fn new() -> Self {
        Journal::default()
    }

    /// Creates an empty journal recording at `level`.
    pub fn with_level(level: JournalLevel) -> Self {
        Journal {
            level,
            ..Journal::default()
        }
    }

    /// Creates an empty journal recording at `level` whose span ids start
    /// above `span_base`. Give each journal of a merged export a distinct
    /// base (the kernel uses base `0` for the world journal and `1 << 32`
    /// for the fabric journal) so ids stay globally unique.
    pub fn with_level_and_base(level: JournalLevel, span_base: u64) -> Self {
        Journal {
            level,
            span_base,
            ..Journal::default()
        }
    }

    /// The current recording level.
    pub fn level(&self) -> JournalLevel {
        self.level
    }

    /// Changes the recording level; already-recorded events are kept.
    pub fn set_level(&mut self, level: JournalLevel) {
        self.level = level;
    }

    /// Appends an already-constructed event (subject to the level gate).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        self.record_with(at, || event);
    }

    /// Appends an event, constructing it lazily.
    ///
    /// The closure only runs when the level is not
    /// [`JournalLevel::Off`], so a muted journal costs one branch per
    /// call site. At [`JournalLevel::Summary`] the (allocation-free)
    /// event is constructed and kept only if
    /// [`TraceEvent::is_milestone`].
    pub fn record_with(&mut self, at: SimTime, event: impl FnOnce() -> TraceEvent) {
        if self.level == JournalLevel::Off {
            return;
        }
        let event = event();
        if self.level == JournalLevel::Summary && !event.is_milestone() {
            return;
        }
        let span = self.open.last().copied().unwrap_or(SpanId::NONE);
        self.events.push(JournalEvent { at, span, event });
    }

    /// Opens a fine-grained span (recorded only at
    /// [`JournalLevel::Full`]). The parent is the innermost open span.
    /// Returns [`SpanId::NONE`] when the level mutes it — every other
    /// span method accepts the sentinel as a no-op.
    pub fn span_start(&mut self, at: SimTime, name: &'static str, node: Option<NodeId>) -> SpanId {
        self.open_span(at, name, node, SpanId::NONE, false)
    }

    /// Like [`Journal::span_start`], but `fallback_parent` is used when
    /// no span is open — the hook for parenting across journals (the
    /// fabric parents its `wire-send` spans under the kernel's fault
    /// span this way).
    pub fn span_start_under(
        &mut self,
        at: SimTime,
        name: &'static str,
        node: Option<NodeId>,
        fallback_parent: SpanId,
    ) -> SpanId {
        self.open_span(at, name, node, fallback_parent, false)
    }

    /// Opens a milestone span (recorded at [`JournalLevel::Summary`] and
    /// above): migration and execution phases, not per-fault detail.
    pub fn milestone_span_start(
        &mut self,
        at: SimTime,
        name: &'static str,
        node: Option<NodeId>,
    ) -> SpanId {
        self.open_span(at, name, node, SpanId::NONE, true)
    }

    fn open_span(
        &mut self,
        at: SimTime,
        name: &'static str,
        node: Option<NodeId>,
        fallback_parent: SpanId,
        milestone: bool,
    ) -> SpanId {
        let admitted = match self.level {
            JournalLevel::Off => false,
            JournalLevel::Summary => milestone,
            JournalLevel::Full => true,
        };
        if !admitted {
            return SpanId::NONE;
        }
        let parent = self.open.last().copied().unwrap_or(fallback_parent);
        let id = self.push_span(Span {
            id: SpanId::NONE,
            parent,
            name,
            node,
            start: at,
            end: None,
        });
        self.open.push(id);
        id
    }

    fn push_span(&mut self, mut span: Span) -> SpanId {
        let id = SpanId(self.span_base + self.spans.len() as u64 + 1);
        span.id = id;
        let birth = self.next_stamp();
        // Spans appended pre-closed (see [`Journal::closed_span`]) die
        // at birth; open spans get their death stamp in `set_end`.
        let death = if span.end.is_some() {
            self.next_stamp()
        } else {
            u64::MAX
        };
        self.spans.push(span);
        self.births.push(birth);
        self.deaths.push(death);
        id
    }

    fn next_stamp(&mut self) -> u64 {
        match &self.birth_counter {
            Some(c) => c.fetch_add(1, Ordering::Relaxed),
            None => {
                let v = self.local_stamp;
                self.local_stamp += 1;
                v
            }
        }
    }

    /// Appends an already-closed span with an explicit interval and
    /// parent, without touching the open-span stack. This is for
    /// intervals reconstructed after the fact (the coalescing relay's
    /// `coalesce-park`, which is only known at unpark time and does not
    /// nest inside whatever happens to be open then). Recorded only at
    /// [`JournalLevel::Full`]; returns [`SpanId::NONE`] otherwise.
    pub fn closed_span(
        &mut self,
        start: SimTime,
        end: SimTime,
        name: &'static str,
        node: Option<NodeId>,
        parent: SpanId,
    ) -> SpanId {
        if self.level != JournalLevel::Full {
            return SpanId::NONE;
        }
        self.push_span(Span {
            id: SpanId::NONE,
            parent,
            name,
            node,
            start,
            end: Some(end),
        })
    }

    /// Installs a birth-stamp counter shared with other journals, so
    /// span creation order is recoverable across them. Stamps already
    /// taken keep their local values; install before recording.
    pub fn set_birth_counter(&mut self, counter: Arc<AtomicU64>) {
        self.birth_counter = Some(counter);
    }

    /// Per-span birth stamps, aligned with [`Journal::spans`].
    pub fn births(&self) -> &[u64] {
        &self.births
    }

    /// Per-span death stamps, aligned with [`Journal::spans`]
    /// ([`u64::MAX`] while the span is open). Birth and death stamps
    /// draw from the same sequence, so `births[a] < births[k] &&
    /// deaths[a] > deaths[k]` says span `a` was open for span `k`'s
    /// whole lifetime.
    pub fn deaths(&self) -> &[u64] {
        &self.deaths
    }

    /// Depth of the open-span stack (0 when every span is closed) — a
    /// cheap boundary assertion for code that slices the span table
    /// into self-contained units.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// The innermost open span, or [`SpanId::NONE`] when none is — what
    /// a sibling journal's cross-journal parent hook should point at.
    pub fn open_top(&self) -> SpanId {
        self.open.last().copied().unwrap_or(SpanId::NONE)
    }

    /// Closes span `id` at instant `at`. Any spans opened under it that
    /// are still open are closed at the same instant (error paths may
    /// abandon children; the tree stays well-formed). A
    /// [`SpanId::NONE`] argument is a no-op.
    pub fn span_end(&mut self, at: SimTime, id: SpanId) {
        if id.is_none() {
            return;
        }
        if let Some(pos) = self.open.iter().rposition(|&s| s == id) {
            while self.open.len() > pos {
                let top = self.open.pop().expect("stack non-empty above pos");
                self.set_end(top, at);
            }
        } else {
            // Not on the open stack (already closed, or foreign): close
            // it directly, best-effort.
            self.set_end(id, at);
        }
    }

    fn set_end(&mut self, id: SpanId, at: SimTime) {
        let Some(idx) = id.0.checked_sub(self.span_base + 1) else {
            return;
        };
        let idx = idx as usize;
        if self
            .spans
            .get(idx)
            .is_some_and(|span| span.end.is_none())
        {
            let death = self.next_stamp();
            self.spans[idx].end = Some(at);
            self.deaths[idx] = death;
        }
    }

    /// All recorded spans, in open order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Looks up a span this journal minted.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        let idx = id.0.checked_sub(self.span_base + 1)?;
        self.spans.get(idx as usize)
    }

    /// All events in record order.
    pub fn events(&self) -> &[JournalEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: &str) -> impl Iterator<Item = &JournalEvent> {
        let kind = kind.to_string();
        self.events.iter().filter(move |e| e.kind() == kind)
    }

    /// Renders the last `n` events, one per line — the same format the
    /// stringly journal produced.
    pub fn render_tail(&self, n: usize) -> String {
        let start = self.events.len().saturating_sub(n);
        let mut out = String::new();
        for e in &self.events[start..] {
            out.push_str(&format!(
                "{:>12} {:<9} {}\n",
                e.at.to_string(),
                e.kind(),
                e.detail()
            ));
        }
        out
    }

    /// Clears events and spans, keeping the level and span base.
    pub fn clear(&mut self) {
        self.events.clear();
        self.spans.clear();
        self.open.clear();
        self.births.clear();
        self.deaths.clear();
        self.local_stamp = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_ipc::MsgKind;

    fn fault(page: u64) -> TraceEvent {
        TraceEvent::FillZero {
            pid: 0,
            node: NodeId(0),
            page,
        }
    }

    fn exec(ops: u64) -> TraceEvent {
        TraceEvent::Exec {
            pid: 0,
            node: NodeId(0),
            ops,
            finished: false,
        }
    }

    #[test]
    fn record_and_filter() {
        let mut j = Journal::new();
        j.record(SimTime::ZERO, fault(1));
        j.record(SimTime::from_secs(1), exec(5));
        j.record(SimTime::from_secs(2), fault(2));
        assert_eq!(j.len(), 3);
        assert_eq!(j.of_kind("fault").count(), 2);
        assert_eq!(j.of_kind("exec").count(), 1);
        assert_eq!(j.of_kind("send").count(), 0);
        assert_eq!(j.events()[1].detail(), "pid0 ran 5 ops on node0");
    }

    #[test]
    fn tail_rendering() {
        let mut j = Journal::new();
        for i in 0..10 {
            j.record(SimTime::from_secs(i), fault(i));
        }
        let tail = j.render_tail(3);
        assert!(tail.contains("page 7") && tail.contains("page 9"));
        assert!(!tail.contains("page 6"));
        assert_eq!(tail.lines().count(), 3);
    }

    #[test]
    fn off_level_skips_construction() {
        let mut j = Journal::with_level(JournalLevel::Off);
        let mut built = false;
        j.record_with(SimTime::ZERO, || {
            built = true;
            fault(0)
        });
        assert!(!built, "event closure must not run at Off");
        assert!(j.is_empty());
        assert!(j
            .span_start(SimTime::ZERO, "imag-fault", None)
            .is_none());

        j.set_level(JournalLevel::Full);
        j.record_with(SimTime::ZERO, || fault(0));
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn summary_keeps_milestones_only() {
        let mut j = Journal::with_level(JournalLevel::Summary);
        j.record(SimTime::ZERO, fault(0));
        j.record(
            SimTime::ZERO,
            TraceEvent::Send {
                kind: MsgKind::Core,
                from: NodeId(0),
                wire_bytes: 64,
            },
        );
        j.record(SimTime::from_secs(1), exec(3));
        assert_eq!(j.len(), 1, "only the exec milestone survives");
        assert_eq!(j.events()[0].kind(), "exec");
        // Fine spans are muted, milestone spans admitted.
        assert!(j.span_start(SimTime::ZERO, "imag-fault", None).is_none());
        let s = j.milestone_span_start(SimTime::ZERO, "exec", Some(NodeId(0)));
        assert!(!s.is_none());
        j.span_end(SimTime::from_secs(2), s);
        assert_eq!(j.spans().len(), 1);
    }

    #[test]
    fn span_tree_nesting_and_attribution() {
        let mut j = Journal::new();
        let outer = j.span_start(SimTime::ZERO, "imag-fault", Some(NodeId(1)));
        let inner = j.span_start(SimTime::from_millis(1), "cor-roundtrip", Some(NodeId(1)));
        j.record(SimTime::from_millis(2), fault(9));
        j.span_end(SimTime::from_millis(3), inner);
        j.record(SimTime::from_millis(4), fault(10));
        j.span_end(SimTime::from_millis(5), outer);

        let spans = j.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, SpanId::NONE);
        assert_eq!(spans[1].parent, outer);
        assert_eq!(j.events()[0].span, inner);
        assert_eq!(j.events()[1].span, outer, "after inner closes, outer is current");
        assert_eq!(spans[1].duration(), Some(cor_sim::SimDuration::from_millis(2)));
    }

    #[test]
    fn closing_a_parent_closes_abandoned_children() {
        let mut j = Journal::new();
        let outer = j.span_start(SimTime::ZERO, "a", None);
        let _leaked = j.span_start(SimTime::from_millis(1), "b", None);
        j.span_end(SimTime::from_millis(9), outer);
        assert!(j.spans().iter().all(|s| s.end == Some(SimTime::from_millis(9))));
    }

    #[test]
    fn span_bases_keep_ids_disjoint() {
        let mut a = Journal::with_level_and_base(JournalLevel::Full, 0);
        let mut b = Journal::with_level_and_base(JournalLevel::Full, 1 << 32);
        let ia = a.span_start(SimTime::ZERO, "x", None);
        let ib = b.span_start(SimTime::ZERO, "y", None);
        assert_ne!(ia, ib);
        assert_eq!(a.span(ia).unwrap().name, "x");
        assert_eq!(b.span(ib).unwrap().name, "y");
        assert!(a.span(ib).is_none());
    }

    #[test]
    fn closed_span_bypasses_the_stack() {
        let mut j = Journal::new();
        let outer = j.span_start(SimTime::from_millis(5), "a", None);
        assert_eq!(j.open_len(), 1);
        // A backdated interval: starts before the open span, parented
        // explicitly at the root, and never appears on the stack.
        let s = j.closed_span(
            SimTime::ZERO,
            SimTime::from_millis(3),
            "coalesce-park",
            Some(NodeId(2)),
            SpanId::NONE,
        );
        assert!(!s.is_none());
        assert_eq!(j.open_len(), 1, "closed_span must not push");
        j.record(SimTime::from_millis(6), fault(1));
        assert_eq!(j.events()[0].span, outer, "attribution unaffected");
        j.span_end(SimTime::from_millis(7), outer);
        assert_eq!(j.open_len(), 0);
        let park = j.span(s).unwrap();
        assert_eq!(park.parent, SpanId::NONE);
        assert_eq!(park.end, Some(SimTime::from_millis(3)));

        let muted = Journal::with_level(JournalLevel::Summary)
            .closed_span(SimTime::ZERO, SimTime::ZERO, "x", None, SpanId::NONE);
        assert!(muted.is_none());
    }

    #[test]
    fn shared_birth_counter_orders_across_journals() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;

        let counter = Arc::new(AtomicU64::new(0));
        let mut a = Journal::with_level_and_base(JournalLevel::Full, 0);
        let mut b = Journal::with_level_and_base(JournalLevel::Full, 1 << 32);
        a.set_birth_counter(Arc::clone(&counter));
        b.set_birth_counter(Arc::clone(&counter));

        let s0 = a.span_start(SimTime::ZERO, "w0", None);
        let s1 = b.span_start(SimTime::ZERO, "f0", None);
        let s2 = a.span_start(SimTime::ZERO, "w1", None);
        a.span_end(SimTime::ZERO, s2);
        a.span_end(SimTime::ZERO, s0);
        b.span_end(SimTime::ZERO, s1);
        assert_eq!(a.births(), &[0, 2]);
        assert_eq!(b.births(), &[1]);
        // Deaths draw from the same sequence, in close order: w1 first,
        // then w0, then f0. So w0 (born before f0, dead after it) was
        // open for f0's whole lifetime; w1 was not.
        assert_eq!(a.deaths(), &[4, 3]);
        assert_eq!(b.deaths(), &[5]);

        // Without a counter, births fall back to a local sequence; a
        // pre-closed span dies at birth.
        let mut c = Journal::new();
        c.span_start(SimTime::ZERO, "x", None);
        c.closed_span(SimTime::ZERO, SimTime::ZERO, "y", None, SpanId::NONE);
        assert_eq!(c.births(), &[0, 1]);
        assert_eq!(c.deaths(), &[u64::MAX, 2]);
    }

    #[test]
    fn clear_empties() {
        let mut j = Journal::new();
        j.record(SimTime::ZERO, fault(0));
        let s = j.span_start(SimTime::ZERO, "x", None);
        assert!(!s.is_none());
        j.clear();
        assert!(j.is_empty());
        assert!(j.spans().is_empty());
        assert_eq!(j.render_tail(5), "");
    }
}
