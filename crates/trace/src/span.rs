//! Causal spans: named intervals of virtual time forming a tree.
//!
//! A span is opened when an operation starts and closed when it ends;
//! children record their parent, so one remote copy-on-reference fault
//! renders as a single tree — `imag-fault` → `cor-roundtrip` →
//! `wire-send` → `xmit-attempt` — with queue, wire, and service
//! sub-timings all in virtual time.

use cor_ipc::NodeId;
use cor_sim::{SimDuration, SimTime};

/// Identifies a span within a merged trace.
///
/// `SpanId(0)` is the reserved "no span" sentinel ([`SpanId::NONE`]):
/// events outside any span and roots of span trees carry it. Journals are
/// created with disjoint id bases (see
/// [`Journal::with_level_and_base`](crate::Journal::with_level_and_base)),
/// so spans from the world journal and the fabric journal never collide
/// when exported together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no span" sentinel.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One named interval of virtual time, attributed to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Unique id within the merged trace.
    pub id: SpanId,
    /// The enclosing span, or [`SpanId::NONE`] for a root.
    pub parent: SpanId,
    /// Static operation name (`"imag-fault"`, `"wire-send"`, ...).
    pub name: &'static str,
    /// The node the operation ran on, if attributable.
    pub node: Option<NodeId>,
    /// Open instant.
    pub start: SimTime,
    /// Close instant; `None` while the span is still open (or was
    /// abandoned by an error path).
    pub end: Option<SimTime>,
}

impl Span {
    /// Elapsed virtual time, once closed.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e.since(self.start))
    }
}
