//! Typed tracing for the copy-on-reference simulator: structured
//! events, causal spans, per-node metrics, and trace export.
//!
//! The simulation substrate (`cor-sim`) keeps the [`JournalLevel`]
//! knob; everything that *interprets* what happened lives here:
//!
//! - [`TraceEvent`] — the typed vocabulary of journal records, with a
//!   lossless `Display` that reproduces the historical detail strings.
//! - [`Journal`] — the append-only event log plus a [`Span`] table:
//!   every event is attributed to the innermost open span, so one remote
//!   fault is a single tree from touch to page-install.
//! - [`MetricsRegistry`] — per-node counters, byte gauges, and
//!   log-scaled latency histograms ([`LogHistogram`]) with p50/p95/p99,
//!   snapshotable at any `SimTime`.
//! - [`export`] — JSONL event streams and Chrome/Perfetto
//!   `trace.json` on a virtual-time clock.
//! - [`profile`] — the critical-path profiler: exact per-span blame
//!   decomposition into seven latency buckets, per-node/per-link blame
//!   tables, and folded-stack virtual-time flamegraphs.
//!
//! Recording costs one branch when the journal is
//! [`JournalLevel::Off`] and never allocates per event (all variants
//! are `Copy`); the zero-allocation discipline of the hot paths is
//! unchanged with tracing off.

pub mod event;
pub mod export;
pub mod journal;
pub mod metrics;
pub mod profile;
pub mod span;

pub use cor_sim::JournalLevel;
pub use event::TraceEvent;
pub use journal::{Journal, JournalEvent};
pub use metrics::{LinkMetrics, LogHistogram, MetricsRegistry, NodeMetrics};
pub use profile::{BlameBucket, CriticalPath, CriticalStep, ProfSpan, Profile, BUCKET_COUNT};
pub use span::{Span, SpanId};
