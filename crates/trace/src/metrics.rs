//! The per-node metrics registry: counters, byte gauges, and log-scaled
//! latency histograms with percentile estimation.
//!
//! Everything is keyed `(node, name)` with a global pseudo-node (`None`,
//! rendered as `wire`) for fabric-wide series — the [`Ledger`] byte
//! categories and the [`ReliabilityStats`] counters feed it directly, and
//! closed [`Journal`] spans feed the latency histograms.
//! The registry is a *view*, rebuildable at any `SimTime`:
//! [`MetricsRegistry::ingest_ledger`] and
//! [`MetricsRegistry::ingest_spans`] take an `until` bound, so a snapshot
//! mid-trial reflects only what had happened by that instant.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cor_ipc::NodeId;
use cor_sim::{Ledger, LedgerCategory, ReliabilityStats, SimDuration, SimTime};

use crate::journal::Journal;

/// A latency histogram with logarithmic (power-of-two) buckets.
///
/// Values are recorded in microseconds of virtual time. Bucket `0` holds
/// exact zeros; bucket `b ≥ 1` holds values in `[2^(b-1), 2^b)`.
/// Percentiles are estimated as the upper bound of the bucket containing
/// the requested rank, clamped to the observed maximum — so `p100` is
/// exact and lower percentiles are within a factor of two, plenty for
/// spotting tail behavior at a glance.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one value (microseconds).
    pub fn record(&mut self, value_us: u64) {
        let bucket = if value_us == 0 {
            0
        } else {
            64 - value_us.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value_us);
        self.min = self.min.min(value_us);
        self.max = self.max.max(value_us);
    }

    /// Records a [`SimDuration`] sample.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, rounded down (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimates the `p`-quantile (`0.0 < p <= 1.0`) as the upper bound
    /// of the bucket holding that rank, clamped to the observed range.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper = if idx == 0 {
                    0
                } else if idx >= 64 {
                    u64::MAX
                } else {
                    (1u64 << idx) - 1
                };
                return upper.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Merges another histogram into this one. Buckets, counts, and
    /// sums add; min/max take the extremes — so merging per-node
    /// histograms in any order reproduces the pooled histogram exactly.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (b, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The metric series of one node (or of the global `wire` pseudo-node).
#[derive(Debug, Clone, Default)]
pub struct NodeMetrics {
    /// Event counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Byte gauges by name.
    pub bytes: BTreeMap<&'static str, u64>,
    /// Latency histograms by name (virtual-time microseconds).
    pub latencies: BTreeMap<&'static str, LogHistogram>,
}

/// Traffic totals of one directed interconnect link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkMetrics {
    /// Messages that traversed the link.
    pub msgs: u64,
    /// Wire bytes carried over the link.
    pub bytes: u64,
}

/// Per-node metrics, keyed by [`NodeId`] with `None` as the global
/// (`wire`) pseudo-node, plus per-directed-link traffic series for
/// routed-topology fabrics. All iteration orders are deterministic
/// (`BTreeMap` everywhere), so rendered snapshots are byte-stable.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    nodes: BTreeMap<Option<NodeId>, NodeMetrics>,
    links: BTreeMap<(NodeId, NodeId), LinkMetrics>,
}

fn category_name(c: LedgerCategory) -> &'static str {
    match c {
        LedgerCategory::Bulk => "wire.bulk",
        LedgerCategory::FaultSupport => "wire.fault-support",
        LedgerCategory::Control => "wire.control",
        LedgerCategory::Retransmit => "wire.retransmit",
        LedgerCategory::Drain => "wire.drain",
        LedgerCategory::Replicate => "wire.replicate",
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn entry(&mut self, node: Option<NodeId>) -> &mut NodeMetrics {
        self.nodes.entry(node).or_default()
    }

    /// Adds `n` to the `(node, name)` counter.
    pub fn counter_add(&mut self, node: Option<NodeId>, name: &'static str, n: u64) {
        *self.entry(node).counters.entry(name).or_insert(0) += n;
    }

    /// Adds `n` bytes to the `(node, name)` gauge.
    pub fn bytes_add(&mut self, node: Option<NodeId>, name: &'static str, n: u64) {
        *self.entry(node).bytes.entry(name).or_insert(0) += n;
    }

    /// Records one latency sample into the `(node, name)` histogram.
    pub fn latency_record(&mut self, node: Option<NodeId>, name: &'static str, d: SimDuration) {
        self.entry(node)
            .latencies
            .entry(name)
            .or_default()
            .record_duration(d);
    }

    /// The `(node, name)` counter value (0 if absent).
    pub fn counter(&self, node: Option<NodeId>, name: &str) -> u64 {
        self.nodes
            .get(&node)
            .and_then(|m| m.counters.get(name).copied())
            .unwrap_or(0)
    }

    /// The `(node, name)` byte-gauge value (0 if absent).
    pub fn bytes(&self, node: Option<NodeId>, name: &str) -> u64 {
        self.nodes
            .get(&node)
            .and_then(|m| m.bytes.get(name).copied())
            .unwrap_or(0)
    }

    /// The `(node, name)` latency histogram, if any samples exist.
    pub fn latency(&self, node: Option<NodeId>, name: &str) -> Option<&LogHistogram> {
        self.nodes.get(&node).and_then(|m| m.latencies.get(name))
    }

    /// All populated keys, global pseudo-node (`None`) first.
    pub fn nodes(&self) -> impl Iterator<Item = (Option<NodeId>, &NodeMetrics)> {
        self.nodes.iter().map(|(k, v)| (*k, v))
    }

    /// Accumulates traffic onto the directed link `from → to`.
    pub fn link_add(&mut self, from: NodeId, to: NodeId, msgs: u64, bytes: u64) {
        let l = self.links.entry((from, to)).or_default();
        l.msgs += msgs;
        l.bytes += bytes;
    }

    /// The totals of the directed link `from → to` (zero if absent).
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkMetrics {
        self.links.get(&(from, to)).copied().unwrap_or_default()
    }

    /// All populated links in deterministic `(from, to)` order.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, NodeId), LinkMetrics)> + '_ {
        self.links.iter().map(|(k, v)| (*k, *v))
    }

    /// Feeds the wire [`Ledger`] into the global byte gauges, one per
    /// [`LedgerCategory`], counting only traffic at or before `until`.
    pub fn ingest_ledger(&mut self, ledger: &Ledger, until: SimTime) {
        for e in ledger.entries() {
            if e.at <= until {
                self.bytes_add(None, category_name(e.category), e.bytes);
            }
        }
    }

    /// Feeds the [`ReliabilityStats`] counters into the global counters.
    /// (The stats are cumulative end-state counters, so no time bound
    /// applies.)
    pub fn ingest_reliability(&mut self, r: &ReliabilityStats) {
        let pairs: [(&'static str, u64); 16] = [
            ("net.drops-injected", r.drops_injected.get()),
            ("net.duplicates-injected", r.duplicates_injected.get()),
            ("net.reorders-injected", r.reorders_injected.get()),
            ("net.retransmissions", r.retransmissions.get()),
            ("net.duplicate-drops", r.duplicate_drops.get()),
            ("net.stale-replies", r.stale_replies.get()),
            ("net.timeout-stalls", r.timeout_stalls.get()),
            ("net.stall-time-us", r.stall_time.as_micros()),
            ("net.unreachable-failures", r.unreachable_failures.get()),
            ("net.node-crashes", r.node_crashes.get()),
            ("net.crash-dropped-messages", r.crash_dropped_messages.get()),
            ("net.crash-fast-fails", r.crash_fast_fails.get()),
            ("net.drained-pages", r.drained_pages.get()),
            ("net.pages-recovered", r.pages_recovered.get()),
            ("net.pages-lost", r.pages_lost.get()),
            ("net.dedup-hits", r.dedup_hits.get()),
        ];
        for (name, v) in pairs {
            if v > 0 {
                self.counter_add(None, name, v);
            }
        }
        if r.retransmit_wire_bytes.get() > 0 {
            self.bytes_add(None, "net.retransmit-wire", r.retransmit_wire_bytes.get());
        }
    }

    /// Feeds every span closed at or before `until` into the latency
    /// histogram named after the span, on the span's node.
    pub fn ingest_spans(&mut self, journal: &Journal, until: SimTime) {
        for span in journal.spans() {
            if let Some(end) = span.end {
                if end <= until {
                    self.latency_record(span.node, span.name, end.since(span.start));
                }
            }
        }
    }

    /// Renders a deterministic plain-text snapshot as of `at`.
    pub fn render(&self, at: SimTime) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metrics @ {at}");
        for (node, m) in &self.nodes {
            let label = match node {
                Some(n) => n.to_string(),
                None => "wire".to_string(),
            };
            let _ = writeln!(out, "{label}:");
            for (name, v) in &m.counters {
                let _ = writeln!(out, "  {name:<28} {v:>12}");
            }
            for (name, v) in &m.bytes {
                let _ = writeln!(out, "  {name:<28} {v:>12} bytes");
            }
            for (name, h) in &m.latencies {
                let _ = writeln!(
                    out,
                    "  {name:<28} n {:>6}  p50 {:>8}us  p95 {:>8}us  p99 {:>8}us  max {:>8}us",
                    h.count(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max()
                );
            }
        }
        if !self.links.is_empty() {
            let _ = writeln!(out, "links:");
            for ((from, to), l) in &self.links {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>8} msgs {:>12} bytes",
                    format!("{from}->{to}"),
                    l.msgs,
                    l.bytes
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_histogram_percentiles() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!(h.p50() <= 7, "median of mostly-small samples stays small");
        assert_eq!(h.percentile(1.0), 1000, "p100 is exact");
        assert!(h.p99() >= 100);
        let empty = LogHistogram::new();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.min(), 0);
    }

    #[test]
    fn log_histogram_empty_and_single_sample_edges() {
        let empty = LogHistogram::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.min(), 0);
        assert_eq!(empty.max(), 0);
        assert_eq!(empty.mean(), 0);
        for p in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(empty.percentile(p), 0, "empty histogram reports 0");
        }

        let mut one = LogHistogram::new();
        one.record(37);
        assert_eq!(one.count(), 1);
        assert_eq!((one.min(), one.max(), one.mean()), (37, 37, 37));
        for p in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(one.percentile(p), 37, "single sample: every percentile is it");
        }

        let mut zero = LogHistogram::new();
        zero.record(0);
        assert_eq!((zero.p50(), zero.min(), zero.max()), (0, 0, 0));
    }

    #[test]
    fn log_histogram_top_bucket_saturation() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        // The top bucket's nominal upper bound would overflow; the
        // percentile clamps to the observed maximum instead.
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.p50(), u64::MAX, "clamped to observed range");
        assert_eq!(h.min(), 1u64 << 63);
        // The sum saturates rather than wrapping.
        assert_eq!(h.mean(), u64::MAX / 3);
    }

    #[test]
    fn log_histogram_merge_matches_pooled() {
        let samples_a = [0u64, 1, 3, 900, 64, 65];
        let samples_b = [2u64, 4096, 7, 0];
        let mut pooled = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for &v in &samples_a {
            a.record(v);
            pooled.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            pooled.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut with_empty = ab.clone();
        with_empty.merge(&LogHistogram::new());
        for h in [&ab, &ba, &with_empty] {
            assert_eq!(h.count(), pooled.count());
            assert_eq!(h.min(), pooled.min());
            assert_eq!(h.max(), pooled.max());
            assert_eq!(h.mean(), pooled.mean());
            for p in [0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                assert_eq!(h.percentile(p), pooled.percentile(p));
            }
        }
    }

    #[test]
    fn registry_keys_and_snapshot_are_deterministic() {
        let mut r = MetricsRegistry::new();
        r.counter_add(Some(NodeId(1)), "faults.imaginary", 3);
        r.counter_add(Some(NodeId(0)), "faults.imaginary", 1);
        r.bytes_add(None, "wire.bulk", 4096);
        r.latency_record(Some(NodeId(1)), "imag-fault", SimDuration::from_millis(2));
        assert_eq!(r.counter(Some(NodeId(1)), "faults.imaginary"), 3);
        assert_eq!(r.bytes(None, "wire.bulk"), 4096);
        let snap = r.render(SimTime::from_secs(1));
        let wire_pos = snap.find("wire:").unwrap();
        let n0_pos = snap.find("node0:").unwrap();
        let n1_pos = snap.find("node1:").unwrap();
        assert!(wire_pos < n0_pos && n0_pos < n1_pos, "global first, nodes in order");
        assert!(snap.contains("imag-fault"));
    }

    #[test]
    fn link_series_accumulate_and_render_in_order() {
        let mut r = MetricsRegistry::new();
        r.link_add(NodeId(1), NodeId(0), 1, 100);
        r.link_add(NodeId(0), NodeId(1), 2, 300);
        r.link_add(NodeId(0), NodeId(1), 1, 200);
        assert_eq!(r.link(NodeId(0), NodeId(1)), LinkMetrics { msgs: 3, bytes: 500 });
        assert_eq!(r.link(NodeId(5), NodeId(6)), LinkMetrics::default());
        let keys: Vec<_> = r.links().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]);
        let snap = r.render(SimTime::ZERO);
        assert!(snap.contains("links:"));
        assert!(snap.find("node0->node1").unwrap() < snap.find("node1->node0").unwrap());
    }

    #[test]
    fn ledger_ingest_respects_time_bound() {
        let mut ledger = Ledger::new();
        ledger.record(SimTime::from_secs(1), 100, LedgerCategory::Bulk);
        ledger.record(SimTime::from_secs(5), 900, LedgerCategory::Bulk);
        let mut r = MetricsRegistry::new();
        r.ingest_ledger(&ledger, SimTime::from_secs(2));
        assert_eq!(r.bytes(None, "wire.bulk"), 100);
        let mut r2 = MetricsRegistry::new();
        r2.ingest_ledger(&ledger, SimTime::from_secs(10));
        assert_eq!(r2.bytes(None, "wire.bulk"), 1000);
    }
}
