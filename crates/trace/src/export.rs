//! Trace exporters: JSONL event streams and Chrome/Perfetto
//! `trace.json`.
//!
//! Both exporters take a set of named journals (typically the world
//! journal and the fabric journal) and merge them into one
//! chronologically ordered document. JSON is emitted by hand — the
//! simulator is dependency-free — and every string that can carry
//! arbitrary content passes through [`escape`]-style quoting.
//!
//! The Perfetto document maps the simulation onto the [trace event
//! format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
//! each node becomes a process track (`pid = node index + 1`, with
//! `pid 0` reserved for the global `wire` track), spans become `"X"`
//! complete events with `ts`/`dur` in virtual-time microseconds, and
//! point events become `"i"` instants. Load the file at
//! <https://ui.perfetto.dev> and the whole migration reads left to
//! right.

use std::fmt::Write as _;

use cor_ipc::NodeId;

use crate::event::TraceEvent;
use crate::journal::Journal;
use crate::span::{Span, SpanId};

/// Escapes `s` for inclusion inside a JSON string literal (no
/// surrounding quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes the structured fields of an event as a JSON object body
/// (without surrounding braces), e.g. `"pid":3,"page":17`.
fn event_args(e: &TraceEvent) -> String {
    fn node(n: NodeId) -> u64 {
        n.0 as u64
    }
    match *e {
        TraceEvent::Excised {
            pid,
            node: n,
            real_pages,
            resident_pages,
        } => format!(
            "\"pid\":{pid},\"node\":{},\"real_pages\":{real_pages},\"resident_pages\":{resident_pages}",
            node(n)
        ),
        TraceEvent::Inserted {
            pid,
            node: n,
            carried_pages,
            owed_pages,
        } => format!(
            "\"pid\":{pid},\"node\":{},\"carried_pages\":{carried_pages},\"owed_pages\":{owed_pages}",
            node(n)
        ),
        TraceEvent::FillZero { pid, node: n, page } | TraceEvent::DiskIn { pid, node: n, page } => {
            format!("\"pid\":{pid},\"node\":{},\"page\":{page}", node(n))
        }
        TraceEvent::Imaginary {
            pid,
            node: n,
            page,
            seg,
            prefetched,
            service,
        } => format!(
            "\"pid\":{pid},\"node\":{},\"page\":{page},\"seg\":{seg},\"prefetched\":{prefetched},\"service_us\":{}",
            node(n),
            service.as_micros()
        ),
        TraceEvent::StaleReply {
            pid,
            node: n,
            seg,
            offset,
            seq,
        } => format!(
            "\"pid\":{pid},\"node\":{},\"seg\":{seg},\"offset\":{offset},\"seq\":{seq}",
            node(n)
        ),
        TraceEvent::Send {
            kind,
            from,
            wire_bytes,
        } => format!(
            "\"msg\":\"{:?}\",\"from\":{},\"wire_bytes\":{wire_bytes}",
            kind,
            node(from)
        ),
        TraceEvent::DrainPrefetch {
            pid,
            node: n,
            pages,
            seg,
            offset,
        } => format!(
            "\"pid\":{pid},\"node\":{},\"pages\":{pages},\"seg\":{seg},\"offset\":{offset}",
            node(n)
        ),
        TraceEvent::DrainFlush {
            pid,
            node: n,
            seg,
            offset,
            backer,
        } => format!(
            "\"pid\":{pid},\"node\":{},\"seg\":{seg},\"offset\":{offset},\"backer\":{}",
            node(n),
            node(backer)
        ),
        TraceEvent::Recover {
            pid,
            node: n,
            pages,
            seg,
            dead,
        } => format!(
            "\"pid\":{pid},\"node\":{},\"pages\":{pages},\"seg\":{seg},\"dead\":{}",
            node(n),
            node(dead)
        ),
        TraceEvent::Orphan {
            pid,
            node: n,
            dead,
            lost,
        } => format!(
            "\"pid\":{pid},\"node\":{},\"dead\":{},\"lost\":{lost}",
            node(n),
            node(dead)
        ),
        TraceEvent::Exec {
            pid,
            node: n,
            ops,
            finished,
        } => format!(
            "\"pid\":{pid},\"node\":{},\"ops\":{ops},\"finished\":{finished}",
            node(n)
        ),
        TraceEvent::NetDrop {
            kind,
            from,
            to,
            attempt,
        } => format!(
            "\"msg\":\"{:?}\",\"from\":{},\"to\":{},\"attempt\":{attempt}",
            kind,
            node(from),
            node(to)
        ),
        TraceEvent::NetUnreachable {
            kind,
            from,
            to,
            attempts,
        } => format!(
            "\"msg\":\"{:?}\",\"from\":{},\"to\":{},\"attempts\":{attempts}",
            kind,
            node(from),
            node(to)
        ),
        TraceEvent::NetJitter {
            kind,
            from,
            to,
            delay_us,
        } => format!(
            "\"msg\":\"{:?}\",\"from\":{},\"to\":{},\"delay_us\":{delay_us}",
            kind,
            node(from),
            node(to)
        ),
        TraceEvent::NetDup {
            kind,
            from,
            to,
            seq,
        } => format!(
            "\"msg\":\"{:?}\",\"from\":{},\"to\":{},\"seq\":{seq}",
            kind,
            node(from),
            node(to)
        ),
        TraceEvent::NetReorder { kind, from, to } => format!(
            "\"msg\":\"{:?}\",\"from\":{},\"to\":{}",
            kind,
            node(from),
            node(to)
        ),
        TraceEvent::NetDedup { node: n, pages } => {
            format!("\"node\":{},\"pages\":{pages}", node(n))
        }
        TraceEvent::NetStale { seg, offset, seq } => {
            format!("\"seg\":{seg},\"offset\":{offset},\"seq\":{seq}")
        }
        TraceEvent::NetDeathLost { seg, to } => {
            format!("\"seg\":{seg},\"to\":{}", node(to))
        }
        TraceEvent::NetCrash {
            node: n,
            amnesiac,
            dropped,
        } => format!(
            "\"node\":{},\"amnesiac\":{amnesiac},\"dropped\":{dropped}",
            node(n)
        ),
        TraceEvent::NetNodeDown { kind, from, to } => format!(
            "\"msg\":\"{:?}\",\"from\":{},\"to\":{}",
            kind,
            node(from),
            node(to)
        ),
        TraceEvent::NetRoute {
            kind,
            from,
            to,
            hops,
        } => format!(
            "\"msg\":\"{:?}\",\"from\":{},\"to\":{},\"hops\":{hops}",
            kind,
            node(from),
            node(to)
        ),
        TraceEvent::NetBatch {
            node: n,
            requests,
            pages,
        } => format!("\"node\":{},\"requests\":{requests},\"pages\":{pages}", node(n)),
        TraceEvent::NetCoalesce { node: n, seg, offset } => {
            format!("\"node\":{},\"seg\":{seg},\"offset\":{offset}", node(n))
        }
        TraceEvent::NetReplicate {
            node: n,
            replica,
            pages,
        } => format!(
            "\"node\":{},\"replica\":{},\"pages\":{pages}",
            node(n),
            node(replica)
        ),
        TraceEvent::Failover {
            pid,
            node: n,
            dead,
            replica,
            pages,
            seg,
        } => format!(
            "\"pid\":{pid},\"node\":{},\"dead\":{},\"replica\":{},\"pages\":{pages},\"seg\":{seg}",
            node(n),
            node(dead),
            node(replica)
        ),
        TraceEvent::PlacementSkip { node: n, source } => {
            format!("\"node\":{},\"source\":{}", node(n), node(source))
        }
        TraceEvent::NetPitFail {
            node: n,
            upstream,
            seg,
            offset,
            waiters,
            rerouted,
        } => format!(
            "\"node\":{},\"upstream\":{},\"seg\":{seg},\"offset\":{offset},\"waiters\":{waiters},\"rerouted\":{rerouted}",
            node(n),
            node(upstream)
        ),
    }
}

/// One merged record for chronological ordering across journals.
enum Record<'a> {
    Span(&'a str, &'a Span),
    Event(&'a str, &'a crate::journal::JournalEvent),
}

impl Record<'_> {
    fn at_us(&self) -> u64 {
        match self {
            Record::Span(_, s) => s.start.as_micros(),
            Record::Event(_, e) => e.at.as_micros(),
        }
    }
    /// Orders spans before events at the same instant, so a parent span
    /// precedes the events it encloses.
    fn rank(&self) -> u8 {
        match self {
            Record::Span(..) => 0,
            Record::Event(..) => 1,
        }
    }
}

fn merged<'a>(journals: &[(&'a str, &'a Journal)]) -> Vec<Record<'a>> {
    let mut records = Vec::new();
    for (source, j) in journals {
        for s in j.spans() {
            records.push(Record::Span(source, s));
        }
        for e in j.events() {
            records.push(Record::Event(source, e));
        }
    }
    // Stable sort keeps intra-journal record order for same-instant ties.
    records.sort_by_key(|r| (r.at_us(), r.rank()));
    records
}

/// Exports the journals as one JSONL document: one JSON object per
/// line, chronologically merged. Span lines carry `"type":"span"` with
/// `start_us`/`end_us` (null while open); event lines carry
/// `"type":"event"` with the structured fields under `"args"` and the
/// historical detail string under `"detail"`.
pub fn jsonl(journals: &[(&str, &Journal)]) -> String {
    let mut out = String::new();
    for r in merged(journals) {
        match r {
            Record::Span(source, s) => {
                let _ = write!(
                    out,
                    "{{\"type\":\"span\",\"source\":\"{}\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"node\":",
                    escape(source),
                    s.id.0,
                    s.parent.0,
                    escape(s.name)
                );
                match s.node {
                    Some(n) => {
                        let _ = write!(out, "{}", n.0);
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"start_us\":{},\"end_us\":", s.start.as_micros());
                match s.end {
                    Some(e) => {
                        let _ = write!(out, "{}", e.as_micros());
                    }
                    // Spans abandoned by an error path (or still open at
                    // export time) are flagged explicitly.
                    None => out.push_str("null,\"abandoned\":true"),
                }
                out.push_str("}\n");
            }
            Record::Event(source, e) => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"event\",\"source\":\"{}\",\"t_us\":{},\"kind\":\"{}\",\"span\":{},\"detail\":\"{}\",\"args\":{{{}}}}}",
                    escape(source),
                    e.at.as_micros(),
                    escape(e.kind()),
                    e.span.0,
                    escape(&e.detail()),
                    event_args(&e.event)
                );
            }
        }
    }
    out
}

/// The Perfetto process id a node's track uses: `0` is the global
/// `wire` track, node *n* is process *n + 1*.
pub fn perfetto_pid(node: Option<NodeId>) -> u64 {
    match node {
        Some(n) => n.0 as u64 + 1,
        None => 0,
    }
}

/// Exports the journals as a Chrome/Perfetto `trace.json` document.
///
/// Spans become `"X"` (complete) duration events; still-open spans are
/// closed at `end_us` for display. Point events become `"i"` instants.
/// An event with no node of its own inherits the track of its owning
/// span, falling back to the global `wire` track.
pub fn perfetto(journals: &[(&str, &Journal)], end_us: u64) -> String {
    // Resolve any span id minted by any of the journals.
    let find_span = |id: SpanId| -> Option<&Span> {
        if id.is_none() {
            return None;
        }
        journals.iter().find_map(|(_, j)| j.span(id))
    };

    // One record per line: the Chrome JSON format ignores the whitespace,
    // and line-oriented output diffs (and greps) cleanly.
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, item: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&item);
    };

    // Process-name metadata: one track per node seen anywhere, plus the
    // global wire track.
    let mut pids: Vec<u64> = Vec::new();
    for r in merged(journals) {
        let pid = match &r {
            Record::Span(_, s) => perfetto_pid(s.node),
            Record::Event(_, e) => {
                let node = e.event.node().or_else(|| {
                    find_span(e.span).and_then(|s| s.node)
                });
                perfetto_pid(node)
            }
        };
        if !pids.contains(&pid) {
            pids.push(pid);
        }
    }
    pids.sort_unstable();
    for pid in &pids {
        let name = if *pid == 0 {
            "wire".to_string()
        } else {
            format!("node{}", pid - 1)
        };
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }

    for r in merged(journals) {
        match r {
            Record::Span(source, s) => {
                let pid = perfetto_pid(s.node);
                let ts = s.start.as_micros();
                let dur = s.end.map(|e| e.as_micros()).unwrap_or(end_us).saturating_sub(ts);
                // Abandoned/open spans render closed at the trace end but
                // carry an explicit flag for the profiler and the UI.
                let abandoned = if s.end.is_none() { ",\"abandoned\":true" } else { "" };
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\"ts\":{ts},\"dur\":{dur},\"args\":{{\"source\":\"{}\",\"span\":{},\"parent\":{}{abandoned}}}}}",
                        escape(s.name),
                        escape(source),
                        s.id.0,
                        s.parent.0
                    ),
                );
            }
            Record::Event(source, e) => {
                let node = e.event.node().or_else(|| {
                    find_span(e.span).and_then(|s| s.node)
                });
                let pid = perfetto_pid(node);
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{pid},\"tid\":1,\"ts\":{},\"args\":{{\"source\":\"{}\",\"detail\":\"{}\",{}}}}}",
                        escape(e.kind()),
                        e.at.as_micros(),
                        escape(source),
                        escape(&e.detail()),
                        event_args(&e.event)
                    ),
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use cor_sim::SimTime;

    fn sample() -> Journal {
        let mut j = Journal::new();
        let outer = j.span_start(SimTime::ZERO, "imag-fault", Some(NodeId(1)));
        j.record(
            SimTime::from_millis(1),
            TraceEvent::FillZero {
                pid: 3,
                node: NodeId(1),
                page: 7,
            },
        );
        j.span_end(SimTime::from_millis(2), outer);
        j
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn jsonl_emits_one_object_per_line() {
        let j = sample();
        let doc = jsonl(&[("world", &j)]);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2, "one span + one event");
        assert!(lines[0].starts_with("{\"type\":\"span\""));
        assert!(lines[0].contains("\"name\":\"imag-fault\""));
        assert!(lines[0].contains("\"end_us\":2000"));
        assert!(lines[1].starts_with("{\"type\":\"event\""));
        assert!(lines[1].contains("\"kind\":\"fault\""));
        assert!(lines[1].contains("\"page\":7"));
        assert!(lines[1].contains("\"detail\":\"FillZero pid3 page 7\""));
    }

    #[test]
    fn perfetto_has_metadata_spans_and_instants() {
        let j = sample();
        let doc = perfetto(&[("world", &j)], 5_000);
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(doc.ends_with("\n]}\n"));
        assert!(doc.contains("\"ph\":\"M\""));
        assert!(doc.contains("\"name\":\"node1\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":2000"));
        assert!(doc.contains("\"ph\":\"i\""));
    }

    #[test]
    fn open_spans_close_at_trace_end() {
        let mut j = Journal::new();
        let _leaked = j.span_start(SimTime::from_millis(1), "exec", Some(NodeId(0)));
        let doc = perfetto(&[("world", &j)], 9_000);
        assert!(doc.contains("\"ts\":1000,\"dur\":8000"));
        assert!(doc.contains("\"abandoned\":true"), "open span is flagged");
        let doc = jsonl(&[("world", &j)]);
        assert!(doc.contains("\"end_us\":null,\"abandoned\":true"));

        // Closed spans never carry the flag.
        let j = sample();
        assert!(!perfetto(&[("world", &j)], 9_000).contains("abandoned"));
        assert!(!jsonl(&[("world", &j)]).contains("abandoned"));
    }

    #[test]
    fn nodeless_event_inherits_owning_spans_track() {
        let mut j = Journal::new();
        let s = j.span_start(SimTime::ZERO, "wire-send", Some(NodeId(2)));
        j.record(
            SimTime::from_millis(1),
            TraceEvent::NetStale {
                seg: 4,
                offset: 1,
                seq: 9,
            },
        );
        j.span_end(SimTime::from_millis(2), s);
        let doc = perfetto(&[("fabric", &j)], 2_000);
        // NetStale has no node; it must land on node2's track (pid 3).
        assert!(doc.contains("\"name\":\"net-stale\",\"ph\":\"i\",\"s\":\"p\",\"pid\":3"));
    }
}
