//! The typed event vocabulary of the tracing layer.
//!
//! One variant per thing the simulated system can journal: migration
//! phases, the fault lifecycle, wire-level sends and injected faults,
//! background draining, and crash recovery. Every variant carries its
//! structured fields (`Copy` scalars only — recording an event never
//! allocates), and the [`Display`](std::fmt::Display) rendering is
//! *lossless with respect to the historical journal*: it reproduces the
//! exact detail strings the stringly `(instant, kind, String)` journal
//! used to format, so `render_tail` output and every test that matches on
//! it are unchanged.

use std::fmt;

use cor_ipc::{MsgKind, NodeId};
use cor_sim::SimDuration;

/// A structured journal event.
///
/// [`TraceEvent::kind`] returns the historical short tag (`"fault"`,
/// `"send"`, `"net-drop"`, ...) used by
/// [`Journal::of_kind`](crate::Journal::of_kind);
/// [`TraceEvent::is_milestone`] classifies events for the
/// [`JournalLevel::Summary`](cor_sim::JournalLevel::Summary) gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `migrate` — ExciseProcess packaged a process for departure.
    Excised {
        /// The process.
        pid: u64,
        /// The source node.
        node: NodeId,
        /// Materialized (RealMem) pages at excision time.
        real_pages: u64,
        /// Pages in the resident set.
        resident_pages: u64,
    },
    /// `migrate` — InsertProcess reconstructed a process at the
    /// destination.
    Inserted {
        /// The process.
        pid: u64,
        /// The destination node.
        node: NodeId,
        /// Pages whose bytes travelled in the RIMAS message.
        carried_pages: u64,
        /// Pages left owed as IOUs.
        owed_pages: u64,
    },
    /// `fault` — a zero-fill fault serviced locally.
    FillZero {
        /// The faulting process.
        pid: u64,
        /// The node it runs on.
        node: NodeId,
        /// The faulting page.
        page: u64,
    },
    /// `fault` — a local disk page-in.
    DiskIn {
        /// The faulting process.
        pid: u64,
        /// The node it runs on.
        node: NodeId,
        /// The faulting page.
        page: u64,
    },
    /// `fault` — a copy-on-reference (imaginary) fault: the full IPC
    /// round trip to the backing site, prefetch included.
    Imaginary {
        /// The faulting process.
        pid: u64,
        /// The node it runs on.
        node: NodeId,
        /// The faulting page.
        page: u64,
        /// The imaginary segment that owed the page.
        seg: u64,
        /// Extra pages installed beyond the faulting one.
        prefetched: u64,
        /// Total fault service time (dispatch to installed).
        service: SimDuration,
    },
    /// `stale-reply` — the pager dropped a reply it was not waiting for.
    StaleReply {
        /// The waiting process.
        pid: u64,
        /// The node it runs on.
        node: NodeId,
        /// The segment the pager is waiting on.
        seg: u64,
        /// The awaited page offset within the segment.
        offset: u64,
        /// The awaited request sequence number.
        seq: u64,
    },
    /// `send` — a remote message left a node.
    Send {
        /// Message discriminator.
        kind: MsgKind,
        /// Sending node.
        from: NodeId,
        /// Bytes on the wire, headers and fragmentation included.
        wire_bytes: u64,
    },
    /// `drain` — prefetch-mode background draining pulled owed pages
    /// across the wire.
    DrainPrefetch {
        /// The dependent process.
        pid: u64,
        /// The node it runs on.
        node: NodeId,
        /// Pages installed this round.
        pages: u64,
        /// The segment drained from.
        seg: u64,
        /// The first drained page's offset within the segment.
        offset: u64,
    },
    /// `drain` — flush-mode draining wrote an owed page to the backing
    /// site's crash-survivable disk.
    DrainFlush {
        /// The dependent process.
        pid: u64,
        /// The node it runs on.
        node: NodeId,
        /// The segment the page belongs to.
        seg: u64,
        /// The page's offset within the segment.
        offset: u64,
        /// The backing node whose disk now holds the page.
        backer: NodeId,
    },
    /// `recover` — crash recovery read owed pages back from a dead
    /// node's disk backer.
    Recover {
        /// The dependent process.
        pid: u64,
        /// The node it runs on.
        node: NodeId,
        /// Pages recovered.
        pages: u64,
        /// The segment they belong to.
        seg: u64,
        /// The crashed backing node.
        dead: NodeId,
    },
    /// `orphan` — a crash made owed pages unrecoverable; the process is
    /// terminated cleanly.
    Orphan {
        /// The orphaned process.
        pid: u64,
        /// The node it ran on.
        node: NodeId,
        /// The crashed node holding the lost pages.
        dead: NodeId,
        /// Owed pages no recovery rung could produce.
        lost: u64,
    },
    /// `exec` — a scheduling slice ran (possibly to termination).
    Exec {
        /// The process.
        pid: u64,
        /// The node it ran on.
        node: NodeId,
        /// Trace ops executed this slice.
        ops: u64,
        /// Whether the process terminated.
        finished: bool,
    },
    /// `net-drop` — fault injection destroyed a transmission attempt.
    NetDrop {
        /// Message discriminator.
        kind: MsgKind,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Which attempt was lost (1-based).
        attempt: u32,
    },
    /// `net-unreachable` — the retry budget ran out; the send was
    /// abandoned.
    NetUnreachable {
        /// Message discriminator.
        kind: MsgKind,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// `net-jitter` — injected delivery delay.
    NetJitter {
        /// Message discriminator.
        kind: MsgKind,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The injected extra latency in microseconds.
        delay_us: u64,
    },
    /// `net-dup` — an injected duplicate was suppressed by the
    /// receiver's link-layer sequence tracking.
    NetDup {
        /// Message discriminator.
        kind: MsgKind,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The duplicated link sequence number.
        seq: u64,
    },
    /// `net-reorder` — a delivery was held in limbo so later traffic
    /// overtakes it.
    NetReorder {
        /// Message discriminator.
        kind: MsgKind,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// `net-dedup` — reply pages matched bytes the receiving
    /// NetMsgServer already held; the held frames were installed instead
    /// of fresh copies.
    NetDedup {
        /// The receiving node.
        node: NodeId,
        /// Reply pages substituted from the content cache.
        pages: u64,
    },
    /// `net-stale` — a reply arrived with no pending relay (its request
    /// was already satisfied).
    NetStale {
        /// The segment the reply answered for.
        seg: u64,
        /// The reply's page offset.
        offset: u64,
        /// The reply's echoed sequence number.
        seq: u64,
    },
    /// `net-death-lost` — a segment death notice had no living receiver.
    NetDeathLost {
        /// The dying segment.
        seg: u64,
        /// The (down) node the notice was headed to.
        to: NodeId,
    },
    /// `net-crash` — a node crashed, losing its volatile NetMsgServer
    /// state (and possibly rebooting amnesiac).
    NetCrash {
        /// The crashed node.
        node: NodeId,
        /// Whether it immediately answers the wire again.
        amnesiac: bool,
        /// In-flight messages lost with it.
        dropped: u64,
    },
    /// `net-node-down` — a send fast-failed against a peer already known
    /// dead.
    NetNodeDown {
        /// Message discriminator.
        kind: MsgKind,
        /// Sender.
        from: NodeId,
        /// The dead receiver.
        to: NodeId,
    },
    /// `net-route` — a routed topology carried a delivery over more than
    /// one hop (single-hop deliveries are not journaled: they match the
    /// point-to-point wire exactly).
    NetRoute {
        /// Message discriminator.
        kind: MsgKind,
        /// Sender.
        from: NodeId,
        /// Final receiver.
        to: NodeId,
        /// Links traversed end to end.
        hops: u32,
    },
    /// `net-batch` — a NetMsgServer answered several queued read
    /// requests for the same fragment run with one multi-page reply
    /// (opt-in batched COR service).
    NetBatch {
        /// The serving node.
        node: NodeId,
        /// Requests merged into the reply.
        requests: u64,
        /// Pages the merged reply carried.
        pages: u64,
    },
    /// `net-coalesce` — a read request for a page already being fetched
    /// upstream piggybacked on the in-flight request instead of
    /// re-sending (opt-in PIT-style coalescing).
    NetCoalesce {
        /// The relaying node whose pending-interest table absorbed it.
        node: NodeId,
        /// The origin segment being fetched.
        seg: u64,
        /// The origin page offset.
        offset: u64,
    },
    /// `net-replicate` — the replication layer write-through installed a
    /// segment's page backing on a replica node at page-out time.
    NetReplicate {
        /// The primary home the pages were paged out to.
        node: NodeId,
        /// The replica that now also holds them.
        replica: NodeId,
        /// Pages installed.
        pages: u64,
    },
    /// `failover` — the primary page home was down, and a COR fetch was
    /// served content-addressed from a surviving replica instead of
    /// draining or terminating.
    Failover {
        /// The faulting process.
        pid: u64,
        /// The node it runs on.
        node: NodeId,
        /// The down primary home.
        dead: NodeId,
        /// The replica promoted to serve the read.
        replica: NodeId,
        /// Pages installed from the replica.
        pages: u64,
        /// The faulted segment.
        seg: u64,
    },
    /// `placement-skip` — a load/locality placement policy excluded a
    /// candidate node because it is currently down under a crash plan.
    PlacementSkip {
        /// The excluded (down) candidate.
        node: NodeId,
        /// The node placing the work.
        source: NodeId,
    },
    /// `net-pit-fail` — parked pending-interest waiters whose upstream
    /// fetch died with a crashed peer were unparked: re-routed through a
    /// live replica where possible, failed onto the faulters' recovery
    /// ladders otherwise.
    NetPitFail {
        /// The relaying node whose pending-interest table was drained.
        node: NodeId,
        /// The dead upstream the in-flight fetch was headed to.
        upstream: NodeId,
        /// The origin segment being fetched.
        seg: u64,
        /// The origin page offset.
        offset: u64,
        /// Waiters that were parked under the key.
        waiters: u64,
        /// How many of them a live replica answered.
        rerouted: u64,
    },
}

impl TraceEvent {
    /// The historical short category tag, stable across the typed
    /// refactor: `of_kind("fault")` selects exactly the events the
    /// stringly journal filed under `"fault"`.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Excised { .. } | TraceEvent::Inserted { .. } => "migrate",
            TraceEvent::FillZero { .. }
            | TraceEvent::DiskIn { .. }
            | TraceEvent::Imaginary { .. } => "fault",
            TraceEvent::StaleReply { .. } => "stale-reply",
            TraceEvent::Send { .. } => "send",
            TraceEvent::DrainPrefetch { .. } | TraceEvent::DrainFlush { .. } => "drain",
            TraceEvent::Recover { .. } => "recover",
            TraceEvent::Orphan { .. } => "orphan",
            TraceEvent::Exec { .. } => "exec",
            TraceEvent::NetDrop { .. } => "net-drop",
            TraceEvent::NetUnreachable { .. } => "net-unreachable",
            TraceEvent::NetJitter { .. } => "net-jitter",
            TraceEvent::NetDup { .. } => "net-dup",
            TraceEvent::NetReorder { .. } => "net-reorder",
            TraceEvent::NetDedup { .. } => "net-dedup",
            TraceEvent::NetStale { .. } => "net-stale",
            TraceEvent::NetDeathLost { .. } => "net-death-lost",
            TraceEvent::NetCrash { .. } => "net-crash",
            TraceEvent::NetNodeDown { .. } => "net-node-down",
            TraceEvent::NetRoute { .. } => "net-route",
            TraceEvent::NetBatch { .. } => "net-batch",
            TraceEvent::NetCoalesce { .. } => "net-coalesce",
            TraceEvent::NetReplicate { .. } => "net-replicate",
            TraceEvent::Failover { .. } => "failover",
            TraceEvent::PlacementSkip { .. } => "placement-skip",
            TraceEvent::NetPitFail { .. } => "net-pit-fail",
        }
    }

    /// Whether this event is a lifecycle milestone (recorded at
    /// [`JournalLevel::Summary`](cor_sim::JournalLevel::Summary)) rather
    /// than a per-page or per-message detail (recorded only at
    /// [`JournalLevel::Full`](cor_sim::JournalLevel::Full)).
    pub fn is_milestone(&self) -> bool {
        matches!(
            self,
            TraceEvent::Excised { .. }
                | TraceEvent::Inserted { .. }
                | TraceEvent::DrainPrefetch { .. }
                | TraceEvent::DrainFlush { .. }
                | TraceEvent::Recover { .. }
                | TraceEvent::Orphan { .. }
                | TraceEvent::Exec { .. }
                | TraceEvent::NetCrash { .. }
                | TraceEvent::NetNodeDown { .. }
                | TraceEvent::NetUnreachable { .. }
                | TraceEvent::NetDeathLost { .. }
                | TraceEvent::Failover { .. }
        )
    }

    /// The node this event is best attributed to, for per-node trace
    /// tracks. Wire events go to the *sender* (where the cost was paid);
    /// `net-stale` has no single owner and returns `None`.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            TraceEvent::Excised { node, .. }
            | TraceEvent::Inserted { node, .. }
            | TraceEvent::FillZero { node, .. }
            | TraceEvent::DiskIn { node, .. }
            | TraceEvent::Imaginary { node, .. }
            | TraceEvent::StaleReply { node, .. }
            | TraceEvent::DrainPrefetch { node, .. }
            | TraceEvent::DrainFlush { node, .. }
            | TraceEvent::Recover { node, .. }
            | TraceEvent::Orphan { node, .. }
            | TraceEvent::Exec { node, .. }
            | TraceEvent::NetDedup { node, .. }
            | TraceEvent::NetBatch { node, .. }
            | TraceEvent::NetCoalesce { node, .. }
            | TraceEvent::NetReplicate { node, .. }
            | TraceEvent::Failover { node, .. }
            | TraceEvent::NetPitFail { node, .. }
            | TraceEvent::NetCrash { node, .. } => Some(node),
            TraceEvent::PlacementSkip { source, .. } => Some(source),
            TraceEvent::Send { from, .. }
            | TraceEvent::NetDrop { from, .. }
            | TraceEvent::NetUnreachable { from, .. }
            | TraceEvent::NetJitter { from, .. }
            | TraceEvent::NetDup { from, .. }
            | TraceEvent::NetReorder { from, .. }
            | TraceEvent::NetRoute { from, .. }
            | TraceEvent::NetNodeDown { from, .. } => Some(from),
            TraceEvent::NetDeathLost { to, .. } => Some(to),
            TraceEvent::NetStale { .. } => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    /// Renders the historical detail string, byte-for-byte.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Excised {
                pid,
                node,
                real_pages,
                resident_pages,
            } => write!(
                f,
                "excised pid{pid} from {node}: {real_pages} real pages ({resident_pages} resident)"
            ),
            TraceEvent::Inserted {
                pid,
                node,
                carried_pages,
                owed_pages,
            } => write!(
                f,
                "inserted pid{pid} on {node}: {carried_pages} carried, {owed_pages} owed"
            ),
            TraceEvent::FillZero { pid, page, .. } => write!(f, "FillZero pid{pid} page {page}"),
            TraceEvent::DiskIn { pid, page, .. } => write!(f, "DiskIn pid{pid} page {page}"),
            TraceEvent::Imaginary {
                pid,
                page,
                seg,
                prefetched,
                service,
                ..
            } => write!(
                f,
                "Imaginary pid{pid} page {page} seg {seg} +{prefetched} prefetched ({service})"
            ),
            TraceEvent::StaleReply {
                pid,
                seg,
                offset,
                seq,
                ..
            } => write!(
                f,
                "pid{pid} dropped stale pager message while waiting for seg {seg} page {offset} seq {seq}"
            ),
            TraceEvent::Send {
                kind,
                from,
                wire_bytes,
            } => write!(f, "{kind:?} from {from}: {wire_bytes} wire bytes"),
            TraceEvent::DrainPrefetch {
                pid,
                pages,
                seg,
                offset,
                ..
            } => write!(
                f,
                "pid{pid} prefetch-drained {pages} pages of seg {seg} from page {offset}"
            ),
            TraceEvent::DrainFlush {
                pid,
                seg,
                offset,
                backer,
                ..
            } => write!(
                f,
                "pid{pid} flushed seg {seg} page {offset} to {backer}'s disk"
            ),
            TraceEvent::Recover {
                pid,
                pages,
                seg,
                dead,
                ..
            } => write!(
                f,
                "pid{pid} recovered {pages} pages of seg {seg} from {dead}'s disk"
            ),
            TraceEvent::Orphan {
                pid, dead, lost, ..
            } => write!(
                f,
                "pid{pid} orphaned: {dead} crashed holding {lost} unrecoverable pages"
            ),
            TraceEvent::Exec {
                pid,
                node,
                ops,
                finished,
            } => write!(
                f,
                "pid{pid} ran {ops} ops on {node}{}",
                if finished { ", terminated" } else { "" }
            ),
            TraceEvent::NetDrop {
                kind,
                from,
                to,
                attempt,
            } => write!(f, "{kind:?} {from}->{to} attempt {attempt} lost"),
            TraceEvent::NetUnreachable {
                kind,
                from,
                to,
                attempts,
            } => write!(f, "{kind:?} {from}->{to} abandoned after {attempts} attempts"),
            TraceEvent::NetJitter {
                kind,
                from,
                to,
                delay_us,
            } => write!(f, "{kind:?} {from}->{to} delayed {delay_us}us"),
            TraceEvent::NetDup {
                kind,
                from,
                to,
                seq,
            } => write!(f, "{kind:?} {from}->{to} duplicate seq {seq} suppressed"),
            TraceEvent::NetReorder { kind, from, to } => {
                write!(f, "{kind:?} {from}->{to} held in limbo")
            }
            TraceEvent::NetDedup { node, pages } => {
                write!(f, "{node} installed {pages} already-held reply pages")
            }
            TraceEvent::NetStale { seg, offset, seq } => write!(
                f,
                "reply for seg {seg} page {offset} seq {seq} had no pending relay"
            ),
            TraceEvent::NetDeathLost { seg, to } => {
                write!(f, "death notice for seg {seg} suppressed: {to} is down")
            }
            TraceEvent::NetCrash {
                node,
                amnesiac,
                dropped,
            } => write!(
                f,
                "{node} {} ({dropped} in-flight messages lost)",
                if amnesiac {
                    "crashed and rebooted amnesiac"
                } else {
                    "crashed"
                }
            ),
            TraceEvent::NetNodeDown { kind, from, to } => {
                write!(f, "{kind:?} {from}->{to} aborted: peer is down")
            }
            TraceEvent::NetRoute {
                kind,
                from,
                to,
                hops,
            } => write!(f, "{kind:?} {from}->{to} routed over {hops} hops"),
            TraceEvent::NetBatch {
                node,
                requests,
                pages,
            } => write!(
                f,
                "{node} merged {requests} read requests into one {pages}-page reply"
            ),
            TraceEvent::NetCoalesce { node, seg, offset } => write!(
                f,
                "{node} coalesced request for seg {seg} page {offset} onto in-flight fetch"
            ),
            TraceEvent::NetReplicate {
                node,
                replica,
                pages,
            } => write!(f, "{node} replicated {pages} pages to {replica}"),
            TraceEvent::Failover {
                pid,
                node,
                dead,
                replica,
                pages,
                seg,
            } => write!(
                f,
                "pid{pid} on {node} failed over to {replica}: {pages} pages of seg {seg} ({dead} down)"
            ),
            TraceEvent::PlacementSkip { node, source } => {
                write!(f, "{source} placement skipped {node}: node is down")
            }
            TraceEvent::NetPitFail {
                node,
                upstream,
                seg,
                offset,
                waiters,
                rerouted,
            } => write!(
                f,
                "{node} unparked {waiters} waiters for seg {seg} page {offset} ({upstream} down, {rerouted} rerouted)"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_historical_strings() {
        let e = TraceEvent::FillZero {
            pid: 3,
            node: NodeId(1),
            page: 17,
        };
        assert_eq!(e.to_string(), "FillZero pid3 page 17");
        assert_eq!(e.kind(), "fault");
        let e = TraceEvent::Send {
            kind: MsgKind::Rimas,
            from: NodeId(0),
            wire_bytes: 512,
        };
        assert_eq!(e.to_string(), "Rimas from node0: 512 wire bytes");
        let e = TraceEvent::NetDrop {
            kind: MsgKind::User(7),
            from: NodeId(0),
            to: NodeId(1),
            attempt: 2,
        };
        assert_eq!(e.to_string(), "User(7) node0->node1 attempt 2 lost");
        let e = TraceEvent::NetCrash {
            node: NodeId(1),
            amnesiac: true,
            dropped: 4,
        };
        assert_eq!(
            e.to_string(),
            "node1 crashed and rebooted amnesiac (4 in-flight messages lost)"
        );
    }

    #[test]
    fn milestone_classification() {
        assert!(TraceEvent::Exec {
            pid: 0,
            node: NodeId(0),
            ops: 1,
            finished: true
        }
        .is_milestone());
        assert!(!TraceEvent::FillZero {
            pid: 0,
            node: NodeId(0),
            page: 0
        }
        .is_milestone());
        assert!(!TraceEvent::Send {
            kind: MsgKind::Core,
            from: NodeId(0),
            wire_bytes: 1
        }
        .is_milestone());
    }
}
