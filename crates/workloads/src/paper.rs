//! The paper's published measurements, used as reference values by the
//! experiment harness (paper-vs-measured comparisons).

/// One representative's row across Tables 4-1 through 4-5.
///
/// `None` marks cells that are illegible in the surviving copy of the
/// paper (the Lisp-T row of Table 4-3 and the PM-Mid resident-set cell);
/// the Chess resident-set percentage (66.0) is reconstructed from its
/// legible percent-of-total (25.8).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Representative name as printed.
    pub name: &'static str,
    /// Table 4-1: allocated non-zero bytes (*Real*).
    pub real: u64,
    /// Table 4-1: allocated untouched zero-fill bytes (*RealZ*).
    pub realz: u64,
    /// Table 4-1: total allocated bytes.
    pub total: u64,
    /// Table 4-2: resident set bytes at migration time.
    pub rs: u64,
    /// Table 4-3: percent of RealMem shipped under pure-IOU.
    pub iou_pct_real: Option<f64>,
    /// Table 4-3 (bracketed): percent of total space, pure-IOU.
    pub iou_pct_total: Option<f64>,
    /// Table 4-3: percent of RealMem accessed under resident-set.
    pub rs_pct_real: Option<f64>,
    /// Table 4-3 (bracketed): percent of total space, resident-set.
    pub rs_pct_total: Option<f64>,
    /// Table 4-4: AMap construction seconds.
    pub excise_amap_s: f64,
    /// Table 4-4: RIMAS creation seconds.
    pub excise_rimas_s: f64,
    /// Table 4-4: overall ExciseProcess seconds.
    pub excise_total_s: f64,
    /// Table 4-5: pure-IOU RIMAS transfer seconds.
    pub xfer_iou_s: f64,
    /// Table 4-5: resident-set RIMAS transfer seconds.
    pub xfer_rs_s: f64,
    /// Table 4-5: pure-copy RIMAS transfer seconds.
    pub xfer_copy_s: f64,
}

/// §4.3.1: insertion times ranged from 263 ms (Minprog) to 853 ms
/// (Lisp-Del).
pub const INSERT_RANGE_S: (f64, f64) = (0.263, 0.853);

/// §4.3.3: servicing an imaginary fault remotely vs. a local disk fault.
pub const IMAG_FAULT_S: f64 = 0.115;
/// §4.3.3: local disk fault service time.
pub const DISK_FAULT_S: f64 = 0.0408;

/// §4.4.1: average byte-traffic saving of pure-IOU (no prefetch) over
/// pure-copy.
pub const BYTE_SAVINGS_PCT: f64 = 58.2;
/// §4.4.2: average message-handling time saving of pure-IOU (no prefetch).
pub const MSG_SAVINGS_PCT: f64 = 47.8;

/// The published rows, in the paper's order.
pub const ROWS: [PaperRow; 7] = [
    PaperRow {
        name: "Minprog",
        real: 142_336,
        realz: 187_904,
        total: 330_240,
        rs: 71_680,
        iou_pct_real: Some(8.6),
        iou_pct_total: Some(3.7),
        rs_pct_real: Some(50.4),
        rs_pct_total: Some(21.7),
        excise_amap_s: 0.37,
        excise_rimas_s: 0.36,
        excise_total_s: 0.82,
        xfer_iou_s: 0.16,
        xfer_rs_s: 5.0,
        xfer_copy_s: 8.5,
    },
    PaperRow {
        name: "Lisp-T",
        real: 2_203_136,
        realz: 4_225_926_144,
        total: 4_228_129_280,
        rs: 190_464,
        iou_pct_real: None,
        iou_pct_total: None,
        rs_pct_real: None,
        rs_pct_total: None,
        excise_amap_s: 2.12,
        excise_rimas_s: 0.59,
        excise_total_s: 2.79,
        xfer_iou_s: 0.16,
        xfer_rs_s: 25.8,
        xfer_copy_s: 157.0,
    },
    PaperRow {
        name: "Lisp-Del",
        real: 2_200_064,
        realz: 4_225_929_216,
        total: 4_228_129_280,
        rs: 190_464,
        iou_pct_real: Some(16.5),
        iou_pct_total: Some(0.002),
        rs_pct_real: Some(17.4),
        rs_pct_total: Some(0.009),
        excise_amap_s: 2.46,
        excise_rimas_s: 0.73,
        excise_total_s: 3.38,
        xfer_iou_s: 0.17,
        xfer_rs_s: 25.8,
        xfer_copy_s: 168.5,
    },
    PaperRow {
        name: "PM-Start",
        real: 449_024,
        realz: 501_760,
        total: 950_784,
        rs: 132_096,
        iou_pct_real: Some(58.0),
        iou_pct_total: Some(27.4),
        rs_pct_real: Some(76.0),
        rs_pct_total: Some(35.9),
        excise_amap_s: 0.98,
        excise_rimas_s: 0.63,
        excise_total_s: 1.67,
        xfer_iou_s: 0.15,
        xfer_rs_s: 9.0,
        xfer_copy_s: 30.8,
    },
    PaperRow {
        name: "PM-Mid",
        real: 446_464,
        realz: 466_432,
        total: 912_896,
        rs: 190_976,
        iou_pct_real: Some(51.5),
        iou_pct_total: Some(25.2),
        rs_pct_real: None,
        rs_pct_total: None,
        excise_amap_s: 1.01,
        excise_rimas_s: 0.68,
        excise_total_s: 1.74,
        xfer_iou_s: 0.16,
        xfer_rs_s: 13.0,
        xfer_copy_s: 28.1,
    },
    PaperRow {
        name: "PM-End",
        real: 492_032,
        realz: 398_848,
        total: 890_880,
        rs: 302_080,
        iou_pct_real: Some(26.9),
        iou_pct_total: Some(14.8),
        rs_pct_real: Some(72.5),
        rs_pct_total: Some(40.1),
        excise_amap_s: 1.4,
        excise_rimas_s: 0.94,
        excise_total_s: 2.45,
        xfer_iou_s: 0.19,
        xfer_rs_s: 20.5,
        xfer_copy_s: 31.0,
    },
    PaperRow {
        name: "Chess",
        real: 195_584,
        realz: 305_152,
        total: 500_736,
        rs: 110_080,
        iou_pct_real: Some(35.6),
        iou_pct_total: Some(13.9),
        rs_pct_real: Some(66.0),
        rs_pct_total: Some(25.8),
        excise_amap_s: 0.37,
        excise_rimas_s: 0.43,
        excise_total_s: 1.0,
        xfer_iou_s: 0.21,
        xfer_rs_s: 7.7,
        xfer_copy_s: 11.7,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use cor_mem::PAGE_SIZE;

    #[test]
    fn every_published_quantity_is_page_aligned() {
        for row in &ROWS {
            assert_eq!(row.real % PAGE_SIZE, 0, "{}", row.name);
            assert_eq!(row.realz % PAGE_SIZE, 0, "{}", row.name);
            assert_eq!(row.total % PAGE_SIZE, 0, "{}", row.name);
            assert_eq!(row.rs % PAGE_SIZE, 0, "{}", row.name);
            assert_eq!(row.real + row.realz, row.total, "{}", row.name);
        }
    }

    #[test]
    fn headline_ratios_hold_in_the_published_data() {
        let max_total = ROWS.iter().map(|r| r.total).max().unwrap();
        let min_total = ROWS.iter().map(|r| r.total).min().unwrap();
        // §4.2.1: "a factor of 12,803" between biggest and smallest.
        assert_eq!(max_total / min_total, 12_803);
        let max_real = ROWS.iter().map(|r| r.real).max().unwrap();
        let min_real = ROWS.iter().map(|r| r.real).min().unwrap();
        // §4.2.1: RealMem varies "only by a factor of 15".
        assert_eq!(max_real / min_real, 15);
        // §4.3.2: the most extreme copy/IOU ratio is ~1000x (Lisp-Del).
        let lisp_del = &ROWS[2];
        assert!((lisp_del.xfer_copy_s / lisp_del.xfer_iou_s) > 950.0);
    }
}
