//! Minprog: the "null trap" of migration benchmarking (paper §4.1).
//!
//! A minimal Perq Pascal program: prints a message, waits for user input,
//! terminates. Layout (pages): code `[0, 150)`, static data `[150, 278)`,
//! never-touched zero regions `[278, 645)`. The resident set is the 140
//! most recently used pages `[138, 278)` — the warm end of code plus all
//! data — and remote execution touches only 24 pages (8.6% of RealMem,
//! Table 4-3) inside that warm tail, which is why pure-copy leaves it with
//! nothing to fault on while pure-IOU runs it "44 times slower".
//!
//! Knobs not tabulated by the paper: remote compute budget 30 ms (a few
//! instructions plus terminal I/O), one screen update (the printed
//! message).

use cor_mem::{PageNum, PageRange};
use cor_sim::SimDuration;

use crate::paper::ROWS;
use crate::spec::{assemble_trace, Blueprint, TouchEvent, Workload};

const REAL_PAGES: u64 = 278;
const TOTAL_PAGES: u64 = 645;
const RS_PAGES: u64 = 140;
const TOUCHED: u64 = 24;

/// Builds the Minprog representative.
pub fn workload() -> Workload {
    let install_order: Vec<PageNum> = (0..REAL_PAGES).map(PageNum).collect();
    // Remote phase: print the message, touch the last 24 warm pages while
    // "executing the few instructions before it terminates", exit.
    let events: Vec<TouchEvent> = (REAL_PAGES - TOUCHED..REAL_PAGES)
        .map(|p| TouchEvent {
            page: PageNum(p),
            write: p % 8 == 0,
        })
        .collect();
    let trace = assemble_trace(&events, SimDuration::from_millis(30), 1);
    Workload {
        paper: ROWS[0],
        blueprint: Blueprint {
            name: "Minprog",
            seed: 0x4d49_4e50,
            frame_budget: RS_PAGES as usize,
            regions: vec![PageRange::new(PageNum(0), PageNum(TOTAL_PAGES))],
            on_disk: Vec::new(),
            install_order,
            trace,
            send_rights: 32,
            recv_ports: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_kernel::World;

    #[test]
    fn touched_pages_lie_inside_the_resident_set() {
        let w = workload();
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).unwrap();
        let resident: std::collections::HashSet<PageNum> = world
            .process(a, pid)
            .unwrap()
            .space
            .resident_pages()
            .into_iter()
            .collect();
        for op in w.blueprint.trace.ops() {
            if let cor_kernel::program::Op::Touch { addr, .. } = op {
                assert!(resident.contains(&addr.page()), "{:?} not resident", addr);
            }
        }
    }

    #[test]
    fn unmigrated_run_is_fast_and_faultless() {
        let w = workload();
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).unwrap();
        let report = world.run(a, pid).unwrap();
        assert!(report.finished);
        let stats = &world.process(a, pid).unwrap().stats;
        assert_eq!(stats.disk_faults, 0);
        assert_eq!(stats.imag_faults, 0);
        // A fraction of a second: message + a few instructions.
        assert!(report.elapsed.as_secs_f64() < 0.2, "got {}", report.elapsed);
    }
}
