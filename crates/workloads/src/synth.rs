//! A generic synthetic-workload builder.
//!
//! The seven representatives pin down the paper's evaluation; this builder
//! generates *families* of processes around them, for sensitivity studies
//! and property tests: choose how much memory is real, how scattered it
//! is, how much of it the remote phase touches and with what locality, and
//! how compute-bound the process is.
//!
//! # Examples
//!
//! ```
//! use cor_workloads::synth::SynthSpec;
//! use cor_kernel::World;
//!
//! let w = SynthSpec {
//!     name: "half-local",
//!     seed: 7,
//!     real_pages: 400,
//!     realzero_pages: 600,
//!     runs: 16,
//!     resident_pages: 100,
//!     touched_fraction: 0.5,
//!     locality: 0.8,
//!     compute_ms: 5_000,
//!     write_fraction: 0.3,
//! }
//! .build();
//! let (mut world, a, _) = World::testbed();
//! let pid = w.build(&mut world, a).unwrap();
//! let st = world.process(a, pid).unwrap().space.stats();
//! assert_eq!(st.real_bytes, 400 * 512);
//! ```

use cor_mem::{PageNum, PageRange};
use cor_sim::{Pcg32, SimDuration};

use crate::paper::PaperRow;
use crate::spec::{assemble_trace, scattered_runs, Blueprint, TouchEvent, Workload};

/// Parameters of a synthetic process.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Process name.
    pub name: &'static str,
    /// Determinism seed.
    pub seed: u64,
    /// Materialized (RealMem) pages.
    pub real_pages: u64,
    /// Allocated-but-untouched pages.
    pub realzero_pages: u64,
    /// Number of discontiguous runs the real pages form (1 = one block;
    /// more runs = a more fragmented, Lisp-like space).
    pub runs: u64,
    /// Frame budget = resident set size, in pages.
    pub resident_pages: u64,
    /// Fraction of the real pages the remote phase touches (0, 1].
    pub touched_fraction: f64,
    /// Access locality in [0, 1]: the probability that the next touch
    /// continues sequentially from the previous one. 1.0 scans like
    /// Pasmac; 0.0 hops like Lisp.
    pub locality: f64,
    /// Total modeled computation, milliseconds.
    pub compute_ms: u64,
    /// Fraction of touches that write.
    pub write_fraction: f64,
}

impl SynthSpec {
    /// Materializes the spec as a [`Workload`]. The `paper` row is filled
    /// with this spec's own derived quantities so harness code can treat
    /// synthetic and representative workloads uniformly.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero pages, zero runs, fractions
    /// outside range).
    pub fn build(&self) -> Workload {
        assert!(self.real_pages > 0 && self.runs > 0, "degenerate spec");
        assert!(self.runs <= self.real_pages, "more runs than pages");
        assert!(
            (0.0..=1.0).contains(&self.touched_fraction)
                && (0.0..=1.0).contains(&self.locality)
                && (0.0..=1.0).contains(&self.write_fraction),
            "fractions must lie in [0, 1]"
        );
        assert!(self.resident_pages > 0, "need at least one frame");
        let mut rng = Pcg32::new(self.seed);
        // Lay the real pages out in `runs` runs inside a region about 4x
        // as large, then validate enough extra space for the zero pages.
        let spread = (self.real_pages * 4).max(self.real_pages + self.runs * 2);
        let region = PageRange::new(PageNum(0), PageNum(spread));
        let runs = scattered_runs(&mut rng, region, self.real_pages, self.runs);
        let zero_base = spread;
        // Validate exactly the real runs plus a separate zero region, so
        // the composition matches the spec to the byte.
        let mut regions = runs.clone();
        regions.push(PageRange::new(
            PageNum(zero_base),
            PageNum(zero_base + self.realzero_pages),
        ));
        // Install in shuffled run order so the resident tail is the last
        // runs touched.
        let mut order: Vec<usize> = (0..runs.len()).collect();
        rng.shuffle(&mut order);
        let install_order: Vec<PageNum> = order.iter().flat_map(|&i| runs[i].iter()).collect();

        // Touched set: a locality-driven walk over the real pages.
        let all_pages: Vec<PageNum> = runs.iter().flat_map(|r| r.iter()).collect();
        let want = ((self.real_pages as f64 * self.touched_fraction).round() as usize)
            .clamp(1, all_pages.len());
        let mut touched: Vec<PageNum> = Vec::with_capacity(want);
        let mut seen = std::collections::HashSet::new();
        let mut cursor = rng.below(all_pages.len() as u32) as usize;
        while touched.len() < want {
            if seen.insert(all_pages[cursor]) {
                touched.push(all_pages[cursor]);
            }
            cursor = if rng.chance(self.locality) {
                (cursor + 1) % all_pages.len()
            } else {
                rng.below(all_pages.len() as u32) as usize
            };
        }
        let events: Vec<TouchEvent> = touched
            .into_iter()
            .map(|page| TouchEvent {
                page,
                write: rng.chance(self.write_fraction),
            })
            .collect();
        let trace = assemble_trace(&events, SimDuration::from_millis(self.compute_ms), 0);

        let real = self.real_pages * cor_mem::PAGE_SIZE;
        let realz = self.realzero_pages * cor_mem::PAGE_SIZE;
        Workload {
            paper: PaperRow {
                name: self.name,
                real,
                realz,
                total: real + realz,
                rs: self.resident_pages.min(self.real_pages) * cor_mem::PAGE_SIZE,
                iou_pct_real: None,
                iou_pct_total: None,
                rs_pct_real: None,
                rs_pct_total: None,
                excise_amap_s: 0.0,
                excise_rimas_s: 0.0,
                excise_total_s: 0.0,
                xfer_iou_s: 0.0,
                xfer_rs_s: 0.0,
                xfer_copy_s: 0.0,
            },
            blueprint: Blueprint {
                name: self.name,
                seed: self.seed,
                frame_budget: self.resident_pages as usize,
                regions,
                on_disk: Vec::new(),
                install_order,
                trace,
                send_rights: 24,
                recv_ports: 3,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_kernel::World;
    use cor_migrate::{MigrationManager, Strategy};

    fn spec() -> SynthSpec {
        SynthSpec {
            name: "synth",
            seed: 11,
            real_pages: 200,
            realzero_pages: 300,
            runs: 10,
            resident_pages: 60,
            touched_fraction: 0.4,
            locality: 0.7,
            compute_ms: 2_000,
            write_fraction: 0.25,
        }
    }

    #[test]
    fn composition_matches_spec() {
        let w = spec().build();
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).unwrap();
        let st = world.process(a, pid).unwrap().space.stats();
        assert_eq!(st.real_bytes, 200 * 512);
        assert_eq!(st.realzero_bytes, 300 * 512);
        assert_eq!(st.resident_bytes, 60 * 512);
    }

    #[test]
    fn touched_fraction_is_respected() {
        let w = spec().build();
        let (mut world, a, b) = World::testbed();
        let src = MigrationManager::new(&mut world, a);
        let dst = MigrationManager::new(&mut world, b);
        let pid = w.build(&mut world, a).unwrap();
        src.migrate_to(&mut world, &dst, pid, Strategy::PureIou { prefetch: 0 })
            .unwrap();
        world.run(b, pid).unwrap();
        let faults = world.process(b, pid).unwrap().stats.imag_faults;
        assert_eq!(faults, 80, "0.4 * 200 pages fetched on reference");
    }

    #[test]
    fn locality_controls_prefetch_payoff() {
        let faults_with = |locality: f64| {
            let mut s = spec();
            s.locality = locality;
            let w = s.build();
            let (mut world, a, b) = World::testbed();
            let src = MigrationManager::new(&mut world, a);
            let dst = MigrationManager::new(&mut world, b);
            let pid = w.build(&mut world, a).unwrap();
            src.migrate_to(&mut world, &dst, pid, Strategy::PureIou { prefetch: 3 })
                .unwrap();
            world.run(b, pid).unwrap();
            world.process(b, pid).unwrap().stats.imag_faults
        };
        let sequential = faults_with(1.0);
        let random = faults_with(0.0);
        assert!(
            sequential * 2 < random,
            "sequential {sequential} vs random {random}: prefetch must batch the scan"
        );
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_pages_rejected() {
        let mut s = spec();
        s.real_pages = 0;
        s.build();
    }
}
