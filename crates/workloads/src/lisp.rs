//! The SPICE Lisp representatives (paper §4.1).
//!
//! Lisp processes validate their entire 4 GB address space at birth
//! (Table 4-1: 99.9% RealZeroMem) yet materialize only ~2.2 MB: an 800-page
//! system/code area plus a garbage-collected heap scattered across 600
//! discontiguous runs. The resident set (372 pages) is a set of *isolated*
//! recently-used pages spread over the heap — which is exactly why
//! resident-set shipment is slow for Lisp (many discontiguous runs on the
//! wire) and why prefetch does not pay: a faulted page's address neighbor
//! is rarely part of the working set ("hit ratios on these extra Lisp
//! pages dropped from around 40% to 20% as prefetch increased", §4.3.3).
//!
//! * **Lisp-T** evaluates `T` and exits: 129 touched pages, ~1.5 s of
//!   interpreter work.
//! * **Lisp-Del** loads Rex Dwyer's Delaunay triangulation package and
//!   runs it with graphics: 709 touched pages (16.5% of RealMem,
//!   Table 4-3), a 55 s compute budget, and one screen update per second
//!   of triangulation.
//!
//! Untabulated knobs: compute budgets above; touch clustering (a fraction
//! of touch clusters are adjacent pairs, the rest isolated singles) fitted
//! to the published prefetch hit ratios.

use std::collections::HashSet;

use cor_mem::{PageNum, PageRange};
use cor_sim::{Pcg32, SimDuration};

use crate::paper::ROWS;
use crate::spec::{assemble_trace, scattered_runs, Blueprint, TouchEvent, Workload};

const TOTAL_PAGES: u64 = 8_258_065; // 4,228,129,280 bytes
const CODE_PAGES: u64 = 800;
const HEAP_REGION: PageRange = PageRange {
    start: PageNum(10_000),
    end: PageNum(2_000_000),
};
const HEAP_RUNS: u64 = 600;
const RS_PAGES: u64 = 372;

struct LispParams {
    name: &'static str,
    seed: u64,
    heap_pages: u64, // real pages beyond the code area
    touched_tail: u64,
    touched_cold: u64,
    compute: SimDuration,
    screens: u64,
    write_frac: f64,
}

/// Picks `count` pages from `runs` as scattered clusters: isolated singles
/// or adjacent pairs (probability `pair_frac`), separated by untouched
/// gaps, skipping `exclude`d pages. Returns the clusters.
fn pick_scattered(
    rng: &mut Pcg32,
    runs: &[PageRange],
    count: u64,
    pair_frac: f64,
    exclude: &HashSet<PageNum>,
) -> Vec<Vec<PageNum>> {
    let mut order: Vec<usize> = (0..runs.len()).collect();
    rng.shuffle(&mut order);
    let mut clusters = Vec::new();
    let mut picked = 0u64;
    // Repeated sweeps with growing permissiveness, in case one pass over
    // the runs cannot satisfy `count` with gaps intact.
    for sweep in 0..3 {
        for &ri in &order {
            if picked >= count {
                return clusters;
            }
            let run = runs[ri];
            let mut cursor = run.start.0;
            while cursor < run.end.0 && picked < count {
                let page = PageNum(cursor);
                if exclude.contains(&page) || clusters.iter().flatten().any(|p| *p == page) {
                    cursor += 1;
                    continue;
                }
                let mut cluster = vec![page];
                picked += 1;
                let next = PageNum(cursor + 1);
                if picked < count
                    && rng.chance(pair_frac)
                    && run.contains(next)
                    && !exclude.contains(&next)
                {
                    cluster.push(next);
                    picked += 1;
                    cursor += 1;
                }
                clusters.push(cluster);
                // Leave an untouched gap so clusters stay isolated.
                cursor += if sweep == 0 { 2 + rng.range(0, 3) } else { 2 };
            }
        }
        if picked >= count {
            break;
        }
    }
    assert!(picked >= count, "pool too small: {picked} < {count}");
    clusters
}

fn build(params: LispParams, paper_idx: usize) -> Workload {
    let mut rng = Pcg32::new(params.seed);
    let heap_runs = scattered_runs(&mut rng, HEAP_REGION, params.heap_pages, HEAP_RUNS);

    // The resident set: RS_PAGES scattered picks (30% pairs) across the
    // heap — the isolated recently-used pages of a GC'd heap.
    let tail_clusters = pick_scattered(&mut rng, &heap_runs, RS_PAGES, 0.3, &HashSet::new());
    let tail: Vec<PageNum> = tail_clusters.iter().flatten().copied().collect();
    let tail_set: HashSet<PageNum> = tail.iter().copied().collect();

    // Install order: code, then heap (minus the tail) run by run in
    // shuffled order, then the tail — so the LRU keeps exactly the tail.
    let mut install_order: Vec<PageNum> = (0..CODE_PAGES).map(PageNum).collect();
    let mut run_order: Vec<usize> = (0..heap_runs.len()).collect();
    rng.shuffle(&mut run_order);
    for &ri in &run_order {
        for page in heap_runs[ri].iter() {
            if !tail_set.contains(&page) {
                install_order.push(page);
            }
        }
    }
    let mut tail_shuffled = tail.clone();
    rng.shuffle(&mut tail_shuffled);
    install_order.extend(tail_shuffled.iter().copied());

    // Touched set: a sample of the tail (in cluster units, so adjacent
    // pairs survive sampling and prefetch-1 keeps its ~40% hit ratio)
    // plus cold scattered clusters.
    let mut tail_order: Vec<usize> = (0..tail_clusters.len()).collect();
    rng.shuffle(&mut tail_order);
    let mut clusters: Vec<Vec<PageNum>> = Vec::new();
    let mut sampled = 0u64;
    for &ci in &tail_order {
        if sampled >= params.touched_tail {
            break;
        }
        let cluster = &tail_clusters[ci];
        let take = cluster.len().min((params.touched_tail - sampled) as usize);
        clusters.push(cluster[..take].to_vec());
        sampled += take as u64;
    }
    if params.touched_cold > 0 {
        clusters.extend(pick_scattered(
            &mut rng,
            &heap_runs,
            params.touched_cold,
            0.5,
            &tail_set,
        ));
    }
    rng.shuffle(&mut clusters);
    let events: Vec<TouchEvent> = clusters
        .iter()
        .flatten()
        .map(|&page| TouchEvent {
            page,
            write: rng.chance(params.write_frac),
        })
        .collect();
    let trace = assemble_trace(&events, params.compute, params.screens);

    Workload {
        paper: ROWS[paper_idx],
        blueprint: Blueprint {
            name: params.name,
            seed: params.seed,
            frame_budget: RS_PAGES as usize,
            regions: vec![PageRange::new(PageNum(0), PageNum(TOTAL_PAGES))],
            on_disk: Vec::new(),
            install_order,
            trace,
            send_rights: 34,
            recv_ports: 5,
        },
    }
}

/// Builds Lisp-T: migrate, evaluate `T`, exit.
pub fn lisp_t() -> Workload {
    build(
        LispParams {
            name: "Lisp-T",
            seed: 0x4c49_5350,
            heap_pages: 4303 - CODE_PAGES,
            touched_tail: 116,
            touched_cold: 13,
            compute: SimDuration::from_millis(1_500),
            screens: 0,
            write_frac: 0.2,
        },
        1,
    )
}

/// Builds Lisp-Del: migrate, then Delaunay-triangulate with graphics.
pub fn lisp_del() -> Workload {
    build(
        LispParams {
            name: "Lisp-Del",
            seed: 0x4c44_454c,
            heap_pages: 4297 - CODE_PAGES,
            touched_tail: 333,
            touched_cold: 376,
            compute: SimDuration::from_secs(55),
            screens: 60,
            write_frac: 0.4,
        },
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_kernel::program::Op;
    use cor_kernel::World;

    #[test]
    fn lisp_touch_counts_match_table_4_3() {
        let t = lisp_t();
        let del = lisp_del();
        let distinct = |w: &Workload| {
            w.blueprint
                .trace
                .ops()
                .iter()
                .filter_map(|op| match op {
                    Op::Touch { addr, .. } => Some(addr.page()),
                    _ => None,
                })
                .collect::<HashSet<_>>()
                .len() as u64
        };
        assert_eq!(distinct(&t), 129);
        // 709 touched of 4297 real = 16.5% (Table 4-3).
        assert_eq!(distinct(&del), 709);
        assert!((709.0_f64 / 4297.0 - 0.165).abs() < 0.001);
    }

    #[test]
    fn resident_set_is_scattered() {
        let w = lisp_t();
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).unwrap();
        let resident = world.process(a, pid).unwrap().space.resident_pages();
        assert_eq!(resident.len(), 372);
        // Count maximal address-contiguous runs: scattering means many.
        let mut runs = 1;
        for w in resident.windows(2) {
            if w[1].0 != w[0].0 + 1 {
                runs += 1;
            }
        }
        assert!(runs > 200, "resident set too contiguous: {runs} runs");
    }

    #[test]
    fn sparse_validation_is_cheap() {
        // Building a 4 GB-validated process must not materialize 8M pages.
        let w = lisp_t();
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).unwrap();
        let process = world.process(a, pid).unwrap();
        assert_eq!(process.space.stats().total_bytes(), 4_228_129_280);
        assert!(process.space.map_complexity() < 5_000);
    }

    #[test]
    fn touched_clusters_are_mostly_isolated() {
        // Prefetch hostility: most touched pages must not have a touched
        // address-successor.
        let w = lisp_del();
        let touched: HashSet<u64> = w
            .blueprint
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Touch { addr, .. } => Some(addr.page().0),
                _ => None,
            })
            .collect();
        let with_successor = touched
            .iter()
            .filter(|&&p| touched.contains(&(p + 1)))
            .count();
        let frac = with_successor as f64 / touched.len() as f64;
        assert!(frac < 0.5, "too much locality for Lisp: {frac}");
    }
}
