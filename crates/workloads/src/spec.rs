//! Blueprint machinery shared by the representative processes.

use cor_ipc::{PortRight, Right};
use cor_kernel::process::ProcessId;
use cor_kernel::program::Trace;
use cor_kernel::{KernelError, World};
use cor_mem::page::{Frame, PageData, PAGE_SIZE};
use cor_mem::{AddressSpace, PageNum, PageRange};
use cor_sim::{Pcg32, SimDuration};

use cor_ipc::NodeId;

use crate::paper::PaperRow;

/// Deterministic non-zero contents for a workload page: a function of the
/// workload seed and the page number, so every build of a blueprint is
/// byte-identical.
pub fn page_content(seed: u64, page: PageNum) -> PageData {
    let mut rng = Pcg32::with_stream(seed ^ page.0.rotate_left(17), page.0);
    let mut data = cor_mem::page::zero_page();
    for chunk in data.chunks_mut(8) {
        let v = rng.next_u64().to_le_bytes();
        chunk.copy_from_slice(&v[..chunk.len()]);
    }
    data
}

/// A complete, instantiable description of a representative process:
/// layout, pre-migration memory state, and remote-execution trace.
#[derive(Debug, Clone)]
pub struct Blueprint {
    /// Process name (matches the paper's).
    pub name: &'static str,
    /// Seed for page contents.
    pub seed: u64,
    /// Physical frame budget = the Table 4-2 resident set, in pages.
    pub frame_budget: usize,
    /// Validated page ranges (their total is the Table 4-1 `Total`).
    pub regions: Vec<PageRange>,
    /// Real pages installed directly in the on-disk state (mapped file
    /// pages that have not been read yet).
    pub on_disk: Vec<PageNum>,
    /// Real pages installed resident, in LRU order: the last
    /// `frame_budget` of them form the resident set at migration time.
    pub install_order: Vec<PageNum>,
    /// The remote-execution trace.
    pub trace: Trace,
    /// Send rights the process holds on other parties' ports.
    pub send_rights: usize,
    /// Ports the process owns (it holds Receive + Ownership on each).
    pub recv_ports: usize,
}

impl Blueprint {
    /// Creates the process on `node` with its memory in the documented
    /// pre-migration state, ready to migrate (or to run in place as the
    /// unmigrated baseline).
    ///
    /// # Errors
    ///
    /// Unknown node, or internal errors while populating memory.
    pub fn instantiate(&self, world: &mut World, node: NodeId) -> Result<ProcessId, KernelError> {
        let mut space = AddressSpace::with_frame_budget(self.frame_budget);
        for r in &self.regions {
            space.validate_pages(*r);
        }
        {
            let n = world.node_mut(node)?;
            for &page in &self.on_disk {
                space.install_on_disk(page, page_content(self.seed, page), &mut n.disk);
            }
            for &page in &self.install_order {
                space.install_page(page, Frame::new(page_content(self.seed, page)), &mut n.disk);
            }
        }
        let mut rights = Vec::with_capacity(self.send_rights + 2 * self.recv_ports);
        for _ in 0..self.send_rights {
            let port = world.ports.allocate(node);
            rights.push(PortRight {
                port,
                right: Right::Send,
            });
        }
        for _ in 0..self.recv_ports {
            let port = world.ports.allocate(node);
            rights.push(PortRight {
                port,
                right: Right::Receive,
            });
            rights.push(PortRight {
                port,
                right: Right::Ownership,
            });
        }
        let pid = world.create_process(node, self.name, space, self.trace.clone())?;
        world.process_mut(node, pid)?.rights = rights;
        Ok(pid)
    }
}

/// A representative process: blueprint plus the paper's published numbers.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The published measurements for this representative.
    pub paper: PaperRow,
    /// The instantiable description.
    pub blueprint: Blueprint,
}

impl Workload {
    /// The representative's name.
    pub fn name(&self) -> &'static str {
        self.blueprint.name
    }

    /// Instantiates the process on `node` (see [`Blueprint::instantiate`]).
    ///
    /// # Errors
    ///
    /// As for [`Blueprint::instantiate`].
    pub fn build(&self, world: &mut World, node: NodeId) -> Result<ProcessId, KernelError> {
        self.blueprint.instantiate(world, node)
    }
}

/// One remote-execution memory event, page-granular.
#[derive(Debug, Clone, Copy)]
pub struct TouchEvent {
    /// The page touched.
    pub page: PageNum,
    /// Whether the touch writes.
    pub write: bool,
}

/// Assembles a trace from touch events, spreading `compute` evenly between
/// them and inserting `screens` screen updates at regular intervals.
pub fn assemble_trace(events: &[TouchEvent], compute: SimDuration, screens: u64) -> Trace {
    let mut tb = Trace::builder();
    let n = events.len().max(1) as u64;
    let slice = compute / n;
    let mut leftover = compute - slice * n;
    let screen_every = if screens > 0 {
        n.div_ceil(screens)
    } else {
        u64::MAX
    };
    for (i, ev) in events.iter().enumerate() {
        if ev.write {
            tb.write(ev.page.base(), PAGE_SIZE);
        } else {
            tb.read(ev.page.base(), PAGE_SIZE);
        }
        let mut d = slice;
        if leftover > SimDuration::ZERO {
            d += SimDuration::from_micros(1);
            leftover -= SimDuration::from_micros(1);
        }
        if d > SimDuration::ZERO {
            tb.compute(d);
        }
        if (i as u64 + 1).is_multiple_of(screen_every) {
            tb.screen();
        }
    }
    tb.terminate()
}

/// Carves `n_runs` disjoint runs totalling exactly `total` pages out of
/// `region`, with pseudo-random gaps — the scattered-heap layout of the
/// Lisp representatives.
///
/// # Panics
///
/// Panics if the region cannot hold the runs (`total > region.len()`), or
/// if `n_runs` is zero or exceeds `total`.
pub fn scattered_runs(
    rng: &mut Pcg32,
    region: PageRange,
    total: u64,
    n_runs: u64,
) -> Vec<PageRange> {
    assert!(n_runs > 0 && n_runs <= total, "bad run count");
    assert!(total <= region.len(), "region too small");
    let slack = region.len() - total;
    let avg_gap = (slack / (n_runs + 1)).max(1);
    let base_len = total / n_runs;
    let rem = total % n_runs;
    let mut runs = Vec::with_capacity(n_runs as usize);
    let mut cursor = region.start.0;
    let mut remaining_slack = slack;
    for i in 0..n_runs {
        let gap = if remaining_slack == 0 {
            0
        } else {
            let cap = remaining_slack.min(avg_gap.saturating_mul(3) / 2).max(1);
            rng.range(0, cap + 1)
        };
        remaining_slack -= gap;
        cursor += gap;
        let len = base_len + u64::from(i < rem);
        runs.push(PageRange::new(PageNum(cursor), PageNum(cursor + len)));
        cursor += len;
    }
    debug_assert!(cursor <= region.end.0);
    debug_assert_eq!(runs.iter().map(PageRange::len).sum::<u64>(), total);
    runs
}

/// Flattens runs into their pages, in run order.
pub fn run_pages(runs: &[PageRange]) -> Vec<PageNum> {
    runs.iter().flat_map(|r| r.iter()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_content_is_deterministic_and_distinct() {
        let a = page_content(1, PageNum(5));
        let b = page_content(1, PageNum(5));
        assert_eq!(a, b);
        assert_ne!(page_content(1, PageNum(6)), a);
        assert_ne!(page_content(2, PageNum(5)), a);
    }

    #[test]
    fn assemble_trace_spreads_compute_exactly() {
        let events: Vec<TouchEvent> = (0..7)
            .map(|i| TouchEvent {
                page: PageNum(i),
                write: i % 2 == 0,
            })
            .collect();
        let total = SimDuration::from_millis(100);
        let t = assemble_trace(&events, total, 2);
        assert_eq!(t.compute_total(), total, "no compute time lost to rounding");
        let screens = t
            .ops()
            .iter()
            .filter(|o| matches!(o, cor_kernel::program::Op::ScreenUpdate))
            .count();
        assert_eq!(
            screens, 1,
            "7 events / ceil(7/2)=4 -> one screen boundary hit"
        );
    }

    #[test]
    fn scattered_runs_are_exact_and_disjoint() {
        let mut rng = Pcg32::new(9);
        let region = PageRange::new(PageNum(1000), PageNum(50_000));
        let runs = scattered_runs(&mut rng, region, 3_503, 600);
        assert_eq!(runs.len(), 600);
        assert_eq!(runs.iter().map(PageRange::len).sum::<u64>(), 3_503);
        for w in runs.windows(2) {
            assert!(w[0].end.0 <= w[1].start.0, "overlap: {:?} {:?}", w[0], w[1]);
        }
        assert!(runs.last().unwrap().end.0 <= 50_000);
        assert_eq!(run_pages(&runs).len(), 3_503);
    }
}
