//! The paper's seven representative processes (§4.1).
//!
//! Each representative is a [`Blueprint`]: an address-space layout whose
//! composition matches Table 4-1 **exactly** (every quantity in the paper
//! is a multiple of the 512-byte page), an install order whose LRU tail
//! reproduces the Table 4-2 resident set exactly, and a deterministic
//! remote-execution trace whose touch pattern is parameterized to land on
//! the Table 4-3 utilization figures:
//!
//! | Representative | Class | Access pattern |
//! |---|---|---|
//! | Minprog | null program | touches a couple dozen recently-used pages and exits |
//! | Lisp-T  | huge sparse space, trivial work | 4 GB validated, evaluates `T` |
//! | Lisp-Del | huge sparse space, real work | Delaunay triangulation; scattered heap, no locality |
//! | PM-Start / PM-Mid / PM-End | file-to-file filter | sequential scans of mapped files, migrated early / mid / late in life |
//! | Chess | long-lived compute-bound | ticks its game clock every second for minutes |
//!
//! Workload-specific knobs that the paper does not tabulate directly
//! (remote compute budgets, touch clustering) are documented per module;
//! they are fitted so the *measured* figures (remote execution times,
//! prefetch hit ratios) reproduce the paper's shape.

pub mod chess;
pub mod lisp;
pub mod minprog;
pub mod paper;
pub mod pasmac;
pub mod spec;
pub mod synth;

pub use paper::PaperRow;
pub use spec::{Blueprint, Workload};

/// All seven representatives, in the paper's order.
pub fn all() -> Vec<Workload> {
    vec![
        minprog::workload(),
        lisp::lisp_t(),
        lisp::lisp_del(),
        pasmac::pm_start(),
        pasmac::pm_mid(),
        pasmac::pm_end(),
        chess::workload(),
    ]
}

/// Looks a representative up by its paper name (e.g. `"Lisp-Del"`).
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use cor_kernel::World;

    #[test]
    fn table_4_1_and_4_2_match_exactly() {
        for w in super::all() {
            let (mut world, a, _) = World::testbed();
            let pid = w.build(&mut world, a).unwrap();
            let process = world.process(a, pid).unwrap();
            let st = process.space.stats();
            let paper = &w.paper;
            assert_eq!(st.real_bytes, paper.real, "{}: Real bytes", w.name());
            assert_eq!(
                st.realzero_bytes,
                paper.realz,
                "{}: RealZero bytes",
                w.name()
            );
            assert_eq!(st.total_bytes(), paper.total, "{}: Total bytes", w.name());
            assert_eq!(st.resident_bytes, paper.rs, "{}: resident set", w.name());
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let digest = |w: &super::Workload| {
            let (mut world, a, _) = World::testbed();
            let pid = w.build(&mut world, a).unwrap();
            // Touch nothing; checksum over the resident set instead.
            let pages = world.process(a, pid).unwrap().space.resident_pages();
            let mut acc = 0u64;
            for page in pages {
                let n = world.node_mut(a).unwrap();
                let p = n.processes.get_mut(&pid).unwrap();
                let data = p.space.peek_page(page, &mut n.disk).unwrap();
                acc = acc.wrapping_mul(31).wrapping_add(
                    data.iter()
                        .fold(page.0, |h, &b| h.wrapping_mul(131).wrapping_add(b as u64)),
                );
            }
            acc
        };
        for w in super::all() {
            assert_eq!(digest(&w), digest(&w), "{} not deterministic", w.name());
        }
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let all = super::all();
        let names: std::collections::HashSet<&str> = all.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 7);
        assert!(super::by_name("Lisp-Del").is_some());
        assert!(super::by_name("nope").is_none());
    }
}
