//! The Pasmac macro-processor representatives (paper §4.1).
//!
//! Pasmac reads a 164 KB program (320 pages, memory-mapped) that imports
//! five definition files totalling 114 KB (222 pages), and writes the
//! expanded text back out. Its file pages are touched "sequentially and in
//! their entirety", which is why the Pasmac family shows the highest
//! address-space utilization (Table 4-3), profits most from prefetch
//! (a steady ~78% hit ratio in the paper), and defeats the resident-set
//! strategy: physical memory acts as a disk cache, so the resident set is
//! full of *already-processed* file pages that are never referenced again.
//!
//! Three migration points:
//! * **PM-Start** — at the first definition-file access. The definition
//!   files are still unread (mapped, on disk).
//! * **PM-Mid** — after all definition files are read; no further file
//!   input remains.
//! * **PM-End** — near the end of life, with 89 output pages already
//!   written and little computation left.
//!
//! Untabulated knobs: remote compute budgets 56 s / 45 s / 22 s; output
//! writes into the zero-fill region (not counted in Table 4-3, which
//! tracks shipped RealMem only).

use cor_mem::{PageNum, PageRange};
use cor_sim::SimDuration;

use crate::paper::ROWS;
use crate::spec::{assemble_trace, Blueprint, TouchEvent, Workload};

const CODE: PageRange = PageRange {
    start: PageNum(0),
    end: PageNum(160),
};
const GLOBALS: PageRange = PageRange {
    start: PageNum(160),
    end: PageNum(220),
};
const MAIN_FILE: PageRange = PageRange {
    start: PageNum(400),
    end: PageNum(720),
};
const DEF_FILES: PageRange = PageRange {
    start: PageNum(800),
    end: PageNum(1022),
};
const OUTPUT_BASE: u64 = 1100;

fn pages(r: PageRange) -> Vec<PageNum> {
    r.iter().collect()
}

fn span(start: u64, end: u64) -> Vec<PageNum> {
    (start..end).map(PageNum).collect()
}

fn reads(pages: &[PageNum]) -> Vec<TouchEvent> {
    pages
        .iter()
        .map(|&page| TouchEvent { page, write: false })
        .collect()
}

fn writes(pages: &[PageNum]) -> Vec<TouchEvent> {
    pages
        .iter()
        .map(|&page| TouchEvent { page, write: true })
        .collect()
}

/// PM-Start: migrated as the first definition file is being read.
pub fn pm_start() -> Workload {
    // Real = code 160 + globals 60 + libs 115 + main 320 + defs 222 = 877.
    let libs = PageRange::new(PageNum(220), PageNum(335));
    let mut install = pages(libs);
    install.extend(pages(CODE));
    install.extend(pages(GLOBALS));
    install.extend(pages(MAIN_FILE)); // resident tail: main[462..720)
                                      // Remote phase: scan the definition files, re-read macro call sites in
                                      // the main file, run the expander code, write the output.
    let mut ev = Vec::new();
    ev.extend(reads(&span(800, 1022))); // all def files, sequentially
    ev.extend(reads(&span(0, 125))); // expander code paths
    ev.extend(reads(&span(400, 462))); // main-file call sites (cold)
    ev.extend(reads(&span(620, 720))); // main-file call sites (resident)
    ev.extend(writes(&span(OUTPUT_BASE, OUTPUT_BASE + 300))); // expansion out
    let trace = assemble_trace(&ev, SimDuration::from_secs(56), 0);
    Workload {
        paper: ROWS[3],
        blueprint: Blueprint {
            name: "PM-Start",
            seed: 0x504d_5354,
            frame_budget: 258,
            regions: vec![
                PageRange::new(PageNum(0), PageNum(335)),
                MAIN_FILE,
                DEF_FILES,
                PageRange::new(PageNum(OUTPUT_BASE), PageNum(OUTPUT_BASE + 980)),
            ],
            on_disk: pages(DEF_FILES), // mapped but unread
            install_order: install,
            trace,
            send_rights: 30,
            recv_ports: 4,
        },
    }
}

/// PM-Mid: migrated after every definition file has been read in.
pub fn pm_mid() -> Workload {
    // Real = code 160 + globals 60 + libs 110 + main 320 + defs 222 = 872.
    let libs = PageRange::new(PageNum(220), PageNum(330));
    let mut install = pages(libs);
    install.extend(pages(CODE));
    install.extend(pages(GLOBALS));
    install.extend(pages(MAIN_FILE));
    install.extend(pages(DEF_FILES)); // resident tail: defs + main[569..720)
    let mut ev = Vec::new();
    ev.extend(reads(&span(400, 720))); // expand the whole main file
    ev.extend(reads(&span(800, 863))); // definition lookups
    ev.extend(reads(&span(0, 66))); // expander code
    ev.extend(writes(&span(OUTPUT_BASE, OUTPUT_BASE + 350)));
    let trace = assemble_trace(&ev, SimDuration::from_secs(45), 0);
    Workload {
        paper: ROWS[4],
        blueprint: Blueprint {
            name: "PM-Mid",
            seed: 0x504d_4d49,
            frame_budget: 373,
            regions: vec![
                PageRange::new(PageNum(0), PageNum(330)),
                MAIN_FILE,
                DEF_FILES,
                PageRange::new(PageNum(OUTPUT_BASE), PageNum(OUTPUT_BASE + 911)),
            ],
            on_disk: Vec::new(),
            install_order: install,
            trace,
            send_rights: 30,
            recv_ports: 4,
        },
    }
}

/// PM-End: migrated with the expansion almost complete.
pub fn pm_end() -> Workload {
    // Real = code 160 + globals 60 + libs 110 + main 320 + defs 222 +
    // written output 89 = 961.
    let libs = PageRange::new(PageNum(220), PageNum(330));
    let written_out = PageRange::new(PageNum(OUTPUT_BASE), PageNum(OUTPUT_BASE + 89));
    let mut install = pages(libs);
    install.extend(pages(CODE));
    install.extend(pages(GLOBALS));
    install.extend(pages(MAIN_FILE));
    install.extend(pages(DEF_FILES));
    install.extend(pages(written_out)); // resident tail: out + defs + main[441..720)
    let mut ev = Vec::new();
    ev.extend(reads(&span(657, 720))); // last main-file call sites
    ev.extend(reads(&span(0, 107))); // expander + writeout code
    ev.extend(writes(&span(OUTPUT_BASE, OUTPUT_BASE + 89))); // patch written output
    ev.extend(writes(&span(OUTPUT_BASE + 89, OUTPUT_BASE + 180))); // final output
    let trace = assemble_trace(&ev, SimDuration::from_secs(22), 0);
    Workload {
        paper: ROWS[5],
        blueprint: Blueprint {
            name: "PM-End",
            seed: 0x504d_454e,
            frame_budget: 590,
            regions: vec![
                PageRange::new(PageNum(0), PageNum(330)),
                MAIN_FILE,
                DEF_FILES,
                PageRange::new(PageNum(OUTPUT_BASE), PageNum(OUTPUT_BASE + 89 + 779)),
            ],
            on_disk: Vec::new(),
            install_order: install,
            trace,
            send_rights: 30,
            recv_ports: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_kernel::program::Op;
    use cor_kernel::World;
    use std::collections::HashSet;

    fn touched_real(w: &Workload) -> u64 {
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).unwrap();
        let real: HashSet<PageNum> = world
            .process(a, pid)
            .unwrap()
            .space
            .materialized_pages()
            .map(|(p, _)| p)
            .collect();
        w.blueprint
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Touch { addr, .. } => Some(addr.page()),
                _ => None,
            })
            .filter(|p| real.contains(p))
            .collect::<HashSet<_>>()
            .len() as u64
    }

    #[test]
    fn utilization_matches_table_4_3() {
        // PM-Start: 509/877 = 58.0% of RealMem; PM-Mid: 449/872 = 51.5%;
        // PM-End: 259/961 = 26.9%.
        assert_eq!(touched_real(&pm_start()), 509);
        assert_eq!(touched_real(&pm_mid()), 449);
        assert_eq!(touched_real(&pm_end()), 259);
    }

    #[test]
    fn pm_start_defs_are_on_disk() {
        let w = pm_start();
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).unwrap();
        let process = world.process(a, pid).unwrap();
        for page in DEF_FILES.iter() {
            assert!(
                matches!(
                    process.space.page_state(page),
                    Some(cor_mem::PageState::OnDisk(_))
                ),
                "def page {page:?} should be mapped but unread"
            );
        }
    }

    #[test]
    fn resident_sets_are_the_recent_file_tail() {
        let w = pm_start();
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).unwrap();
        let resident = world.process(a, pid).unwrap().space.resident_pages();
        assert_eq!(resident.len(), 258);
        // Everything resident is main-file pages [462, 720).
        assert!(resident.iter().all(|p| (462..720).contains(&p.0)));
    }

    #[test]
    fn access_is_predominantly_sequential() {
        // Prefetch-friendliness: most touched pages have a touched
        // successor (the opposite of the Lisp layout).
        let w = pm_mid();
        let touched: HashSet<u64> = w
            .blueprint
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Touch { addr, .. } => Some(addr.page().0),
                _ => None,
            })
            .collect();
        let with_successor = touched
            .iter()
            .filter(|&&p| touched.contains(&(p + 1)))
            .count();
        let frac = with_successor as f64 / touched.len() as f64;
        assert!(frac > 0.9, "Pasmac should be sequential: {frac}");
    }
}
