//! The Chess representative (paper §4.1).
//!
//! Charly Drechsler's chess program: heavy computation to evaluate board
//! positions, a graphical board with a game clock that ticks (and redraws)
//! every second, and modest memory use. Migration happens right after
//! initialization and the first screen draw. Its longevity drowns out the
//! strategy differences: under pure-IOU it runs "only about 3% longer"
//! (§4.3.3), and Figure 4-2 shows it insensitive to the transfer method.
//!
//! Untabulated knobs: a 600 s compute budget with one clock tick per
//! second; board/evaluation tables touched early in the game.

use cor_mem::{PageNum, PageRange};
use cor_sim::{Pcg32, SimDuration};

use crate::paper::ROWS;
use crate::spec::{Blueprint, TouchEvent, Workload};

const CODE_PAGES: u64 = 240;
const REAL_PAGES: u64 = 382; // code 240 + data 142
const TOTAL_PAGES: u64 = 978;
const RS_PAGES: u64 = 215; // the last 215 installed: [167, 382)

/// Builds the Chess representative.
pub fn workload() -> Workload {
    let mut rng = Pcg32::new(0x4348_4553);
    let install_order: Vec<PageNum> = (0..REAL_PAGES).map(PageNum).collect();
    // Touched remotely: 99 data pages inside the resident set (board,
    // transposition tables) + 37 cold code pages (opening book, endgame
    // paths) = 136 = 35.6% of RealMem (Table 4-3).
    let mut touch_pages: Vec<PageNum> = (260..359).map(PageNum).collect();
    touch_pages.extend((20..57).map(PageNum));
    rng.shuffle(&mut touch_pages);
    let events: Vec<TouchEvent> = touch_pages
        .into_iter()
        .map(|page| TouchEvent {
            page,
            write: page.0 >= CODE_PAGES && rng.chance(0.5),
        })
        .collect();
    // 600 seconds of search, redrawing the clock every second; the board
    // and table touches happen during the opening (the first 136 ticks).
    let mut tb = cor_kernel::program::Trace::builder();
    for (tick, ev) in events
        .iter()
        .map(Some)
        .chain(std::iter::repeat(None))
        .take(600)
        .enumerate()
    {
        let _ = tick;
        if let Some(ev) = ev {
            if ev.write {
                tb.write(ev.page.base(), cor_mem::PAGE_SIZE);
            } else {
                tb.read(ev.page.base(), cor_mem::PAGE_SIZE);
            }
        }
        tb.compute(SimDuration::from_secs(1));
        tb.screen();
    }
    let trace = tb.terminate();
    Workload {
        paper: ROWS[6],
        blueprint: Blueprint {
            name: "Chess",
            seed: 0x4348_4553,
            frame_budget: RS_PAGES as usize,
            regions: vec![PageRange::new(PageNum(0), PageNum(TOTAL_PAGES))],
            on_disk: Vec::new(),
            install_order,
            trace,
            send_rights: 28,
            recv_ports: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_kernel::program::Op;
    use cor_kernel::World;

    #[test]
    fn touched_count_and_union_match_table_4_3() {
        let w = workload();
        let touched: std::collections::HashSet<u64> = w
            .blueprint
            .trace
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Touch { addr, .. } => Some(addr.page().0),
                _ => None,
            })
            .collect();
        assert_eq!(touched.len(), 136);
        // Union with the resident set [167, 382): 215 + 37 cold = 252
        // pages = 66.0% of RealMem, 25.8% of the total space.
        let rs: std::collections::HashSet<u64> = (167..382).collect();
        let union = touched.union(&rs).count();
        assert_eq!(union, 252);
        assert!((union as f64 * 512.0 / 500_736.0 - 0.258).abs() < 0.001);
    }

    #[test]
    fn game_clock_ticks_every_second() {
        let w = workload();
        let screens = w
            .blueprint
            .trace
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::ScreenUpdate))
            .count();
        assert!((590..=600).contains(&screens), "got {screens}");
        assert_eq!(
            w.blueprint.trace.compute_total(),
            SimDuration::from_secs(600)
        );
    }

    #[test]
    fn chess_is_long_lived() {
        let w = workload();
        let (mut world, a, _) = World::testbed();
        let pid = w.build(&mut world, a).unwrap();
        let report = world.run(a, pid).unwrap();
        assert!(report.finished);
        let secs = report.elapsed.as_secs_f64();
        assert!((600.0..630.0).contains(&secs), "got {secs}");
    }
}
