//! Property tests for the simulation substrate.

use proptest::prelude::*;

use cor_sim::{EventQueue, Ledger, LedgerCategory, Pcg32, SimDuration, SimTime};

proptest! {
    /// The event queue pops in exactly the order of a stable sort by time.
    #[test]
    fn event_queue_matches_stable_sort(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i)); // stable by construction
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|e| (e.at.as_micros(), e.event)).collect();
        prop_assert_eq!(got, expected);
    }

    /// `below` is always in range and `range` respects its bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u32..10_000, lo in 0u64..1000, span in 1u64..100_000) {
        let mut rng = Pcg32::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
            let v = rng.range(lo, lo + span);
            prop_assert!(v >= lo && v < lo + span);
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// Shuffling is a permutation for any seed and size.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), n in 0usize..300) {
        let mut rng = Pcg32::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Ledger binning conserves bytes for any bin width and entry set.
    #[test]
    fn ledger_binning_conserves(
        entries in prop::collection::vec((0u64..100_000, 1u64..10_000, 0u8..3), 0..100),
        bin_ms in 1u64..5_000,
    ) {
        let mut ledger = Ledger::new();
        let mut sorted = entries.clone();
        sorted.sort_by_key(|&(t, _, _)| t);
        let mut end = SimTime::ZERO;
        for &(t, bytes, cat) in &sorted {
            let category = LedgerCategory::ALL[cat as usize];
            let at = SimTime::from_micros(t);
            ledger.record(at, bytes, category);
            end = end.max(at);
        }
        let total: u64 = LedgerCategory::ALL
            .iter()
            .flat_map(|&c| ledger.binned(SimDuration::from_millis(bin_ms), end, c))
            .sum();
        prop_assert_eq!(total, ledger.total());
    }

    /// Time arithmetic: since() inverts add for arbitrary instants.
    #[test]
    fn time_arith_roundtrip(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_micros(base);
        let d = SimDuration::from_micros(delta);
        prop_assert_eq!((t0 + d).since(t0), d);
        prop_assert_eq!((t0 + d).saturating_since(t0 + d + d), SimDuration::ZERO);
    }
}
