//! Deterministic simulation substrate for the copy-on-reference migration
//! testbed.
//!
//! This crate provides the building blocks every other crate in the
//! workspace relies on:
//!
//! * [`SimTime`] and [`SimDuration`] — a microsecond-resolution virtual
//!   timeline. Nothing in the workspace ever reads the wall clock; all
//!   elapsed-time results in the experiments are sums of modeled service
//!   times on this timeline.
//! * [`Clock`] — a monotone cursor over the timeline shared by a simulated
//!   world.
//! * [`Pcg32`] — a small, fully deterministic pseudo-random generator
//!   (PCG-XSH-RR 64/32). Workload generators seed one of these so that a
//!   given seed always produces the identical trace, byte-for-byte.
//! * [`EventQueue`] — a stable priority queue of timestamped events used for
//!   delayed message delivery and timers.
//! * [`runtime`] — actor-style per-node runtimes: a pooled event
//!   [`runtime::Inbox`], a [`runtime::TimerDriver`], and the seeded
//!   virtual-time scheduler ([`runtime::EventKey::rank`]) behind the
//!   `--runtime actor` execution mode.
//! * [`metrics`] — counters, byte ledgers with category tags and a time
//!   series view (used to regenerate Figure 4-5 of the paper), and fixed
//!   bucket histograms.
//! * [`JournalLevel`] — the verbosity knob for the typed journal (the
//!   journal itself lives in the `cor-trace` crate, above the substrate).
//!
//! # Examples
//!
//! ```
//! use cor_sim::{Clock, SimDuration};
//!
//! let mut clock = Clock::new();
//! clock.advance(SimDuration::from_millis(115));
//! assert_eq!(clock.now().as_micros(), 115_000);
//! ```

pub mod clock;
pub mod event;
pub mod journal;
pub mod metrics;
pub mod rng;
pub mod runtime;
pub mod time;

pub use clock::Clock;
pub use event::{EventQueue, ScheduledEvent};
pub use journal::JournalLevel;
pub use metrics::{Counter, Histogram, Ledger, LedgerCategory, ReliabilityStats, TimeSeries};
pub use rng::Pcg32;
pub use runtime::{EventKey, Inbox, Lookahead, NodeRuntime, TimerDriver, TimerId};
pub use time::{SimDuration, SimTime};
