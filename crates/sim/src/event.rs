//! A stable timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled for a particular virtual instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number breaking ties: two events scheduled for the
    /// same instant pop in the order they were pushed.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

struct HeapEntry<E>(ScheduledEvent<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq)
        // pops first.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; ties pop in insertion order,
/// which keeps multi-component simulations fully deterministic.
///
/// # Examples
///
/// ```
/// use cor_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// assert_eq!(q.pop().unwrap().event, "early");
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(ScheduledEvent { at, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|h| h.0)
    }

    /// Removes and returns the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<ScheduledEvent<E>> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|h| h.0.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert!(q.pop_due(SimTime::from_millis(5)).is_none());
        assert_eq!(q.pop_due(SimTime::from_millis(15)).unwrap().event, "a");
        assert!(q.pop_due(SimTime::from_millis(15)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
    }
}
