//! Virtual time: instants and durations with microsecond resolution.
//!
//! The simulation never consults the host clock. Every latency in the system
//! (disk service, wire transmission, message handling) is expressed as a
//! [`SimDuration`] and accumulated onto [`SimTime`] instants.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline, in microseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from a second count.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the instant as microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulation clock is
    /// monotone so this indicates a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since called with a later instant"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from a second count.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond and saturating below at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by an integer count, saturating on overflow.
    pub const fn saturating_mul(self, n: u64) -> Self {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::from_millis(100);
        let d = SimDuration::from_millis(40);
        let t1 = t0 + d;
        assert_eq!(t1.since(t0), d);
        assert_eq!(t1 - t0, d);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_on_negative_span() {
        let _ = SimTime::ZERO.since(SimTime::from_micros(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(30);
        let b = SimDuration::from_millis(12);
        assert_eq!((a + b).as_micros(), 42_000);
        assert_eq!((a - b).as_micros(), 18_000);
        assert_eq!((b - a).as_micros(), 0, "subtraction saturates");
        assert_eq!((a * 3).as_micros(), 90_000);
        assert_eq!((a / 2).as_micros(), 15_000);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.0408).as_micros(), 40_800);
        assert_eq!(SimDuration::from_secs_f64(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.00ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.00s");
    }
}
