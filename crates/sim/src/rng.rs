//! A small, permanently stable pseudo-random generator.
//!
//! The workloads must generate identical traces for a given seed on every
//! toolchain and every version of this workspace, so we implement PCG-XSH-RR
//! 64/32 (O'Neill, 2014) directly rather than depending on an external RNG
//! whose stream might change between releases.

/// PCG-XSH-RR 64/32: 64-bit state, 32-bit output.
///
/// # Examples
///
/// ```
/// use cor_sim::Pcg32;
///
/// let mut a = Pcg32::new(42);
/// let mut b = Pcg32::new(42);
/// assert_eq!(a.next_u32(), b.next_u32()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_DEFAULT_STREAM: u64 = 1442695040888963407;

impl Pcg32 {
    /// Creates a generator from a seed, using the reference stream constant.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, PCG_DEFAULT_STREAM)
    }

    /// Creates a generator with an explicit stream selector, allowing
    /// multiple independent deterministic streams from one seed.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Pcg32 { state: 0, inc };
        rng.step();
        rng.state = rng.state.wrapping_add(seed);
        rng.step();
        rng
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Returns a uniformly distributed value in `[0, bound)` using Lemire's
    /// unbiased multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "Pcg32::below requires a non-zero bound");
        // Lemire's method: reject the small biased region.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = (r as u64) * (bound as u64);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Pcg32::range requires lo < hi");
        let span = hi - lo;
        if span <= u32::MAX as u64 {
            lo + self.below(span as u32) as u64
        } else {
            // Wide ranges: rejection over the next power-of-two mask.
            let mask = span.next_power_of_two().wrapping_sub(1);
            loop {
                let v = self.next_u64() & mask;
                if v < span {
                    return lo + v;
                }
            }
        }
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Shuffles a slice in place with the Fisher-Yates algorithm.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below((i + 1) as u32) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(
            !items.is_empty(),
            "Pcg32::choose requires a non-empty slice"
        );
        &items[self.below(items.len() as u32) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_is_stable() {
        // First outputs for seed 0 with the reference stream; these values
        // pin the generator forever (changing them breaks reproducibility).
        let mut rng = Pcg32::new(0);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let mut again = Pcg32::new(0);
        let second: Vec<u32> = (0..4).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let sa: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Pcg32::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut rng = Pcg32::new(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = Pcg32::new(11);
        for _ in 0..10_000 {
            let v = rng.range(100, 200);
            assert!((100..200).contains(&v));
        }
        // Wide range exercises the 64-bit path.
        for _ in 0..1_000 {
            let v = rng.range(0, (u32::MAX as u64) * 16);
            assert!(v < (u32::MAX as u64) * 16);
        }
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = Pcg32::new(3);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::new(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_bound_panics() {
        Pcg32::new(0).below(0);
    }
}
