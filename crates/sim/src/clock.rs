//! The monotone simulation clock.

use crate::time::{SimDuration, SimTime};

/// A monotone cursor over the virtual timeline.
///
/// A simulated world owns exactly one `Clock`. Components advance it as they
/// model work being performed; it can never move backwards. The clock also
/// remembers the largest instant it has ever been asked to advance *to*,
/// which makes "wait until" patterns straightforward.
///
/// # Examples
///
/// ```
/// use cor_sim::{Clock, SimDuration, SimTime};
///
/// let mut clock = Clock::new();
/// clock.advance(SimDuration::from_millis(40));
/// clock.advance_to(SimTime::from_millis(30)); // already past; no-op
/// assert_eq!(clock.now(), SimTime::from_millis(40));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at the origin of the timeline.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// Creates a clock starting at `at`.
    pub fn starting_at(at: SimTime) -> Self {
        Clock { now: at }
    }

    /// Returns the current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves the clock forward by `d` and returns the new instant.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Moves the clock forward to `t` if `t` is in the future; otherwise
    /// leaves it unchanged. Returns the (possibly unchanged) current instant.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }

    /// Runs `f`, returning its result together with the virtual time it
    /// consumed (i.e. how far `f` advanced this clock).
    pub fn timed<T>(&mut self, f: impl FnOnce(&mut Clock) -> T) -> (T, SimDuration) {
        let start = self.now;
        let out = f(self);
        (out, self.now.since(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::new();
        c.advance(SimDuration::from_millis(10));
        c.advance(SimDuration::from_millis(5));
        assert_eq!(c.now(), SimTime::from_millis(15));
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut c = Clock::starting_at(SimTime::from_secs(1));
        c.advance_to(SimTime::from_millis(1)); // in the past
        assert_eq!(c.now(), SimTime::from_secs(1));
        c.advance_to(SimTime::from_secs(2));
        assert_eq!(c.now(), SimTime::from_secs(2));
    }

    #[test]
    fn timed_measures_consumed_time() {
        let mut c = Clock::new();
        let (v, d) = c.timed(|c| {
            c.advance(SimDuration::from_millis(7));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(d, SimDuration::from_millis(7));
    }
}
