//! Measurement instruments: counters, byte ledgers, histograms, series.
//!
//! The experiments regenerate the paper's tables and figures from these
//! records. In particular the [`Ledger`] tags every wire transmission with a
//! [`LedgerCategory`] and timestamp, which is exactly the data needed for
//! Figure 4-3 (bytes per trial), Figure 4-4 (message-handling time) and
//! Figure 4-5 (transfer-rate time series split into fault-support vs bulk
//! traffic).

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Why bytes crossed the wire. Mirrors the traffic split in Figure 4-5 of
/// the paper (white = imaginary fault support, black = everything else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LedgerCategory {
    /// Bulk context shipment during the migration phase (Core and RIMAS
    /// message payloads, resident-set pages, pure-copy pages).
    Bulk,
    /// Traffic generated in support of imaginary faults during remote
    /// execution: read requests, replies, prefetched pages.
    FaultSupport,
    /// Protocol control traffic: acknowledgements, segment death notices,
    /// migration commands.
    Control,
    /// Bytes that crossed the wire more than once: link-layer
    /// retransmissions after an injected drop and injected duplicate
    /// deliveries. Zero on a lossless wire, so the other categories always
    /// reproduce the lossless byte counts exactly.
    Retransmit,
    /// Residual-dependency draining and crash recovery: background
    /// prefetch of owed pages, flushes of owed pages to a crash-survivable
    /// disk backer, and post-crash recovery reads. Zero unless a drain
    /// policy or crash plan is configured, so the paper's byte categories
    /// are untouched by the robustness machinery.
    Drain,
    /// Page-home replication: write-through installs of owed-page backing
    /// on replica nodes and content-addressed reads served by a replica
    /// (nearest-replica routing and crash failover). Zero unless a
    /// replication plan is configured, so the paper's byte categories are
    /// untouched by the replication machinery.
    Replicate,
}

impl LedgerCategory {
    /// All categories, in display order.
    pub const ALL: [LedgerCategory; 6] = [
        LedgerCategory::Bulk,
        LedgerCategory::FaultSupport,
        LedgerCategory::Control,
        LedgerCategory::Retransmit,
        LedgerCategory::Drain,
        LedgerCategory::Replicate,
    ];

    fn index(self) -> usize {
        match self {
            LedgerCategory::Bulk => 0,
            LedgerCategory::FaultSupport => 1,
            LedgerCategory::Control => 2,
            LedgerCategory::Retransmit => 3,
            LedgerCategory::Drain => 4,
            LedgerCategory::Replicate => 5,
        }
    }
}

impl fmt::Display for LedgerCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LedgerCategory::Bulk => "bulk",
            LedgerCategory::FaultSupport => "fault-support",
            LedgerCategory::Control => "control",
            LedgerCategory::Retransmit => "retransmit",
            LedgerCategory::Drain => "drain",
            LedgerCategory::Replicate => "replicate",
        };
        f.write_str(s)
    }
}

/// One ledger entry: `bytes` of `category` traffic observed at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerEntry {
    /// When the transmission completed.
    pub at: SimTime,
    /// Payload plus protocol overhead bytes.
    pub bytes: u64,
    /// Traffic class.
    pub category: LedgerCategory,
}

/// An append-only record of categorized byte traffic over virtual time.
///
/// # Examples
///
/// ```
/// use cor_sim::{Ledger, LedgerCategory, SimTime};
///
/// let mut ledger = Ledger::new();
/// ledger.record(SimTime::from_millis(1), 512, LedgerCategory::Bulk);
/// ledger.record(SimTime::from_millis(2), 64, LedgerCategory::FaultSupport);
/// assert_eq!(ledger.total(), 576);
/// assert_eq!(ledger.total_for(LedgerCategory::Bulk), 512);
/// assert_eq!(ledger.total_for(LedgerCategory::Retransmit), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
    totals: [u64; 6],
    coarse: bool,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Switches the ledger between full entry recording (the default,
    /// needed for the Figure 4-5 time-series binning) and coarse mode,
    /// where [`Ledger::record`] only bumps the fixed per-category total
    /// array — no allocation, no entry push. Load harnesses that only
    /// need byte totals run coarse so stats stay off the service hot
    /// path; totals are identical either way.
    pub fn set_coarse(&mut self, coarse: bool) {
        self.coarse = coarse;
    }

    /// `true` when only per-category totals are being kept.
    pub fn is_coarse(&self) -> bool {
        self.coarse
    }

    /// Records `bytes` of `category` traffic at instant `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64, category: LedgerCategory) {
        self.totals[category.index()] += bytes;
        if !self.coarse {
            self.entries.push(LedgerEntry {
                at,
                bytes,
                category,
            });
        }
    }

    /// Total bytes across all categories.
    pub fn total(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Total bytes for one category.
    pub fn total_for(&self, category: LedgerCategory) -> u64 {
        self.totals[category.index()]
    }

    /// All entries in record order (which is also time order, because the
    /// simulation clock is monotone).
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.total() == 0
    }

    /// Bins the ledger into fixed-width buckets of `bin` virtual time,
    /// returning per-bin byte totals for `category` from time zero through
    /// `end`. Used to draw the Figure 4-5 rate panels.
    pub fn binned(&self, bin: SimDuration, end: SimTime, category: LedgerCategory) -> Vec<u64> {
        assert!(bin.as_micros() > 0, "bin width must be positive");
        let nbins = (end.as_micros() / bin.as_micros() + 1) as usize;
        let mut out = vec![0u64; nbins];
        for e in &self.entries {
            if e.category == category && e.at <= end {
                let idx = (e.at.as_micros() / bin.as_micros()) as usize;
                out[idx] += e.bytes;
            }
        }
        out
    }
}

/// Counters for the unreliable-wire machinery: injected faults on one side,
/// the recovery work they forced on the other. A lossless run leaves every
/// field zero.
///
/// # Examples
///
/// ```
/// use cor_sim::{ReliabilityStats, SimDuration};
///
/// let mut r = ReliabilityStats::default();
/// r.drops_injected.incr();
/// r.retransmissions.incr();
/// r.timeout_stalls.incr();
/// r.stall_time += SimDuration::from_millis(25);
/// assert_eq!(r.retransmissions.get(), 1);
/// assert!(r.any_faults_injected());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Transmission attempts the fault plan destroyed in flight.
    pub drops_injected: Counter,
    /// Deliveries the fault plan repeated on the wire.
    pub duplicates_injected: Counter,
    /// Deliveries the fault plan held back past later traffic.
    pub reorders_injected: Counter,
    /// Link-layer retransmissions (attempts beyond the first) forced by
    /// drops.
    pub retransmissions: Counter,
    /// Wire bytes carried by those retransmissions (and by injected
    /// duplicate deliveries). Mirrors the ledger's retransmit category:
    /// the two are kept consistent by a fabric debug assertion.
    pub retransmit_wire_bytes: Counter,
    /// Duplicate deliveries suppressed by receiver-side sequence tracking.
    pub duplicate_drops: Counter,
    /// Stale or already-satisfied protocol replies dropped by idempotent
    /// handlers above the link layer.
    pub stale_replies: Counter,
    /// Retransmission timeouts that expired (one per backoff wait).
    pub timeout_stalls: Counter,
    /// Total virtual time senders spent stalled in retransmission backoff.
    pub stall_time: SimDuration,
    /// Sends abandoned after the retry budget was exhausted.
    pub unreachable_failures: Counter,
    /// Whole-node crashes fired by the crash plan (or injected manually).
    pub node_crashes: Counter,
    /// In-flight messages lost when a node crashed: its queued deliveries
    /// plus limbo traffic that was headed to it.
    pub crash_dropped_messages: Counter,
    /// Sends abandoned immediately because the peer was already marked
    /// crashed — no transmission attempt, no backoff.
    pub crash_fast_fails: Counter,
    /// Owed pages drained in the background (prefetched to the dependent
    /// node or flushed to a crash-survivable disk backer).
    pub drained_pages: Counter,
    /// Owed pages recovered from a crashed node's disk backer after the
    /// crash.
    pub pages_recovered: Counter,
    /// Owed pages confirmed unrecoverable when a process was orphaned.
    pub pages_lost: Counter,
    /// Reply pages whose bytes the receiving NetMsgServer already held
    /// (retransmitted or duplicate copy-on-reference replies, repeated
    /// zero/constant pages): the held frame was installed instead of a
    /// fresh copy.
    pub dedup_hits: Counter,
    /// Dedup-cache pages evicted by the deterministic LRU at the cap, or
    /// wiped because the node that sourced them crashed.
    pub dedup_evictions: Counter,
    /// Owed-page copies installed on replica homes by write-through
    /// replication (one count per page per replica).
    pub replicated_pages: Counter,
    /// Owed pages served from a live replica on the healthy fault path
    /// (quorum-mode nearest-replica routing, the primary still up).
    pub replica_reads: Counter,
    /// Failover fetches: copy-on-reference reads promoted to a surviving
    /// replica because the primary home lost its volatile state.
    pub failover_fetches: Counter,
    /// Owed pages delivered by those failover fetches.
    pub failover_pages: Counter,
    /// Total virtual time spent in failover fetches (the replication
    /// ladder's recovery latency).
    pub failover_time: SimDuration,
    /// Coalesced pending-interest waiters failed out of the table because
    /// their upstream crashed mid-flight (instead of hanging parked).
    pub pit_waiters_failed: Counter,
    /// Coalesced pending-interest waiters re-routed to a live replica
    /// after their upstream crashed mid-flight.
    pub pit_waiters_rerouted: Counter,
}

impl ReliabilityStats {
    /// `true` if the fault plan injected anything at all.
    pub fn any_faults_injected(&self) -> bool {
        self.drops_injected.get() > 0
            || self.duplicates_injected.get() > 0
            || self.reorders_injected.get() > 0
    }
}

/// A time-ordered series of `(instant, value)` samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Samples should be pushed in non-decreasing time
    /// order; the simulation clock guarantees this naturally.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.samples.push((at, value));
    }

    /// Returns the recorded samples.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Returns the number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the maximum sample value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).fold(None, |m, v| {
            Some(match m {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }
}

/// A histogram with fixed-width buckets, used for fault service times.
#[derive(Debug, Clone)]
pub struct Histogram {
    width: u64,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram of `nbuckets` buckets each `width` wide; values
    /// beyond the last bucket are clamped into it.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `nbuckets` is zero.
    pub fn new(width: u64, nbuckets: usize) -> Self {
        assert!(
            width > 0 && nbuckets > 0,
            "histogram shape must be non-empty"
        );
        Histogram {
            width,
            buckets: vec![0; nbuckets],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = ((value / self.width) as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Records a duration observation in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest observation seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn ledger_totals_by_category() {
        let mut l = Ledger::new();
        l.record(SimTime::from_millis(1), 100, LedgerCategory::Bulk);
        l.record(SimTime::from_millis(2), 50, LedgerCategory::FaultSupport);
        l.record(SimTime::from_millis(3), 25, LedgerCategory::Bulk);
        assert_eq!(l.total(), 175);
        assert_eq!(l.total_for(LedgerCategory::Bulk), 125);
        assert_eq!(l.total_for(LedgerCategory::FaultSupport), 50);
        assert_eq!(l.total_for(LedgerCategory::Control), 0);
        assert_eq!(l.entries().len(), 3);
    }

    #[test]
    fn ledger_binning() {
        let mut l = Ledger::new();
        l.record(SimTime::from_millis(100), 10, LedgerCategory::Bulk);
        l.record(SimTime::from_millis(150), 20, LedgerCategory::Bulk);
        l.record(SimTime::from_millis(1100), 30, LedgerCategory::Bulk);
        l.record(SimTime::from_millis(1200), 99, LedgerCategory::FaultSupport);
        let bins = l.binned(
            SimDuration::from_secs(1),
            SimTime::from_secs(2),
            LedgerCategory::Bulk,
        );
        assert_eq!(bins[0], 30);
        assert_eq!(bins[1], 30);
        assert_eq!(bins[2], 0);
    }

    #[test]
    fn retransmit_category_is_separate_and_displayed() {
        let mut l = Ledger::new();
        l.record(SimTime::from_millis(1), 100, LedgerCategory::Bulk);
        l.record(SimTime::from_millis(2), 100, LedgerCategory::Retransmit);
        assert_eq!(l.total_for(LedgerCategory::Retransmit), 100);
        assert_eq!(l.total_for(LedgerCategory::Bulk), 100);
        assert_eq!(l.total(), 200);
        assert_eq!(LedgerCategory::Retransmit.to_string(), "retransmit");
        assert_eq!(LedgerCategory::ALL.len(), 6);
    }

    #[test]
    fn replicate_category_is_separate_and_displayed() {
        let mut l = Ledger::new();
        l.record(SimTime::from_millis(1), 100, LedgerCategory::Bulk);
        l.record(SimTime::from_millis(2), 40, LedgerCategory::Replicate);
        assert_eq!(l.total_for(LedgerCategory::Replicate), 40);
        assert_eq!(l.total_for(LedgerCategory::Bulk), 100);
        assert_eq!(l.total(), 140);
        assert_eq!(LedgerCategory::Replicate.to_string(), "replicate");
    }

    #[test]
    fn replication_counters_stay_zero_without_a_plan() {
        let r = ReliabilityStats::default();
        assert_eq!(r.replicated_pages.get(), 0);
        assert_eq!(r.replica_reads.get(), 0);
        assert_eq!(r.failover_fetches.get(), 0);
        assert_eq!(r.failover_pages.get(), 0);
        assert_eq!(r.failover_time, SimDuration::ZERO);
        assert_eq!(r.pit_waiters_failed.get(), 0);
        assert_eq!(r.pit_waiters_rerouted.get(), 0);
        assert_eq!(r.dedup_evictions.get(), 0);
    }

    #[test]
    fn drain_category_is_separate_and_displayed() {
        let mut l = Ledger::new();
        l.record(SimTime::from_millis(1), 100, LedgerCategory::FaultSupport);
        l.record(SimTime::from_millis(2), 75, LedgerCategory::Drain);
        assert_eq!(l.total_for(LedgerCategory::Drain), 75);
        assert_eq!(l.total_for(LedgerCategory::FaultSupport), 100);
        assert_eq!(l.total(), 175);
        assert_eq!(LedgerCategory::Drain.to_string(), "drain");
    }

    #[test]
    fn crash_counters_stay_zero_without_a_crash_plan() {
        let r = ReliabilityStats::default();
        assert_eq!(r.node_crashes.get(), 0);
        assert_eq!(r.crash_dropped_messages.get(), 0);
        assert_eq!(r.crash_fast_fails.get(), 0);
        assert_eq!(r.drained_pages.get(), 0);
        assert_eq!(r.pages_recovered.get(), 0);
        assert_eq!(r.pages_lost.get(), 0);
        assert!(!r.any_faults_injected());
    }

    #[test]
    fn reliability_stats_track_injection_and_recovery() {
        let mut r = ReliabilityStats::default();
        assert!(!r.any_faults_injected());
        r.drops_injected.add(3);
        r.retransmissions.add(3);
        r.timeout_stalls.add(3);
        r.stall_time += SimDuration::from_millis(25 + 50 + 100);
        r.duplicates_injected.incr();
        r.duplicate_drops.incr();
        r.reorders_injected.incr();
        r.stale_replies.incr();
        r.unreachable_failures.incr();
        assert!(r.any_faults_injected());
        assert_eq!(r.drops_injected.get(), r.retransmissions.get());
        assert_eq!(r.duplicates_injected.get(), r.duplicate_drops.get());
        assert_eq!(r.stall_time, SimDuration::from_millis(175));
        let copy = r.clone();
        assert_eq!(copy, r, "stats compare for determinism checks");
    }

    #[test]
    fn series_tracks_max() {
        let mut s = TimeSeries::new();
        assert!(s.max().is_none());
        s.push(SimTime::ZERO, 1.0);
        s.push(SimTime::from_secs(1), 5.0);
        s.push(SimTime::from_secs(2), 3.0);
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new(10, 5);
        for v in [1, 11, 21, 21, 999] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 999);
        assert_eq!(h.buckets(), &[1, 1, 2, 0, 1]); // 999 clamps to last
        assert!((h.mean() - 210.6).abs() < 1e-9);
    }
}
