//! Journal verbosity levels.
//!
//! The journal itself — the typed event log with causal spans — lives in
//! the `cor-trace` crate, above the simulation substrate. What stays
//! here is the knob every layer agrees on: [`JournalLevel`], the gate
//! that decides how much a journal records. Keeping the level in
//! `cor-sim` lets hot paths (which depend only on the substrate) make
//! the record/skip decision without pulling in the tracing machinery.

/// How much a journal records.
///
/// The level is a second gate on top of the `Option<Journal>` holders
/// already use: an installed journal at [`JournalLevel::Off`] accepts
/// `record_with` calls without even constructing the event, so hot paths
/// pay one branch — and zero allocations — per muted call site.
///
/// The three levels, in increasing verbosity:
///
/// - [`JournalLevel::Off`] — record nothing. The right level for paper
///   sweeps whose outputs must stay byte-identical and allocation-lean.
/// - [`JournalLevel::Summary`] — record lifecycle *milestones* only:
///   migration excise/insert, scheduling slices, drain rounds, crashes
///   and recoveries. Per-page faults, individual wire sends, and
///   injected-fault noise are dropped. This is the default for
///   experiment-harness trials: cheap enough to leave on, detailed
///   enough to tell what a trial did.
/// - [`JournalLevel::Full`] — record everything, including fine-grained
///   causal spans (the default for a bare journal, preserving historical
///   behavior; tests and trace tooling run here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum JournalLevel {
    /// Drop every record before it is constructed.
    Off,
    /// Record lifecycle milestones, skip per-page and per-message detail.
    Summary,
    /// Record everything (the default, preserving historical behavior).
    #[default]
    Full,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_by_verbosity() {
        assert!(JournalLevel::Off < JournalLevel::Summary);
        assert!(JournalLevel::Summary < JournalLevel::Full);
        assert_eq!(JournalLevel::default(), JournalLevel::Full);
    }
}
