//! A structured event journal over virtual time.
//!
//! Optional observability for simulated systems: components append
//! `(instant, kind, detail)` records, and tools render or filter them.
//! Recording is explicit and cheap to skip — holders keep the journal in
//! an `Option` and only format details when one is installed.

use crate::time::SimTime;

/// How much a [`Journal`] records.
///
/// The level is a second gate on top of the `Option<Journal>` holders
/// already use: an installed journal at [`JournalLevel::Off`] accepts
/// [`Journal::record_with`] calls without running the detail closure, so
/// hot paths pay one branch instead of a `format!` allocation per event.
/// Experiment sweeps run with the level off; tests and trace tooling run
/// with it on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum JournalLevel {
    /// Drop every record without formatting its detail.
    Off,
    /// Record everything (the default, preserving historical behavior).
    #[default]
    Full,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// When it happened.
    pub at: SimTime,
    /// A static category tag ("fault", "send", "migrate", ...).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// An append-only, time-ordered event log.
///
/// # Examples
///
/// ```
/// use cor_sim::{Journal, SimTime};
///
/// let mut j = Journal::new();
/// j.record(SimTime::from_millis(2), "fault", "FillZero page 7".into());
/// j.record(SimTime::from_millis(5), "send", "Rimas 512B".into());
/// assert_eq!(j.of_kind("fault").count(), 1);
/// assert!(j.render_tail(10).contains("FillZero"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Journal {
    events: Vec<JournalEvent>,
    level: JournalLevel,
}

impl Journal {
    /// Creates an empty journal recording at [`JournalLevel::Full`].
    pub fn new() -> Self {
        Journal::default()
    }

    /// Creates an empty journal recording at `level`.
    pub fn with_level(level: JournalLevel) -> Self {
        Journal {
            events: Vec::new(),
            level,
        }
    }

    /// The current recording level.
    pub fn level(&self) -> JournalLevel {
        self.level
    }

    /// Changes the recording level; already-recorded events are kept.
    pub fn set_level(&mut self, level: JournalLevel) {
        self.level = level;
    }

    /// Appends an event with an already-formatted detail.
    ///
    /// Prefer [`Journal::record_with`] on hot paths — it skips the detail
    /// formatting entirely when the level is [`JournalLevel::Off`].
    pub fn record(&mut self, at: SimTime, kind: &'static str, detail: String) {
        self.record_with(at, kind, || detail);
    }

    /// Appends an event, formatting the detail lazily.
    ///
    /// The closure only runs when the journal's level admits the record,
    /// so a muted journal costs one branch per call site and zero
    /// allocations.
    pub fn record_with(&mut self, at: SimTime, kind: &'static str, detail: impl FnOnce() -> String) {
        if self.level == JournalLevel::Off {
            return;
        }
        self.events.push(JournalEvent {
            at,
            kind,
            detail: detail(),
        });
    }

    /// All events in record order.
    pub fn events(&self) -> &[JournalEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: &str) -> impl Iterator<Item = &JournalEvent> {
        let kind = kind.to_string();
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Renders the last `n` events, one per line.
    pub fn render_tail(&self, n: usize) -> String {
        let start = self.events.len().saturating_sub(n);
        let mut out = String::new();
        for e in &self.events[start..] {
            out.push_str(&format!(
                "{:>12} {:<9} {}\n",
                e.at.to_string(),
                e.kind,
                e.detail
            ));
        }
        out
    }

    /// Clears the journal.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_filter() {
        let mut j = Journal::new();
        j.record(SimTime::ZERO, "a", "first".into());
        j.record(SimTime::from_secs(1), "b", "second".into());
        j.record(SimTime::from_secs(2), "a", "third".into());
        assert_eq!(j.len(), 3);
        assert_eq!(j.of_kind("a").count(), 2);
        assert_eq!(j.of_kind("c").count(), 0);
        assert_eq!(j.events()[1].detail, "second");
    }

    #[test]
    fn tail_rendering() {
        let mut j = Journal::new();
        for i in 0..10 {
            j.record(SimTime::from_secs(i), "tick", format!("n{i}"));
        }
        let tail = j.render_tail(3);
        assert!(tail.contains("n7") && tail.contains("n9"));
        assert!(!tail.contains("n6"));
        assert_eq!(tail.lines().count(), 3);
    }

    #[test]
    fn off_level_skips_formatting() {
        let mut j = Journal::with_level(JournalLevel::Off);
        let mut formatted = false;
        j.record_with(SimTime::ZERO, "hot", || {
            formatted = true;
            "expensive".into()
        });
        assert!(!formatted, "detail closure must not run at Off");
        assert!(j.is_empty());

        j.set_level(JournalLevel::Full);
        j.record_with(SimTime::ZERO, "hot", || "cheap".into());
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut j = Journal::new();
        j.record(SimTime::ZERO, "x", "y".into());
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.render_tail(5), "");
    }
}
