//! Actor-style per-node runtimes: event inbox, timer driver, and a
//! virtual-time scheduler with a seeded, stateless tie-break.
//!
//! The seed-era simulation drives every world through one centralized
//! lock-step loop. This module provides the building blocks for the
//! event-driven alternative: each node owns a [`NodeRuntime`] — a pooled
//! event [`Inbox`], a [`TimerDriver`], and a monotonically stamped
//! sequence counter — and a scheduler repeatedly executes the runtime
//! whose next event has the globally minimal [`EventKey`].
//!
//! # Ordering and determinism
//!
//! Events are ordered by [`EventKey::rank`]: primarily by virtual time,
//! then by a *stateless, seeded* tie-break over `(node_id, seq)`. With
//! seed 0 the tie-break is plain lexicographic `(node, seq)` order —
//! exactly the order the lock-step loop visits nodes — so the default
//! actor schedule replays the seed schedule event for event. A nonzero
//! seed hashes `(seed, node, seq)` through SplitMix64 and orders ties by
//! the hash, giving an alternative but equally deterministic schedule:
//! event order is a pure function of the seed, never of thread timing,
//! heap addresses, or insertion history.
//!
//! # Conservative parallel execution
//!
//! [`Lookahead`] captures the conservative-synchronization window: if
//! every cross-node interaction takes at least `window` of virtual time
//! to propagate (the minimum link latency of the fabric), then all
//! events in `[epoch_start, epoch_start + window)` are safe to execute
//! concurrently — no event in the window can cause another event inside
//! the same window on a *different* node. The parallel fleet executor
//! (`cor-experiments`) uses this rule with the degenerate-but-exact case
//! of fully independent per-process chains (infinite effective
//! lookahead); see `docs/RUNTIME.md` for the full argument.
//!
//! # Allocation discipline
//!
//! The inbox and timer driver are slab-backed: pushed entries reuse
//! free slots and the binary heaps retain capacity across pops, so the
//! steady-state event loop allocates nothing once warmed up (the same
//! diet as the frame pool; `tests/alloc_budget.rs` pins it).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// SplitMix64: the stateless mixer behind the seeded tie-break.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A computed scheduling rank: `(virtual_time, tie, node, seq)`.
/// Ordering events by this tuple is the scheduler's total order.
pub type Rank = (SimTime, u64, u32, u64);

/// The scheduling key of one event: virtual time, owning node, and a
/// per-runtime monotone sequence stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Virtual time the event becomes runnable.
    pub at: SimTime,
    /// The node whose runtime owns the event.
    pub node: u32,
    /// Monotone stamp issued by the owning runtime at post time.
    pub seq: u64,
}

impl EventKey {
    /// The total order used by the scheduler: `(at, tie, node, seq)`
    /// where `tie` is 0 for seed 0 (plain lock-step order) and a
    /// SplitMix64 hash of `(seed, node, seq)` otherwise. Stateless —
    /// two runtimes given the same seed rank every key identically
    /// without sharing anything.
    #[inline]
    pub fn rank(&self, seed: u64) -> Rank {
        let tie = if seed == 0 {
            0
        } else {
            splitmix64(seed ^ ((self.node as u64) << 32) ^ self.seq)
        };
        (self.at, tie, self.node, self.seq)
    }
}

/// A pooled priority inbox of events keyed by [`EventKey`] rank.
///
/// Entries live in a slab; the heap holds `(Reverse(rank), slot)` pairs.
/// Popping returns the slot to a free list, so a warmed-up inbox pushes
/// and pops without allocating.
#[derive(Debug)]
pub struct Inbox<E> {
    heap: BinaryHeap<Reverse<(Rank, u32)>>,
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    /// Slab slots ever allocated (growth events).
    slab_allocs: u64,
    /// Pushes that reused a free slot.
    slot_reuses: u64,
}

impl<E> Default for Inbox<E> {
    fn default() -> Self {
        Inbox::new()
    }
}

impl<E> Inbox<E> {
    /// An empty inbox.
    pub fn new() -> Self {
        Inbox {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            slab_allocs: 0,
            slot_reuses: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Queues `event` under `key`, ranked with `seed`.
    pub fn push(&mut self, key: EventKey, seed: u64, event: E) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slot_reuses += 1;
                self.slab[s as usize] = Some(event);
                s
            }
            None => {
                self.slab_allocs += 1;
                self.slab.push(Some(event));
                (self.slab.len() - 1) as u32
            }
        };
        self.heap.push(Reverse((key.rank(seed), slot)));
    }

    /// The rank of the minimal queued event, if any.
    pub fn peek_rank(&self) -> Option<Rank> {
        self.heap.peek().map(|Reverse((rank, _))| *rank)
    }

    /// Pops the minimal event with its runnable time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((rank, slot)) = self.heap.pop()?;
        let event = self.slab[slot as usize].take().expect("slot occupied");
        self.free.push(slot);
        Some((rank.0, event))
    }

    /// Slab slots ever allocated — stable once the inbox is warm.
    pub fn slab_allocs(&self) -> u64 {
        self.slab_allocs
    }

    /// Pushes that reused a pooled slot instead of growing the slab.
    pub fn slot_reuses(&self) -> u64 {
        self.slot_reuses
    }

    /// Current slab capacity in slots.
    pub fn slab_capacity(&self) -> usize {
        self.slab.capacity()
    }
}

/// Handle to an armed timer; survives unrelated arms/fires, goes stale
/// after its own fire or cancel (generation-checked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId {
    slot: u32,
    generation: u32,
}

#[derive(Debug)]
struct TimerSlot<T> {
    generation: u32,
    payload: Option<T>,
}

/// A pooled one-shot timer wheel on the virtual clock.
///
/// Arms return a [`TimerId`]; [`TimerDriver::cancel`] invalidates it;
/// [`TimerDriver::fire_due`] pops the earliest due timer. Like
/// [`Inbox`], a warmed-up driver arms and fires without allocating.
#[derive(Debug)]
pub struct TimerDriver<T> {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    slab: Vec<TimerSlot<T>>,
    free: Vec<u32>,
    armed_seq: u64,
    slab_allocs: u64,
    slot_reuses: u64,
}

impl<T> Default for TimerDriver<T> {
    fn default() -> Self {
        TimerDriver::new()
    }
}

impl<T> TimerDriver<T> {
    /// An empty driver.
    pub fn new() -> Self {
        TimerDriver {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            armed_seq: 0,
            slab_allocs: 0,
            slot_reuses: 0,
        }
    }

    /// Live (armed, not yet fired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.slab.len() - self.free.len()
    }

    /// Whether no timer is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arms a one-shot timer at `at` carrying `payload`. Equal
    /// deadlines fire in arm order.
    pub fn arm(&mut self, at: SimTime, payload: T) -> TimerId {
        self.armed_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slot_reuses += 1;
                self.slab[s as usize].payload = Some(payload);
                s
            }
            None => {
                self.slab_allocs += 1;
                self.slab.push(TimerSlot {
                    generation: 0,
                    payload: Some(payload),
                });
                (self.slab.len() - 1) as u32
            }
        };
        self.heap.push(Reverse((at, self.armed_seq, slot)));
        TimerId {
            slot,
            generation: self.slab[slot as usize].generation,
        }
    }

    /// Cancels `id` if still live; returns its payload.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        let entry = self.slab.get_mut(id.slot as usize)?;
        if entry.generation != id.generation {
            return None;
        }
        let payload = entry.payload.take()?;
        entry.generation += 1;
        self.free.push(id.slot);
        // The heap entry stays behind as a tombstone; fire_due skips it.
        Some(payload)
    }

    /// The deadline of the earliest live timer.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        loop {
            let &Reverse((at, _, slot)) = self.heap.peek()?;
            if self.slab[slot as usize].payload.is_some() {
                return Some(at);
            }
            self.heap.pop(); // tombstone from a cancel
        }
    }

    /// Fires the earliest timer due at or before `now`, returning its
    /// deadline and payload.
    pub fn fire_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        let at = self.next_deadline()?;
        if at > now {
            return None;
        }
        let Reverse((at, _, slot)) = self.heap.pop().expect("peeked");
        let entry = &mut self.slab[slot as usize];
        let payload = entry.payload.take().expect("live timer");
        entry.generation += 1;
        self.free.push(slot);
        Some((at, payload))
    }

    /// Slab slots ever allocated — stable once the driver is warm.
    pub fn slab_allocs(&self) -> u64 {
        self.slab_allocs
    }

    /// Arms that reused a pooled slot.
    pub fn slot_reuses(&self) -> u64 {
        self.slot_reuses
    }
}

/// One node's event runtime: an inbox, a timer driver, and the node's
/// monotone sequence stamp, scheduled on the shared virtual timeline.
#[derive(Debug)]
pub struct NodeRuntime<E> {
    node: u32,
    seed: u64,
    seq: u64,
    /// The event inbox.
    pub inbox: Inbox<E>,
    /// The one-shot timer driver.
    pub timers: TimerDriver<E>,
}

impl<E> NodeRuntime<E> {
    /// A fresh runtime for `node` whose tie-breaks are ranked with
    /// `seed` (0 = lock-step order).
    pub fn new(node: u32, seed: u64) -> Self {
        NodeRuntime {
            node,
            seed,
            seq: 0,
            inbox: Inbox::new(),
            timers: TimerDriver::new(),
        }
    }

    /// The owning node id.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Posts `event` runnable at `at`, stamping it with the next seq.
    pub fn post(&mut self, at: SimTime, event: E) -> EventKey {
        self.seq += 1;
        let key = EventKey {
            at,
            node: self.node,
            seq: self.seq,
        };
        self.inbox.push(key, self.seed, event);
        key
    }

    /// Arms a timer that will surface `event` from [`NodeRuntime::poll`]
    /// once the clock reaches `at`.
    pub fn arm_timer(&mut self, at: SimTime, event: E) -> TimerId {
        self.timers.arm(at, event)
    }

    /// Cancels a previously armed timer.
    pub fn cancel_timer(&mut self, id: TimerId) -> Option<E> {
        self.timers.cancel(id)
    }

    /// The rank of this runtime's next runnable work (inbox or due
    /// timer), for cross-runtime scheduling.
    pub fn next_rank(&mut self) -> Option<Rank> {
        let inbox = self.inbox.peek_rank();
        // Timers rank at their deadline with seq 0: a timer due at t
        // runs before any event posted at t (events get seq >= 1).
        let timer = self
            .timers
            .next_deadline()
            .map(|at| (at, 0, self.node, 0u64));
        match (inbox, timer) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pops the next runnable item at or before `now`: the earliest due
    /// timer, else the minimal inbox event whose time has come.
    pub fn poll(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if let Some(fired) = self.timers.fire_due(now) {
            return Some(fired);
        }
        match self.inbox.peek_rank() {
            Some((at, ..)) if at <= now => self.inbox.pop(),
            _ => None,
        }
    }

    /// Whether the runtime has nothing queued and no live timer.
    pub fn is_idle(&mut self) -> bool {
        self.inbox.is_empty() && self.timers.next_deadline().is_none()
    }
}

/// The conservative-synchronization window: the minimum virtual time any
/// cross-node interaction needs to propagate. Events of one epoch
/// `[start, start + window)` on different nodes cannot affect each
/// other, so they may execute concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookahead {
    /// The safe window (minimum link latency; `MAX` when node groups
    /// share no state at all — fully independent chains).
    pub window: SimDuration,
}

impl Lookahead {
    /// A lookahead of `window`.
    pub fn new(window: SimDuration) -> Self {
        Lookahead { window }
    }

    /// The unbounded lookahead of fully independent node groups.
    pub fn unbounded() -> Self {
        Lookahead {
            window: SimDuration::from_micros(u64::MAX),
        }
    }

    /// End of the epoch starting at `start`.
    pub fn epoch_end(&self, start: SimTime) -> SimTime {
        SimTime::from_micros(start.as_micros().saturating_add(self.window.as_micros()))
    }

    /// Whether an event at `at` is inside the epoch starting at `start`.
    pub fn admits(&self, start: SimTime, at: SimTime) -> bool {
        at >= start && at < self.epoch_end(start)
    }
}

/// Runs `runtimes` to completion under a serial virtual-time schedule:
/// repeatedly executes the runtime with the globally minimal
/// [`EventKey`] rank. `handle` receives `(node_index, at, event)` and
/// may post follow-up events into any runtime. Returns the number of
/// events executed.
///
/// This is the reference scheduler — the parallel executor must be
/// indistinguishable from it (same seed, same schedule).
pub fn run_serial<E>(
    runtimes: &mut [NodeRuntime<E>],
    mut handle: impl FnMut(&mut [NodeRuntime<E>], usize, SimTime, E),
) -> u64 {
    let mut executed = 0;
    loop {
        let next = runtimes
            .iter_mut()
            .enumerate()
            .filter_map(|(i, rt)| rt.next_rank().map(|r| (r, i)))
            .min();
        let Some((rank, idx)) = next else {
            return executed;
        };
        let (at, event) = runtimes[idx].poll(rank.0).expect("ranked work is due");
        handle(runtimes, idx, at, event);
        executed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn seed_zero_orders_ties_by_node_then_seq() {
        let mut rts: Vec<NodeRuntime<u32>> =
            (0..4).map(|n| NodeRuntime::new(n, 0)).collect();
        // Post in scrambled node order, all at the same instant.
        for &n in &[2usize, 0, 3, 1] {
            rts[n].post(t(10), n as u32);
        }
        let mut order = Vec::new();
        run_serial(&mut rts, |_, _, _, e| order.push(e));
        assert_eq!(order, vec![0, 1, 2, 3], "lock-step node order");
    }

    #[test]
    fn virtual_time_dominates_the_tie_break() {
        let mut rts: Vec<NodeRuntime<u32>> =
            (0..2).map(|n| NodeRuntime::new(n, 0xBEEF)).collect();
        rts[1].post(t(5), 100);
        rts[0].post(t(7), 200);
        let mut order = Vec::new();
        run_serial(&mut rts, |_, _, _, e| order.push(e));
        assert_eq!(order, vec![100, 200], "earlier virtual time first");
    }

    #[test]
    fn nonzero_seed_permutes_ties_deterministically() {
        let schedule = |seed: u64| {
            let mut rts: Vec<NodeRuntime<u32>> =
                (0..8).map(|n| NodeRuntime::new(n, seed)).collect();
            for n in 0..8usize {
                rts[n].post(t(10), n as u32);
            }
            let mut order = Vec::new();
            run_serial(&mut rts, |_, _, _, e| order.push(e));
            order
        };
        assert_eq!(schedule(1), schedule(1), "pure function of the seed");
        assert_ne!(schedule(1), schedule(0), "seed 1 deviates from lock-step");
        let mut sorted = schedule(1);
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "a permutation");
    }

    #[test]
    fn cascading_posts_run_in_virtual_time_order() {
        // Node 0's event at 10 posts node 1 an event at 12; node 1
        // already holds one at 11.
        let mut rts: Vec<NodeRuntime<&'static str>> =
            (0..2).map(|n| NodeRuntime::new(n, 0)).collect();
        rts[0].post(t(10), "a");
        rts[1].post(t(11), "b");
        let mut order = Vec::new();
        run_serial(&mut rts, |rts, idx, at, e| {
            if idx == 0 && e == "a" {
                rts[1].post(at + SimDuration::from_micros(2), "c");
            }
            order.push(e);
        });
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn timers_fire_before_same_instant_events_and_cancel_cleanly() {
        let mut rt = NodeRuntime::new(0, 0);
        rt.post(t(10), "event");
        rt.arm_timer(t(10), "timer");
        let doomed = rt.arm_timer(t(9), "cancelled");
        assert_eq!(rt.cancel_timer(doomed), Some("cancelled"));
        assert_eq!(rt.cancel_timer(doomed), None, "stale id");
        assert_eq!(rt.poll(t(10)), Some((t(10), "timer")));
        assert_eq!(rt.poll(t(10)), Some((t(10), "event")));
        assert_eq!(rt.poll(t(10)), None);
        assert!(rt.is_idle());
    }

    #[test]
    fn poll_respects_now() {
        let mut rt = NodeRuntime::new(0, 0);
        rt.post(t(50), 1u32);
        assert_eq!(rt.poll(t(49)), None, "not due yet");
        assert_eq!(rt.poll(t(50)), Some((t(50), 1)));
    }

    #[test]
    fn steady_state_event_loop_reuses_pooled_slots() {
        let mut rt: NodeRuntime<u64> = NodeRuntime::new(0, 0);
        // Warm up: reach steady-state depth 16.
        for i in 0..16 {
            rt.post(t(i), i);
        }
        let _ = (rt.inbox.slab_capacity(), rt.next_rank());
        let allocs_warm = rt.inbox.slab_allocs();
        // 10k push/pop cycles at constant depth: no new slab slots.
        let mut now = 16;
        for _ in 0..10_000 {
            let (_, v) = rt.poll(t(now)).or_else(|| rt.poll(t(now + 16))).unwrap();
            now += 1;
            rt.post(t(now + 16), v);
        }
        assert_eq!(
            rt.inbox.slab_allocs(),
            allocs_warm,
            "steady state never grows the slab"
        );
        assert!(rt.inbox.slot_reuses() >= 10_000, "pops recycle slots");
        // Timers: same discipline.
        let mut driver: TimerDriver<u64> = TimerDriver::new();
        for i in 0..8 {
            driver.arm(t(i), i);
        }
        let warm = driver.slab_allocs();
        for i in 0..10_000u64 {
            let (_, v) = driver.fire_due(t(i + 8)).unwrap();
            driver.arm(t(i + 16), v);
        }
        assert_eq!(driver.slab_allocs(), warm, "timer slab is stable");
        assert!(driver.slot_reuses() >= 10_000);
    }

    #[test]
    fn lookahead_epochs_bound_admission() {
        let la = Lookahead::new(SimDuration::from_micros(100));
        assert!(la.admits(t(1_000), t(1_000)));
        assert!(la.admits(t(1_000), t(1_099)));
        assert!(!la.admits(t(1_000), t(1_100)), "epoch end is exclusive");
        assert!(!la.admits(t(1_000), t(999)), "no events from the past");
        assert_eq!(la.epoch_end(t(1_000)), t(1_100));
        let unbounded = Lookahead::unbounded();
        assert!(unbounded.admits(t(0), t(u64::MAX - 1)));
    }
}
